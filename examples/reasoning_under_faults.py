"""Reasoning under faults: the paper's GSM8k / Chain-of-Thought story.

Reproduces the mechanics of Figures 12 and 20 on a small model:

* shows a fault corrupting an intermediate reasoning token and
  propagating to the final answer (an SDC),
* compares CoT ("think step by step") against direct answering under
  memory faults, reporting normalized accuracy for both.

Run:  python examples/reasoning_under_faults.py
"""

import numpy as np

from repro import FaultModel, FICampaign, GenerationConfig, InferenceEngine
from repro.fi import MemoryFaultInjector, sample_site
from repro.generation import generate_ids
from repro.tasks import GSM8kTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model

N_TRIALS = 40


def show_corrupted_reasoning(engine, tokenizer, world) -> None:
    """Hunt for a trial where the reasoning chain visibly derails."""
    task = GSM8kTask(world, use_cot=True)
    example = standardized_subset(task, 4)[1]
    config = GenerationConfig(max_new_tokens=26, eos_id=tokenizer.vocab.eos_id)
    prompt = tokenizer.encode(example.prompt)
    baseline = tokenizer.decode(generate_ids(engine, prompt, config))
    print(f"problem  : {example.prompt}")
    print(f"baseline : {baseline}")
    rng = np.random.default_rng(17)
    for _ in range(60):
        site = sample_site(engine, FaultModel.MEM_2BIT, rng)
        with MemoryFaultInjector(engine, site):
            faulty = tokenizer.decode(generate_ids(engine, prompt, config))
        if faulty != baseline:
            print(f"fault    : {site.layer_name} bits={site.bits}")
            print(f"faulty   : {faulty}")
            break
    else:
        print("(no output-changing fault found in 60 draws)")


def cot_vs_direct(engine, tokenizer, world) -> None:
    print("\n=== CoT vs direct answering under 2bits-mem ===")
    for use_cot in (True, False):
        task = GSM8kTask(world, use_cot=use_cot)
        campaign = FICampaign(
            engine=engine,
            tokenizer=tokenizer,
            task_name="gsm8k",
            metrics=task.metrics,
            examples=standardized_subset(task, 8),
            fault_model=FaultModel.MEM_2BIT,
            seed=23,
            generation=GenerationConfig(
                max_new_tokens=task.max_new_tokens,
                eos_id=tokenizer.vocab.eos_id,
            ),
        )
        result = campaign.run(N_TRIALS)
        mode = "cot   " if use_cot else "direct"
        ci = result.normalized["accuracy"]
        print(
            f"{mode}: baseline {result.baseline['accuracy']:5.1f}%"
            f"  normalized {ci.ratio:.3f} [{ci.lower:.3f}, {ci.upper:.3f}]"
            f"  sdc-rate {result.sdc_rate:.2f}"
        )


def main() -> None:
    world = default_world()
    tokenizer = default_tokenizer(world)
    engine = InferenceEngine(load_model("qwenlike-base"))
    show_corrupted_reasoning(engine, tokenizer, world)
    cot_vs_direct(engine, tokenizer, world)


if __name__ == "__main__":
    main()
