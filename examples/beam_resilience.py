"""Beam-search resilience study (paper Figs 18/19, Observation #9).

Compares greedy decoding against beam search under 2-bit computational
faults on the fine-tuned translation model, then sweeps the beam count
to expose the resilience/runtime trade-off (the paper finds the sweet
spot at 2 beams).

Run:  python examples/beam_resilience.py
"""

import time

from repro import FaultModel, FICampaign, GenerationConfig, InferenceEngine
from repro.tasks import TranslationTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model

N_TRIALS = 30


def main() -> None:
    world = default_world()
    tokenizer = default_tokenizer(world)
    engine = InferenceEngine(load_model("alma-base"))
    task = TranslationTask(world)
    examples = standardized_subset(task, 8)

    print("=== beam sweep under 2bits-comp (alma-base, wmt16) ===")
    print(f"{'beams':>5s} {'normalized BLEU':>16s} {'ms/trial':>9s}")
    for num_beams in (1, 2, 4, 6):
        campaign = FICampaign(
            engine=engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=examples,
            fault_model=FaultModel.COMP_2BIT,
            seed=53,
            generation=GenerationConfig(
                max_new_tokens=task.max_new_tokens,
                num_beams=num_beams,
                eos_id=tokenizer.vocab.eos_id,
            ),
        )
        t0 = time.perf_counter()
        result = campaign.run(N_TRIALS)
        per_trial = 1000 * (time.perf_counter() - t0) / N_TRIALS
        label = "greedy" if num_beams == 1 else f"beam-{num_beams}"
        print(
            f"{num_beams:5d} {result.normalized['bleu'].ratio:16.3f}"
            f" {per_trial:9.1f}   ({label})"
        )
    print("\nexpected shape: resilience jumps from 1 -> 2 beams then"
          " flattens while runtime keeps rising — use num_beams=2.")


if __name__ == "__main__":
    main()
