"""Quickstart: train-or-load a model, run inference, inject one fault.

Walks the core API end to end:

1. load a small zoo model (built from scratch and cached on first use),
2. run fault-free inference on a translation example,
3. flip two bits of one stored weight (the paper's 2bits-mem fault),
4. rerun and compare, then verify the weight was restored exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FaultModel, GenerationConfig, InferenceEngine, sample_site
from repro.fi import MemoryFaultInjector
from repro.generation import generate_ids
from repro.tasks import TranslationTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model


def main() -> None:
    print("loading model (first run trains it; later runs hit the cache)...")
    store = load_model("qwenlike-tiny")
    engine = InferenceEngine(store, weight_policy="fp32")
    world = default_world()
    tokenizer = default_tokenizer(world)

    example = standardized_subset(TranslationTask(world), 1)[0]
    config = GenerationConfig(max_new_tokens=16, eos_id=tokenizer.vocab.eos_id)
    prompt = tokenizer.encode(example.prompt)

    baseline = tokenizer.decode(generate_ids(engine, prompt, config))
    print(f"\nprompt    : {example.prompt}")
    print(f"reference : {example.reference}")
    print(f"fault-free: {baseline}")

    # Uniformly sampled 2-bit memory faults, exactly as campaign trials
    # would draw them; most are masked (the paper's headline finding),
    # so keep drawing until one visibly corrupts the output.
    rng = np.random.default_rng(4)
    pristine = None
    for attempt in range(1, 61):
        site = sample_site(engine, FaultModel.MEM_2BIT, rng)
        pristine = engine.weight_store(site.layer_name).array.copy()
        with MemoryFaultInjector(engine, site):
            faulty = tokenizer.decode(generate_ids(engine, prompt, config))
        restored = engine.weight_store(site.layer_name).array
        assert np.array_equal(restored, pristine), "restore must be exact"
        if faulty != baseline:
            print(
                f"\ndraw #{attempt}: 2bits-mem fault in {site.layer_name}"
                f" weight=({site.row},{site.col}) bits={site.bits}"
            )
            print(f"faulty    : {faulty}")
            break
        if attempt == 1:
            print("\ndrawing random memory faults (masked draws elided)...")
    else:
        print("all 60 draws were masked — the model shrugged them off")
    print("\nweight restored bit-exactly after injection — ready for the"
          " next trial.")


if __name__ == "__main__":
    main()
