"""Mitigation study: acting on the paper's prescriptions.

The paper tells HPC designers to protect memory over compute, and
singles out MoE gate layers for explicit protection.  This example
turns those prescriptions into measurements:

1. Ranger-style range restriction under 2-bit memory faults,
2. weight scan-and-scrub repairing an injected blowup in place,
3. golden-copy router protection neutralizing gate faults.

Run:  python examples/mitigation_study.py
"""

import numpy as np

from repro import FaultModel, FICampaign, GenerationConfig, InferenceEngine
from repro.fi import FaultSite, MemoryFaultInjector
from repro.mitigation import (
    RangeRestrictor,
    SelectiveProtection,
    WeightGuard,
    router_layers,
)
from repro.tasks import TranslationTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model

N_TRIALS = 36


def _campaign(engine, tokenizer, task, **kw):
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 8),
        fault_model=FaultModel.MEM_2BIT,
        seed=61,
        generation=GenerationConfig(
            max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
        ),
        **kw,
    )


def range_restriction(store, tokenizer, world) -> None:
    print("=== Ranger-style range restriction (2bits-mem, bf16) ===")
    task = TranslationTask(world)
    calibration = [
        tokenizer.encode(ex.prompt) for ex in standardized_subset(task, 6)
    ]
    for protect in (False, True):
        engine = InferenceEngine(store, weight_policy="bf16")
        guard = None
        if protect:
            guard = RangeRestrictor(margin=0.25)
            guard.calibrate(engine, calibration)
            guard.install(engine)
        result = _campaign(engine, tokenizer, task).run(N_TRIALS)
        if guard:
            guard.uninstall()
        label = "ranger     " if protect else "unprotected"
        print(
            f"{label}: normalized BLEU {result.normalized['bleu'].ratio:.3f}"
            f"  distorted {result.sdc_breakdown()['distorted']:.2f}"
            + (f"  (clipped {guard.clip_events} values)" if guard else "")
        )


def scan_and_scrub(store) -> None:
    print("\n=== weight scan & scrub ===")
    engine = InferenceEngine(store)
    guard = WeightGuard(headroom=4.0)
    guard.profile(engine)
    site = FaultSite(
        FaultModel.MEM_2BIT, "blocks.1.up_proj", 7, 3, bits=(30, 29)
    )
    with MemoryFaultInjector(engine, site):
        anomalies = guard.scan(engine)
        print(f"injected blowup at {site.layer_name}({site.row},{site.col});"
              f" scan found {len(anomalies)} anomaly(ies)")
        for a in anomalies:
            print(f"  -> {a.layer_name}[{a.row},{a.col}] = {a.value:.3g}"
                  f" (threshold {a.threshold:.3g})")
        repaired = guard.scrub(engine)
        print(f"scrubbed {len(repaired)}; rescan finds"
              f" {len(guard.scan(engine))}")


def router_protection(tokenizer, world) -> None:
    print("\n=== golden-copy router protection (gate-only faults) ===")
    store = load_model("moelike-base")
    task = TranslationTask(world)
    for protect in (False, True):
        engine = InferenceEngine(store, weight_policy="bf16")
        campaign = _campaign(
            engine, tokenizer, task,
            layer_filter=lambda name: name.endswith("router"),
        )
        if protect:
            protection = SelectiveProtection(engine, router_layers(engine))
            original = campaign._eval_gen
            campaign._eval_gen = lambda ex: protection.guarded(
                lambda: original(ex)
            )
        result = campaign.run(N_TRIALS)
        changed = float(np.mean([t.changed for t in result.trials]))
        label = "protected  " if protect else "unprotected"
        extra = (
            f"  (overhead {protection.overhead_bytes / 1024:.1f} KiB,"
            f" {protection.corrections} corrections)" if protect else ""
        )
        print(f"{label}: normalized BLEU"
              f" {result.normalized['bleu'].ratio:.3f}  outputs changed"
              f" {changed:.2f}{extra}")


def main() -> None:
    world = default_world()
    tokenizer = default_tokenizer(world)
    store = load_model("qwenlike-base")
    range_restriction(store, tokenizer, world)
    scan_and_scrub(store)
    router_protection(tokenizer, world)


if __name__ == "__main__":
    main()
