"""Storage-format study: quantization and dtype resilience (Figs 17/21).

Runs the same 2-bit memory-fault campaign against one model stored five
ways — FP32, FP16, BF16, GPTQ-style INT8 and INT4 — and prints the
normalized performance for each, reproducing Observations #8 and #11:
quantized codes are the most robust, BF16 (widest exponent range) the
most fragile.

Run:  python examples/storage_formats_study.py
"""

from repro import FaultModel, FICampaign, GenerationConfig, InferenceEngine
from repro.numerics import flip_value_bits
from repro.tasks import TranslationTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model

POLICIES = ("fp32", "fp16", "bf16", "int8", "int4")
N_TRIALS = 40


def show_bit_flip_anatomy() -> None:
    """Why BF16 is fragile: the same MSB flip in each float format."""
    print("=== what flipping the top exponent bit does to 0.5 ===")
    for fmt in ("fp16", "bf16", "fp32"):
        from repro.numerics import get_format

        bit = get_format(fmt).bits - 2  # highest exponent bit
        corrupted = float(flip_value_bits(0.5, [bit], fmt))
        print(f"{fmt:5s}: 0.5 -> {corrupted:.4g}")
    print()


def main() -> None:
    show_bit_flip_anatomy()
    world = default_world()
    tokenizer = default_tokenizer(world)
    store = load_model("qwenlike-base")
    task = TranslationTask(world)
    examples = standardized_subset(task, 8)

    print("=== 2bits-mem campaign per storage policy ===")
    print(f"{'policy':8s} {'baseline BLEU':>14s} {'normalized':>11s} {'sdc':>6s}")
    for policy in POLICIES:
        engine = InferenceEngine(store, weight_policy=policy)
        campaign = FICampaign(
            engine=engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=examples,
            fault_model=FaultModel.MEM_2BIT,
            seed=47,
            generation=GenerationConfig(
                max_new_tokens=task.max_new_tokens,
                eos_id=tokenizer.vocab.eos_id,
            ),
        )
        result = campaign.run(N_TRIALS)
        print(
            f"{policy:8s} {result.baseline['bleu']:14.1f}"
            f" {result.normalized['bleu'].ratio:11.3f}"
            f" {result.sdc_rate:6.2f}"
        )
    print("\nexpected shape: int4/int8 ~1.0 (a code flip moves a weight a"
          " few steps); bf16 worst (2^128-scale blowups).")


if __name__ == "__main__":
    main()
