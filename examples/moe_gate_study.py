"""MoE gate-layer vulnerability study (paper Fig. 15, Observations #5/#6).

Injects 2-bit memory faults *only into router (gate) layers* of the MoE
model and measures how often the expert selection changes, how often a
changed selection changes the generated tokens, and the BLEU/chrF++
cost — then contrasts overall MoE vs dense resilience on one
multiple-choice and one generative task.

Run:  python examples/moe_gate_study.py
"""

from repro import FaultModel, FICampaign, GenerationConfig, InferenceEngine
from repro.tasks import MMLUTask, TranslationTask, standardized_subset
from repro.zoo import default_tokenizer, default_world, load_model

N_TRIALS = 40


def _campaign(engine, tokenizer, task, **kw):
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 8),
        fault_model=FaultModel.MEM_2BIT,
        seed=31,
        generation=GenerationConfig(
            max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
        ),
        **kw,
    )


def gate_layer_study(tokenizer, world) -> None:
    print("=== memory faults in gate (router) layers only ===")
    engine = InferenceEngine(load_model("moelike-base"))
    campaign = _campaign(
        engine,
        tokenizer,
        TranslationTask(world),
        layer_filter=lambda name: name.endswith("router"),
        track_expert_selection=True,
    )
    result = campaign.run(N_TRIALS)
    changed = [t for t in result.trials if t.selection_changed]
    output_changed = sum(t.changed for t in changed)
    print(f"trials                        : {result.n_trials}")
    print(f"expert selection changed      : {len(changed) / result.n_trials:.1%}")
    if changed:
        print(f"output changed | selection hit: {output_changed / len(changed):.1%}")
    print(f"BLEU normalized               : {result.normalized['bleu'].ratio:.3f}")
    print(f"chrF++ normalized             : {result.normalized['chrf'].ratio:.3f}")
    print("(paper: 78.6% selections changed; 47.4% of those changed a token;"
          " ~2% metric cost)")


def moe_vs_dense(tokenizer, world) -> None:
    print("\n=== MoE vs dense twin, 2bits-mem ===")
    for task in (MMLUTask(world), TranslationTask(world)):
        for name in ("moelike-base", "denselike-base"):
            engine = InferenceEngine(load_model(name))
            result = _campaign(engine, tokenizer, task).run(N_TRIALS)
            metric = task.metrics[0]
            print(
                f"{task.name:6s} {name:15s} baseline"
                f" {result.baseline[metric]:6.1f}  normalized"
                f" {result.normalized[metric].ratio:.3f}"
            )


def main() -> None:
    world = default_world()
    tokenizer = default_tokenizer(world)
    gate_layer_study(tokenizer, world)
    moe_vs_dense(tokenizer, world)


if __name__ == "__main__":
    main()
