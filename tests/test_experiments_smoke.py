"""End-to-end smoke tests of the experiment runners on a throwaway zoo.

The real zoo models take minutes to train; these tests shrink every
spec to ~20 steps (cached in a temp dir via ``REPRO_ARTIFACTS``) and
run a few representative experiments with minimal budgets, verifying
the full harness path: zoo build -> engine -> campaign -> result table.
"""

import dataclasses

import numpy as np
import pytest

from repro.harness import ExperimentContext
from repro.harness.experiments import (
    fig05_memory_propagation,
    fig06_computational_propagation,
    fig15_gate_faults,
    fig17_quantization,
    fig20_chain_of_thought,
)
from repro.zoo import ZOO


@pytest.fixture()
def tiny_zoo_ctx(tmp_path, monkeypatch) -> ExperimentContext:
    for name, spec in list(ZOO.items()):
        monkeypatch.setitem(
            ZOO, name, dataclasses.replace(spec, steps=20, corpus_docs=250)
        )
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    return ExperimentContext(n_examples=2, n_trials=4, seed=3)


def test_fig05_smoke(tiny_zoo_ctx):
    result = fig05_memory_propagation(tiny_zoo_ctx)
    assert result.rows[0]["corrupted_columns"] == 1
    assert result.rows[1]["corrupted_fraction"] > 0.5


def test_fig06_smoke(tiny_zoo_ctx):
    result = fig06_computational_propagation(tiny_zoo_ctx)
    assert result.rows[0]["corrupted_rows"] == 1


def test_fig17_smoke(tiny_zoo_ctx):
    result = fig17_quantization(tiny_zoo_ctx, tasks=("mmlu",))
    variants = {row["variant"] for row in result.rows}
    assert variants == {"BF16", "GPTQ-8bit", "GPTQ-4bit"}
    for row in result.rows:
        assert np.isnan(row["normalized"]) or row["normalized"] >= 0.0


def test_fig15_smoke(tiny_zoo_ctx):
    result = fig15_gate_faults(tiny_zoo_ctx, n_trials=4)
    row = result.rows[0]
    assert row["trials"] == 4
    assert 0.0 <= row["selection_changed_rate"] <= 1.0


def test_fig20_smoke(tiny_zoo_ctx):
    result = fig20_chain_of_thought(tiny_zoo_ctx, models=("qwenlike-base",))
    modes = {(row["mode"], row["fault"]) for row in result.rows}
    assert len(modes) == 4  # {cot, direct} x {comp, mem}
