"""Tests for campaign statistics (normalized performance, CIs)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    log_ratio_ci_means,
    log_ratio_ci_proportions,
    normalized_performance,
    required_trials,
    wilson_interval,
)


class TestProportionRatioCI:
    def test_point_estimate(self):
        ci = log_ratio_ci_proportions(90, 100, 95, 100)
        assert ci.ratio == pytest.approx(90 / 95)

    def test_ci_brackets_ratio(self):
        ci = log_ratio_ci_proportions(80, 100, 90, 100)
        assert ci.lower < ci.ratio < ci.upper
        assert ci.ratio in ci

    def test_equal_proportions_contain_one(self):
        ci = log_ratio_ci_proportions(85, 100, 85, 100)
        assert ci.lower <= 1.0 <= ci.upper

    def test_more_trials_narrower(self):
        wide = log_ratio_ci_proportions(45, 50, 48, 50)
        narrow = log_ratio_ci_proportions(450, 500, 480, 500)
        assert (narrow.upper - narrow.lower) < (wide.upper - wide.lower)

    def test_zero_faulty_successes(self):
        ci = log_ratio_ci_proportions(0, 100, 90, 100)
        assert ci.ratio == 0.0

    def test_zero_baseline_is_nan(self):
        ci = log_ratio_ci_proportions(10, 100, 0, 100)
        assert math.isnan(ci.ratio)

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError):
            log_ratio_ci_proportions(1, 0, 1, 10)


class TestMeanRatioCI:
    def test_point_estimate(self):
        ci = log_ratio_ci_means(np.array([8.0, 10.0, 12.0]), 10.0)
        assert ci.ratio == pytest.approx(1.0)

    def test_brackets(self):
        rng = np.random.default_rng(0)
        values = rng.normal(9.0, 1.0, size=200)
        ci = log_ratio_ci_means(values, 10.0)
        assert ci.lower < 0.9 < ci.upper

    def test_single_value_degenerate(self):
        ci = log_ratio_ci_means(np.array([5.0]), 10.0)
        assert ci.lower == ci.ratio == ci.upper == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            log_ratio_ci_means(np.array([]), 1.0)

    def test_zero_baseline_nan(self):
        assert math.isnan(log_ratio_ci_means(np.array([1.0]), 0.0).ratio)


class TestHelpers:
    def test_normalized_performance(self):
        assert normalized_performance(45.0, 50.0) == pytest.approx(0.9)
        assert math.isnan(normalized_performance(1.0, 0.0))

    def test_wilson_contains_p(self):
        lo, hi = wilson_interval(80, 100)
        assert lo < 0.8 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_extremes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and hi < 0.2
        lo, hi = wilson_interval(50, 50)
        assert lo > 0.8 and hi == 1.0

    def test_required_trials_scaling(self):
        # Quadruple precision demand -> ~4x fewer? No: halving the
        # margin quadruples the trials.
        n1 = required_trials(0.5, 0.05)
        n2 = required_trials(0.5, 0.025)
        assert n2 == pytest.approx(4 * n1, rel=0.01)

    def test_required_trials_validation(self):
        with pytest.raises(ValueError):
            required_trials(0.0, 0.1)
        with pytest.raises(ValueError):
            required_trials(0.5, 0.0)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=99),
    st.integers(min_value=1, max_value=99),
)
def test_property_proportion_ci_ordering(a, b):
    """CI is always ordered lower <= ratio <= upper."""
    ci = log_ratio_ci_proportions(a, 100, b, 100)
    assert ci.lower <= ci.ratio <= ci.upper


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=50),
    st.floats(min_value=0.1, max_value=100.0),
)
def test_property_mean_ratio_ci_positive_and_ordered(values, baseline):
    """Log-transform CIs stay positive and ordered for positive metrics."""
    ci = log_ratio_ci_means(np.asarray(values), baseline)
    assert 0.0 < ci.lower <= ci.ratio <= ci.upper
