"""Tests for GPTQ-style group quantization (paper Fig. 17 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import QuantizedMatrix, quantize_matrix


def _random_weight(seed: int, shape=(64, 16)) -> np.ndarray:
    return np.random.default_rng(seed).normal(0, 0.1, size=shape).astype(np.float32)


class TestQuantize:
    @pytest.mark.parametrize("nbits", [4, 8])
    def test_roundtrip_error_bounded(self, nbits):
        w = _random_weight(0)
        q = quantize_matrix(w, nbits=nbits, group_size=32)
        err = np.abs(q.dequantize() - w)
        # Error <= half a quantization step of the group scale.
        step = q.scales.max()
        assert err.max() <= 0.5 * step + 1e-7

    def test_8bit_tighter_than_4bit(self):
        w = _random_weight(1)
        err4 = np.abs(quantize_matrix(w, 4).dequantize() - w).mean()
        err8 = np.abs(quantize_matrix(w, 8).dequantize() - w).mean()
        assert err8 < err4

    def test_codes_within_width(self):
        w = _random_weight(2)
        q = quantize_matrix(w, nbits=4)
        assert q.codes.max() <= q.qmax
        assert q.codes.min() >= -q.qmax

    def test_zero_matrix(self):
        q = quantize_matrix(np.zeros((8, 4), np.float32), nbits=4)
        np.testing.assert_array_equal(q.dequantize(), 0.0)

    def test_group_structure(self):
        w = _random_weight(3, shape=(64, 8))
        q = quantize_matrix(w, nbits=8, group_size=16)
        assert q.scales.shape == (4, 8)
        assert q.group_of_row(0) == 0
        assert q.group_of_row(63) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            quantize_matrix(_random_weight(0), nbits=5)
        with pytest.raises(ValueError):
            quantize_matrix(np.zeros(8, np.float32), nbits=4)

    def test_requantization_idempotent(self):
        """Quantize(dequantize(q)) == q — the parallel campaign relies on
        rebuilding quantized stores from their dequantized arrays."""
        w = _random_weight(4)
        q1 = quantize_matrix(w, nbits=4, group_size=32)
        q2 = quantize_matrix(q1.dequantize(), nbits=4, group_size=32)
        np.testing.assert_array_equal(q1.codes, q2.codes)
        np.testing.assert_allclose(q1.scales, q2.scales, rtol=1e-6)


class TestCodeFlips:
    def test_flip_and_restore(self):
        q = quantize_matrix(_random_weight(5), nbits=4)
        before = q.dequantize().copy()
        old = q.flip_code_bits(10, 3, [2])
        assert not np.array_equal(q.dequantize(), before)
        q.set_code(10, 3, old)
        np.testing.assert_array_equal(q.dequantize(), before)

    def test_flip_bounded_deviation(self):
        """Observation #8 mechanism: an int-code bit flip moves the
        value at most ~2^nbits quantization steps (vs 2^128 for BF16)."""
        q = quantize_matrix(_random_weight(6), nbits=4)
        scale = q.scales[q.group_of_row(5), 2]
        before = q.dequantize_element(5, 2)
        q.flip_code_bits(5, 2, [3])  # flip the highest magnitude bit
        after = q.dequantize_element(5, 2)
        assert abs(after - before) <= 16 * scale

    def test_sign_bit_flip_sign_extends(self):
        q = quantize_matrix(_random_weight(7), nbits=4)
        q.codes[0, 0] = 3
        q.flip_code_bits(0, 0, [3])  # set the top bit: 0b0011 -> 0b1011
        assert q.codes[0, 0] == 11 - 16  # two's complement of 0b1011

    def test_invalid_bit_rejected(self):
        q = quantize_matrix(_random_weight(8), nbits=4)
        with pytest.raises(ValueError):
            q.flip_code_bits(0, 0, [4])


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([4, 8]),
    st.integers(min_value=0, max_value=7),
)
def test_property_double_flip_restores(seed, nbits, bit):
    """Flipping the same code bit twice is an exact no-op."""
    bit = bit % nbits
    q = quantize_matrix(_random_weight(seed, shape=(16, 4)), nbits=nbits)
    before_codes = q.codes.copy()
    q.flip_code_bits(3, 1, [bit])
    q.flip_code_bits(3, 1, [bit])
    np.testing.assert_array_equal(q.codes, before_codes)
