"""Resilience of the campaign runner itself: kill, crash, hang, resume.

The paper's campaigns need thousands of trials per cell; this suite
chaos-tests the *execution layer* the way the campaigns chaos-test the
model.  :class:`repro.fi.CampaignChaos` injects runner-level failures
(transient exceptions, deterministic crashes, worker death, hangs) at
chosen trial indices, and every recovery path must reproduce — via the
differential oracle — exactly what an undisturbed run computes:

* kill-and-resume: half a campaign + a checkpoint journal + resume
  must be bit-identical to one uninterrupted run (all fault models,
  serial and pooled), down to the formatted aggregate report;
* transient failures retry (bounded, with backoff) and then succeed;
* deterministic failures quarantine as ``FAILED`` instead of aborting;
* hung trials time out, retry, and at worst quarantine;
* the per-trial RNG derives from the stable (example id, trial, fault
  model) key — pinned by golden values so no refactor can silently
  shift every published seed.
"""

import hashlib
import json

import pytest

from repro.fi import (
    CampaignChaos,
    CheckpointError,
    FaultModel,
    FICampaign,
    Outcome,
    assert_records_equal,
    assert_results_equal,
    by_layer_type,
    load_checkpoint,
)
from repro.harness.results import format_campaign
from repro.obs import telemetry
from repro.tasks.base import GenExample, MCExample

from tests.test_differential import REFERENCE, make_campaign


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


FAST = dict(retry_backoff=0.0)


class TestKillAndResume:
    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_serial_resume_bit_identical(
        self, untrained_store, tokenizer, world, tmp_path, fault_model
    ):
        full = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).run(8)
        ck = tmp_path / "campaign.jsonl"
        # "Interrupt" after half the trials: the journal now holds 4.
        make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).run(4, checkpoint=ck)
        resumed = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).resume(ck, 8)
        assert_results_equal(resumed, full, "resumed", "uninterrupted")
        # Acceptance bar: the formatted aggregate report (normalized
        # performance + CIs) is byte-identical.
        assert format_campaign(resumed) == format_campaign(full)

    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_pooled_resume_bit_identical(
        self, untrained_store, tokenizer, world, tmp_path, fault_model
    ):
        full = make_campaign(
            untrained_store, tokenizer, world, "mc", fault_model
        ).run(6, n_workers=2)
        ck = tmp_path / "campaign.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "mc", fault_model
        ).run(3, n_workers=2, checkpoint=ck)
        resumed = make_campaign(
            untrained_store, tokenizer, world, "mc", fault_model
        ).resume(ck, 6, n_workers=2)
        assert_results_equal(resumed, full, "resumed", "uninterrupted")
        assert format_campaign(resumed) == format_campaign(full)

    def test_torn_final_record_tolerated(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        """A kill mid-write loses only the in-flight trial."""
        full = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(6)
        ck = tmp_path / "campaign.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(4, checkpoint=ck)
        data = ck.read_bytes()
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(data[:-17])  # chop into the last record
        resumed = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).resume(torn, 6)
        assert_results_equal(resumed, full, "resumed", "uninterrupted")

    def test_resume_across_execution_strategies(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        """Perf knobs are outside the fingerprint: a journal written by
        the reference path resumes under the optimized path."""
        full = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT
        ).run(6)
        ck = tmp_path / "campaign.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT,
            **REFERENCE,
        ).run(3, checkpoint=ck)
        resumed = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT
        ).resume(ck, 6)
        assert_results_equal(resumed, full, "resumed", "uninterrupted")

    def test_refuses_silent_overwrite(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        ck = tmp_path / "campaign.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(2, checkpoint=ck)
        with pytest.raises(CheckpointError, match="resume"):
            make_campaign(
                untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
            ).run(2, checkpoint=ck)

    def test_rejects_foreign_fingerprint(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        ck = tmp_path / "campaign.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(2, checkpoint=ck)
        other = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.COMP_1BIT
        )
        with pytest.raises(CheckpointError, match="different campaign"):
            other.resume(ck, 4)
        seeded = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        )
        seeded.seed = 123
        with pytest.raises(CheckpointError, match="different campaign"):
            seeded.resume(ck, 4)

    def test_journal_contents_and_counters(
        self, untrained_store, tokenizer, world, tmp_path, clean_telemetry
    ):
        ck = tmp_path / "campaign.jsonl"
        campaign = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        )
        campaign.run(4, checkpoint=ck)
        header, completed, attempts = load_checkpoint(
            ck, campaign.fingerprint()
        )
        assert header["schema_version"] == 1
        assert sorted(completed) == [0, 1, 2, 3]
        assert all(n == 1 for n in attempts.values())
        raw = [json.loads(line) for line in ck.read_text().splitlines()]
        assert raw[0]["kind"] == "campaign-checkpoint"
        assert raw[1]["key"] == list(campaign.trial_key(raw[1]["trial"]))

        clean_telemetry.enable()
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).resume(ck, 6)
        counters = clean_telemetry.metrics.counters
        assert counters["campaign.resume_skipped"].value == 4
        # Only the 2 missing trials actually ran.
        assert counters["campaign.trials"].value == 2
        spans = [s.name for s in clean_telemetry.tracer.records]
        assert "campaign.checkpoint" in spans


class TestRetry:
    def test_transient_failure_retries_to_identical_result(
        self, untrained_store, tokenizer, world
    ):
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(6)
        chaotic = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_transient={1, 4}),
        ).run(6, **FAST)
        assert_results_equal(chaotic, clean, "retried", "clean")

    def test_retry_counter(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        clean_telemetry.enable()
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_transient={2}),
        ).run(4, **FAST)
        assert clean_telemetry.metrics.counters["campaign.retries"].value == 1

    def test_worker_death_rebuilds_pool(
        self, untrained_store, tokenizer, world
    ):
        """A worker calling ``os._exit`` breaks the pool; the campaign
        rebuilds it and still produces the undisturbed run's records."""
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(6)
        chaotic = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(die_in_worker={2}),
        ).run(6, n_workers=2, **FAST)
        assert_results_equal(chaotic, clean, "rebuilt", "clean")

    def test_pool_degrades_to_serial(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        """When every rebuild dies too, remaining trials run serially
        in the parent (where ``die_in_worker`` cannot fire)."""
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(6)
        clean_telemetry.enable()
        chaotic = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(die_in_worker={0, 1, 2, 3, 4, 5}),
        ).run(6, n_workers=2, max_pool_rebuilds=0, **FAST)
        counters = clean_telemetry.metrics.counters
        assert counters["campaign.pool_degraded"].value >= 1
        clean_telemetry.disable()
        assert_records_equal(chaotic, clean, "degraded", "clean")


class TestQuarantine:
    def test_deterministic_failure_quarantined(
        self, untrained_store, tokenizer, world
    ):
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(6)
        result = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_always={3}),
        ).run(6, **FAST)
        assert result.n_trials == 6
        assert result.quarantined == 1
        bad = result.trials[3]
        assert bad.outcome is Outcome.FAILED
        assert bad.metrics == {}
        assert "ChaosError" in bad.error
        # Every other trial is untouched by the quarantine machinery.
        keep = [t for i, t in enumerate(result.trials) if i != 3]
        assert_records_equal(
            keep, [t for i, t in enumerate(clean.trials) if i != 3]
        )

    def test_quarantine_excluded_from_aggregates(
        self, untrained_store, tokenizer, world
    ):
        result = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_always={0}),
        ).run(5, **FAST)
        classified = [
            t for t in result.trials if t.outcome is not Outcome.FAILED
        ]
        sdc = sum(t.outcome.is_sdc for t in classified)
        assert result.sdc_rate == sdc / len(classified)
        assert not Outcome.FAILED.is_sdc
        # Vulnerability analysis counts only classified trials.
        groups = by_layer_type(result)
        assert sum(g.trials for g in groups) == len(classified)
        # ... but the per-bit table accounts for every trial.
        table = result.outcomes_by_highest_bit()
        assert sum(sum(row.values()) for row in table.values()) == 5
        assert sum(row["failed"] for row in table.values()) == 1

    def test_quarantine_survives_resume(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        ck = tmp_path / "campaign.jsonl"
        first = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_always={1}),
        ).run(3, checkpoint=ck, **FAST)
        resumed = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_always={1}),
        ).resume(ck, 6, **FAST)
        assert resumed.trials[1].outcome is Outcome.FAILED
        assert resumed.trials[1].error == first.trials[1].error
        assert resumed.quarantined == 1

    def test_quarantine_counters(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        clean_telemetry.enable()
        make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(fail_always={0}),
        ).run(3, max_retries=1, **FAST)
        counters = clean_telemetry.metrics.counters
        assert counters["campaign.quarantined"].value == 1
        assert counters["campaign.outcome.failed"].value == 1
        # Quarantined trials still count as trials (smoke asserts this).
        assert counters["campaign.trials"].value == 3
        assert counters["campaign.retries"].value == 1


class TestTimeout:
    def test_serial_hang_times_out_and_retries(
        self, untrained_store, tokenizer, world
    ):
        """A first-attempt hang is cut off by the alarm; the retry (no
        chaos on attempt 1) reproduces the clean record."""
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(3)
        hung = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(hang={1}, hang_seconds=30.0),
        ).run(3, trial_timeout=0.5, **FAST)
        assert_results_equal(hung, clean, "timed-out", "clean")

    def test_pooled_hang_quarantines_without_retries(
        self, untrained_store, tokenizer, world
    ):
        """With retries exhausted, a hung worker's trial quarantines and
        the rest of the campaign completes on a fresh pool."""
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        ).run(4)
        result = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            chaos=CampaignChaos(hang={0}, hang_seconds=60.0),
        ).run(4, n_workers=2, trial_timeout=2.0, max_retries=0, **FAST)
        assert result.trials[0].outcome is Outcome.FAILED
        assert "TrialTimeoutError" in result.trials[0].error
        assert_records_equal(result.trials[1:], clean.trials[1:])


class TestSeedDerivation:
    """Regression pins for the stable per-trial-key RNG derivation.

    These golden values are load-bearing: change the key layout or the
    hash and every published campaign seed silently shifts.  If one of
    these pins fails, you changed the derivation — bump the checkpoint
    schema version and say so loudly in the changelog.
    """

    def test_key_hash_words_pinned(self):
        key = ("ab12cd34ef567890", 7, "2bits-mem")
        digest = hashlib.sha256(json.dumps(key).encode()).digest()
        words = [
            int.from_bytes(digest[i : i + 4], "little")
            for i in range(0, 16, 4)
        ]
        assert words == [2206236586, 518463663, 2665928758, 1480391267]

    def test_example_ids_pinned(self):
        mc = MCExample(
            prompt="q : 2 + 2 =", options=["3", "4", "5", "6"], answer_index=1
        )
        assert FICampaign._stable_example_id(mc) == "94bcb99261cd38b4"
        gen = GenExample(prompt="translate : x =", reference="y", meta={})
        assert FICampaign._stable_example_id(gen) == "a0cfa32e0981d419"

    def test_key_is_content_addressed(
        self, untrained_store, tokenizer, world
    ):
        """Identity comes from example *content*, not list position."""
        campaign = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        )
        n = len(campaign.examples)
        example_id, trial, fault = campaign.trial_key(n + 1)
        assert example_id == campaign._example_ids[1]
        assert (trial, fault) == (n + 1, "2bits-mem")

    def test_fault_model_in_key_decorrelates_sites(
        self, untrained_store, tokenizer, world
    ):
        """Same trial index, different fault model ⇒ independent draws
        (under position-based seeding these were lockstep)."""
        mem = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        )
        comp = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.COMP_2BIT
        )
        mem_cells = [
            (s.layer_name, s.row, s.col)
            for s in (mem._trial_site(t, 1) for t in range(8))
        ]
        comp_cells = [
            (s.layer_name, s.row, s.col)
            for s in (comp._trial_site(t, 1) for t in range(8))
        ]
        assert mem_cells != comp_cells

    def test_rng_independent_of_run_order(
        self, untrained_store, tokenizer, world
    ):
        campaign = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.MEM_2BIT
        )
        forward = [campaign._trial_site(t, 1) for t in range(6)]
        backward = [campaign._trial_site(t, 1) for t in reversed(range(6))]
        assert forward == list(reversed(backward))
