"""Tests for fault models and uniform site sampling."""

import numpy as np
import pytest

from repro.fi import FaultModel, FaultSite, sample_site


class TestFaultModel:
    def test_bit_counts(self):
        assert FaultModel.COMP_1BIT.n_bits == 1
        assert FaultModel.COMP_2BIT.n_bits == 2
        assert FaultModel.MEM_2BIT.n_bits == 2

    def test_classification(self):
        assert FaultModel.MEM_2BIT.is_memory
        assert FaultModel.COMP_1BIT.is_computational
        assert not FaultModel.MEM_2BIT.is_computational

    def test_all(self):
        assert len(FaultModel.all()) == 3

    def test_string_values_match_paper(self):
        assert FaultModel.MEM_2BIT.value == "2bits-mem"
        assert FaultModel.COMP_1BIT.value == "1bit-comp"


class TestFaultSite:
    def test_parsing_helpers(self):
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.3.up_proj", 1, 2, bits=(4, 14)
        )
        assert site.block == 3
        assert site.layer_type == "up_proj"
        assert site.highest_bit == 14

    def test_moe_expert_layer_type(self):
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.0.experts.2.down_proj", 0, 0, bits=(1,)
        )
        assert site.layer_type == "experts.2.down_proj"


class TestSampling:
    def test_memory_site_in_bounds(self, untrained_engine):
        rng = np.random.default_rng(0)
        for _ in range(200):
            site = sample_site(untrained_engine, FaultModel.MEM_2BIT, rng)
            store = untrained_engine.weight_store(site.layer_name)
            assert 0 <= site.row < store.shape[0]
            assert 0 <= site.col < store.shape[1]
            assert len(site.bits) == 2
            assert len(set(site.bits)) == 2  # distinct bits
            assert max(site.bits) < store.n_storage_bits
            assert site.iteration == 0

    def test_comp_site_iteration_bounded(self, untrained_engine):
        rng = np.random.default_rng(1)
        iterations = {
            sample_site(
                untrained_engine, FaultModel.COMP_2BIT, rng, max_iterations=5
            ).iteration
            for _ in range(100)
        }
        assert iterations <= {0, 1, 2, 3, 4}
        assert len(iterations) > 1  # actually samples the range

    def test_deterministic_given_rng(self, untrained_engine):
        a = sample_site(
            untrained_engine, FaultModel.MEM_2BIT, np.random.default_rng(7)
        )
        b = sample_site(
            untrained_engine, FaultModel.MEM_2BIT, np.random.default_rng(7)
        )
        assert a == b

    def test_covers_blocks_and_layers(self, untrained_engine):
        rng = np.random.default_rng(2)
        sites = [
            sample_site(untrained_engine, FaultModel.MEM_2BIT, rng)
            for _ in range(300)
        ]
        blocks = {s.block for s in sites}
        layer_types = {s.layer_type for s in sites}
        assert blocks == {0, 1}
        assert layer_types == {
            "q_proj", "k_proj", "v_proj", "out_proj",
            "gate_proj", "up_proj", "down_proj",
        }

    def test_layer_filter(self, moe_engine):
        rng = np.random.default_rng(3)
        sites = [
            sample_site(
                moe_engine,
                FaultModel.MEM_2BIT,
                rng,
                layer_filter=lambda n: n.endswith("router"),
            )
            for _ in range(30)
        ]
        assert all(s.layer_type == "router" for s in sites)

    def test_filter_excluding_all_raises(self, untrained_engine):
        with pytest.raises(ValueError):
            sample_site(
                untrained_engine,
                FaultModel.MEM_2BIT,
                np.random.default_rng(0),
                layer_filter=lambda n: False,
            )

    def test_quantized_sites_use_code_width(self, untrained_store):
        from repro.inference import InferenceEngine

        engine = InferenceEngine(untrained_store, weight_policy="int4")
        rng = np.random.default_rng(4)
        for _ in range(100):
            site = sample_site(engine, FaultModel.MEM_2BIT, rng)
            assert max(site.bits) < 4
