"""Tests for the bit-exact float format layer (paper Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    BF16,
    FORMATS,
    FP16,
    FP32,
    FloatFormat,
    bit_roles,
    flip_bits,
    flip_value_bits,
    from_bits,
    get_format,
    round_to_format,
    to_bits,
)


class TestFormatRegistry:
    def test_table2_layouts(self):
        # Exact bit allocations from the paper's Table 2.
        assert (FP16.bits, FP16.exp_bits, FP16.man_bits) == (16, 5, 10)
        assert (BF16.bits, BF16.exp_bits, BF16.man_bits) == (16, 8, 7)
        assert (FP32.bits, FP32.exp_bits, FP32.man_bits) == (32, 8, 23)

    def test_table2_ranges(self):
        assert FP16.max_finite == 65504.0
        assert FP16.min_normal == pytest.approx(6.1035e-5, rel=1e-3)
        # BF16 shares FP32's exponent: ~3.4e38 / ~1.2e-38.
        assert BF16.max_finite == pytest.approx(3.39e38, rel=1e-2)
        assert BF16.min_normal == pytest.approx(1.1755e-38, rel=1e-3)
        assert FP32.max_finite == pytest.approx(np.finfo(np.float32).max, rel=1e-6)

    def test_bias(self):
        assert FP16.bias == 15
        assert BF16.bias == 127
        assert FP32.bias == 127

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", 16, 5, 11)

    def test_get_format(self):
        assert get_format("FP16") is FP16
        assert get_format(BF16) is BF16
        with pytest.raises(KeyError):
            get_format("fp8")

    def test_bit_roles(self):
        roles = bit_roles(FP16)
        assert roles[0] == "mantissa"
        assert roles[10] == "exponent"
        assert roles[15] == "sign"
        assert len(roles) == 16

    def test_field_ranges(self):
        assert list(BF16.exponent_bit_range) == list(range(7, 15))
        assert BF16.sign_bit == 15
        assert list(FP32.mantissa_bit_range) == list(range(23))


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", ["fp16", "bf16", "fp32"])
    def test_roundtrip_exact_values(self, fmt):
        # Powers of two and small integers are exact in every format.
        values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, -4.0, 0.25], np.float32)
        np.testing.assert_array_equal(round_to_format(values, fmt), values)

    def test_fp32_roundtrip_is_identity(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=257).astype(np.float32)
        np.testing.assert_array_equal(round_to_format(x, "fp32"), x)

    def test_bf16_is_truncated_fp32(self):
        x = np.float32(1.0 + 2.0**-7)  # exactly representable in bf16
        assert round_to_format(x, "bf16") == x
        y = np.float32(1.0 + 2.0**-9)  # not representable: rounds
        assert round_to_format(y, "bf16") in (1.0, np.float32(1.0 + 2.0**-7))

    def test_bf16_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7:
        # ties-to-even keeps the even mantissa (1.0).
        assert round_to_format(np.float32(1.0 + 2.0**-8), "bf16") == 1.0

    def test_fp16_matches_numpy_half(self):
        rng = np.random.default_rng(1)
        x = (rng.normal(size=500) * 100).astype(np.float32)
        ours = round_to_format(x, "fp16")
        numpy_half = x.astype(np.float16).astype(np.float32)
        np.testing.assert_array_equal(ours, numpy_half)

    def test_bits_dtype(self):
        assert to_bits(1.0, "fp16").dtype == np.uint16
        assert to_bits(1.0, "bf16").dtype == np.uint16
        assert to_bits(1.0, "fp32").dtype == np.uint32


class TestBitFlips:
    def test_sign_flip_negates(self):
        for fmt in FORMATS.values():
            flipped = flip_value_bits(1.5, [fmt.sign_bit], fmt)
            assert flipped == -1.5

    def test_double_flip_is_identity(self):
        x = np.float32(3.25)
        once = flip_value_bits(x, [7], "fp16")
        twice = flip_value_bits(once, [7], "fp16")
        assert twice == round_to_format(x, "fp16")

    def test_msb_exponent_flip_bf16_huge(self):
        # Paper Obs #8: flipping the top exponent bit of BF16 0.5 gives
        # ~1.7e38 — an extreme value.
        corrupted = float(flip_value_bits(0.5, [14], "bf16"))
        assert corrupted > 1e38

    def test_msb_exponent_flip_fp16_bounded(self):
        corrupted = float(flip_value_bits(0.5, [14], "fp16"))
        assert corrupted < 1e5  # fp16 range tops out at 65504

    def test_mantissa_flip_small_relative_change(self):
        x = 1.0
        corrupted = float(flip_value_bits(x, [0], "fp32"))
        assert abs(corrupted - x) < 1e-6

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(to_bits(1.0, "fp16"), [16], "fp16")

    def test_flip_is_elementwise_on_arrays(self):
        x = np.array([1.0, 2.0, 4.0], np.float32)
        flipped = flip_value_bits(x, [FP32.sign_bit], "fp32")
        np.testing.assert_array_equal(flipped, -x)


@settings(max_examples=200, deadline=None)
@given(
    st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    ),
    st.sampled_from(["fp16", "bf16", "fp32"]),
)
def test_property_roundtrip_idempotent(value, fmt):
    """Rounding to a format twice equals rounding once."""
    once = round_to_format(np.float32(value), fmt)
    twice = round_to_format(once, fmt)
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=200, deadline=None)
@given(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    st.integers(min_value=0, max_value=15),
    st.sampled_from(["fp16", "bf16"]),
)
def test_property_flip_twice_restores(value, bit, fmt):
    """Flipping the same bit twice restores the stored value exactly."""
    stored = round_to_format(np.float32(value), fmt)
    once = flip_value_bits(stored, [bit], fmt)
    twice = flip_value_bits(once, [bit], fmt)
    np.testing.assert_array_equal(twice, stored)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    st.sampled_from(["fp16", "bf16"]),
)
def test_property_rounding_error_bounded(value, fmt_name):
    """Format rounding error is below one ULP at the value's scale."""
    fmt = get_format(fmt_name)
    stored = float(round_to_format(np.float32(value), fmt))
    ulp = max(abs(value), fmt.min_normal) * 2.0 ** (-fmt.man_bits)
    assert abs(stored - float(np.float32(value))) <= ulp
