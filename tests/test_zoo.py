"""Tests for the model zoo registry and cache plumbing.

Full zoo builds take minutes; these tests cover the registry contract
and the save/load cache path with a temporarily-shrunk spec.
"""

import dataclasses

import numpy as np
import pytest

from repro.model import ParamStore
from repro.zoo import ZOO, cache_path, get_spec, load_model, zoo_names
from repro.zoo import build as zoo_build
from repro.zoo.registry import ZooSpec


class TestRegistry:
    def test_expected_roster(self):
        names = set(zoo_names())
        # The paper's model inventory (DESIGN.md mapping).
        assert {
            "qwenlike-base", "llamalike-base", "falconlike-base",
            "qwenlike-tiny", "qwenlike-small", "qwenlike-large", "qwenlike-xl",
            "moelike-base", "denselike-base", "alma-base", "summarizer-base",
        } <= names

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("gpt5")

    def test_scale_sweep_monotone_sizes(self):
        sizes = [
            get_spec(f"qwenlike-{s}").d_model
            for s in ("tiny", "small", "base", "large", "xl")
        ]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)

    def test_families_differ_in_init(self):
        gains = {get_spec(n).init_gain for n in
                 ("qwenlike-base", "llamalike-base", "falconlike-base")}
        assert len(gains) == 3  # distinct distributions (Fig. 13)

    def test_fine_tuned_have_bases(self):
        assert get_spec("alma-base").base == "llamalike-base"
        assert get_spec("summarizer-base").base == "llamalike-base"
        assert get_spec("alma-base").corpus == "wmt16"

    def test_moe_config(self):
        spec = get_spec("moelike-base")
        assert spec.n_experts == 8 and spec.top_k == 2
        dense = get_spec("denselike-base")
        assert dense.d_ff == spec.d_ff  # dense twin matches one expert

    def test_model_config_construction(self, tokenizer):
        for name in zoo_names():
            config = get_spec(name).model_config(len(tokenizer))
            assert config.vocab_size == len(tokenizer)
            assert config.n_params() > 0

    def test_train_config_valid(self):
        for name in zoo_names():
            tc = get_spec(name).train_config()
            assert tc.steps >= 1


class TestCache:
    def test_cache_path_stable(self):
        assert cache_path("qwenlike-base") == cache_path("qwenlike-base")

    def test_cache_path_distinguishes_models(self):
        assert cache_path("qwenlike-base") != cache_path("llamalike-base")

    def test_build_and_cache_tiny(self, tmp_path, monkeypatch):
        """End-to-end build -> save -> load with a 30-step throwaway spec."""
        spec = dataclasses.replace(
            get_spec("qwenlike-tiny"), steps=30, corpus_docs=300
        )
        monkeypatch.setitem(ZOO, "qwenlike-tiny", spec)
        store = load_model("qwenlike-tiny", directory=tmp_path, verbose=False)
        assert isinstance(store, ParamStore)
        path = cache_path("qwenlike-tiny", tmp_path)
        assert path.exists()
        again = load_model("qwenlike-tiny", directory=tmp_path, verbose=False)
        assert again.fingerprint() == store.fingerprint()

    def test_artifacts_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert zoo_build.artifacts_dir() == tmp_path
