"""Tests for differentiable NN primitives and their NumPy twins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    check_gradients,
    cross_entropy,
    log_softmax,
    log_softmax_np,
    rms_norm,
    rms_norm_np,
    rope,
    silu,
    silu_np,
    softmax,
    softmax_np,
)
from repro.model.transformer import rope_tables

RNG = np.random.default_rng(7)


class TestNumpyPrimitives:
    def test_softmax_normalizes(self):
        x = RNG.normal(size=(4, 9)).astype(np.float32)
        p = softmax_np(x)
        np.testing.assert_allclose(p.sum(-1), 1.0, rtol=1e-5)
        assert (p >= 0).all()

    def test_softmax_shift_invariant(self):
        x = RNG.normal(size=8).astype(np.float32)
        np.testing.assert_allclose(
            softmax_np(x), softmax_np(x + 100.0), rtol=1e-4
        )

    def test_softmax_extreme_values_stable(self):
        x = np.array([1e30, -1e30, 0.0], np.float32)
        p = softmax_np(x)
        assert np.isfinite(p).all()
        assert p[0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        x = RNG.normal(size=(3, 5)).astype(np.float32)
        np.testing.assert_allclose(
            np.exp(log_softmax_np(x)), softmax_np(x), rtol=1e-5
        )

    def test_silu_known_values(self):
        assert silu_np(np.float32(0.0)) == 0.0
        assert silu_np(np.float32(100.0)) == pytest.approx(100.0)
        assert silu_np(np.float32(-100.0)) == pytest.approx(0.0, abs=1e-5)

    def test_rms_norm_unit_scale(self):
        x = RNG.normal(size=(5, 16)).astype(np.float32)
        w = np.ones(16, np.float32)
        out = rms_norm_np(x, w)
        rms = np.sqrt((out * out).mean(-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rms_norm_contains_huge_values(self):
        """The paper's containment mechanism: a huge activation is
        squashed to O(sqrt(d)) after RMSNorm."""
        x = np.ones((1, 16), np.float32)
        x[0, 3] = 1e20
        out = rms_norm_np(x, np.ones(16, np.float32))
        assert np.abs(out).max() <= np.sqrt(16) + 1e-3


class TestDifferentiable:
    def test_softmax_grad(self):
        check_gradients(lambda a: softmax(a), [RNG.normal(size=(3, 5))])

    def test_log_softmax_grad(self):
        check_gradients(lambda a: log_softmax(a), [RNG.normal(size=(2, 7))])

    def test_silu_grad(self):
        check_gradients(lambda a: silu(a), [RNG.normal(size=(4, 3))])

    def test_rms_norm_grad(self):
        check_gradients(
            lambda a, w: rms_norm(a, w),
            [RNG.normal(size=(3, 8)), RNG.normal(size=8)],
        )

    def test_rope_grad(self):
        cos, sin = rope_tables(8, 6, 10000.0)
        check_gradients(lambda a: rope(a, cos[:4], sin[:4]), [RNG.normal(size=(2, 4, 8))])

    def test_rope_preserves_norm(self):
        """Rotary embedding is orthogonal: vector norms are unchanged."""
        cos, sin = rope_tables(8, 10, 10000.0)
        x = RNG.normal(size=(3, 10, 8)).astype(np.float32)
        out = rope(Tensor(x), cos, sin).data
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1),
            np.linalg.norm(x, axis=-1),
            rtol=1e-4,
        )


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = RNG.normal(size=(4, 6)).astype(np.float32)
        targets = np.array([1, 0, 5, 2])
        loss = cross_entropy(Tensor(logits), targets)
        manual = -log_softmax_np(logits)[np.arange(4), targets].mean()
        assert float(loss.data) == pytest.approx(manual, rel=1e-5)

    def test_grad(self):
        targets = np.array([1, 0, 2])
        check_gradients(
            lambda a: cross_entropy(a, targets), [RNG.normal(size=(3, 4))]
        )

    def test_ignore_index(self):
        logits = RNG.normal(size=(4, 5)).astype(np.float32)
        targets = np.array([1, -100, 2, -100])
        loss = cross_entropy(Tensor(logits), targets)
        only_valid = cross_entropy(Tensor(logits[[0, 2]]), targets[[0, 2]])
        assert float(loss.data) == pytest.approx(float(only_valid.data), rel=1e-6)

    def test_ignored_rows_get_no_grad(self):
        t = Tensor(RNG.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        cross_entropy(t, np.array([-100, 1])).backward()
        np.testing.assert_array_equal(t.grad[0], 0.0)
        assert np.abs(t.grad[1]).sum() > 0

    def test_all_ignored_zero_loss(self):
        loss = cross_entropy(
            Tensor(RNG.normal(size=(2, 3)).astype(np.float32)),
            np.array([-100, -100]),
        )
        assert float(loss.data) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-20, max_value=20), min_size=2, max_size=12
    )
)
def test_property_softmax_argmax_preserved(logits):
    """Softmax keeps the largest entry (near-)largest.

    Exact argmax can shift between float-equal near-ties, so we assert
    the original winner's probability is within rounding of the max.
    """
    x = np.asarray(logits, dtype=np.float32)
    p = softmax_np(x)
    assert p[int(np.argmax(x))] >= p.max() - 1e-6
