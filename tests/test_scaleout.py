"""Shared-weight scale-out: mmap arena, CoW isolation, persistent pool.

The campaign pool's scale-out story rests on three invariants:

* **bit-identity of attachment** — a store/engine attached to the
  exported arena is indistinguishable from the exporting one
  (``fingerprint()`` equal, forwards bit-equal), because the arena
  holds the *policy-encoded* planes verbatim, never a re-encoding;
* **copy-on-write isolation** — a weight fault in one attachment
  privatizes only the targeted tensor; the arena bytes and every
  sibling attachment stay pristine, and restoration is exact;
* **schedule-invariance** — TrialRecords from the pre-forked
  persistent pool (any worker count, with worker deaths, across
  kill-and-resume boundaries) are bit-identical to serial, enforced
  through :mod:`repro.fi.differential`.
"""

import shutil

import numpy as np
import pytest

from repro.fi import CampaignChaos, FaultModel, assert_records_equal
from repro.fi.injector import MemoryFaultInjector
from repro.fi.sites import FaultSite
from repro.inference import InferenceEngine
from repro.model.params import (
    ParamStore,
    arena_nbytes,
    arena_valid,
    open_arena,
    write_arena,
)
from repro.obs import telemetry

from tests.test_differential import REFERENCE, make_campaign


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


POLICIES = ["fp32", "fp16", "bf16", "int8", "int4"]


class TestArenaFormat:
    def test_round_trip_and_alignment(self, tmp_path):
        arrays = {
            "a": np.arange(12, dtype=np.float32).reshape(3, 4),
            "b": np.arange(7, dtype=np.uint8),
            "c": np.array(3.5, dtype=np.float64),
        }
        write_arena(tmp_path / "arena", arrays, meta={"kind": "test"})
        views, meta = open_arena(tmp_path / "arena")
        assert meta["kind"] == "test"
        assert set(views) == set(arrays)
        for name, expected in arrays.items():
            assert views[name].dtype == expected.dtype
            assert views[name].shape == expected.shape
            assert np.array_equal(views[name], expected)
            assert not views[name].flags.writeable
        assert arena_nbytes(tmp_path / "arena") > 0
        assert arena_valid(tmp_path / "arena")

    def test_meta_order_preserved(self, tmp_path):
        """Dict order in meta survives the JSON round trip — an
        attached engine must enumerate stores in the exporter's order
        or uniform site sampling diverges between processes."""
        meta = {"stores": {"z_first": 1, "a_second": 2}}
        write_arena(
            tmp_path / "arena", {"x": np.zeros(2, np.float32)}, meta=meta
        )
        _views, got = open_arena(tmp_path / "arena")
        assert list(got["stores"]) == ["z_first", "a_second"]

    def test_torn_write_detected(self, tmp_path):
        write_arena(tmp_path / "arena", {"x": np.zeros(4, np.float32)})
        (tmp_path / "arena" / "index.json").write_text("{ torn")
        assert not arena_valid(tmp_path / "arena")
        assert not arena_valid(tmp_path / "missing")


class TestSharedParamStore:
    def test_fingerprint_identity(self, untrained_store, tmp_path):
        shared = untrained_store.to_shared(tmp_path / "arena")
        assert shared.fingerprint() == untrained_store.fingerprint()
        assert shared.shared_dir == tmp_path / "arena"
        reopened = ParamStore.open_shared(tmp_path / "arena")
        assert reopened.fingerprint() == untrained_store.fingerprint()
        for name, array in untrained_store.items():
            view = reopened[name]
            assert not view.flags.writeable
            assert np.array_equal(view, array)


class TestSharedEngine:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_attached_forward_bit_identical(
        self, untrained_store, tmp_path, policy
    ):
        engine = InferenceEngine(untrained_store, weight_policy=policy)
        engine.export_shared(tmp_path / "engine")
        attached = InferenceEngine.open_shared(tmp_path / "engine")
        assert attached.linear_layer_names() == engine.linear_layer_names()
        ids = [3, 7, 11, 2]
        assert np.array_equal(
            attached.forward_full(ids), engine.forward_full(ids)
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cow_isolation_under_memory_fault(
        self, untrained_store, tmp_path, policy
    ):
        """A weight fault in one attachment never leaks into the arena
        or a sibling: only the flipping process's targeted tensor goes
        private, and restore is exact."""
        engine = InferenceEngine(untrained_store, weight_policy=policy)
        engine.export_shared(tmp_path / "engine")
        faulty = InferenceEngine.open_shared(tmp_path / "engine")
        sibling = InferenceEngine.open_shared(tmp_path / "engine")
        layer = faulty.linear_layer_names()[0]
        pristine = np.array(faulty.weight_store(layer).array, copy=True)
        site = FaultSite(
            fault_model=FaultModel.MEM_2BIT,
            layer_name=layer,
            row=1,
            col=2,
            bits=(0, 1),
            iteration=0,
        )
        with MemoryFaultInjector(faulty, site):
            corrupted = faulty.weight_store(layer).array
            assert corrupted.flags.writeable  # privatized by the flip
            assert not np.array_equal(corrupted, pristine)
            # Sibling attachment and the arena itself stay pristine.
            assert np.array_equal(
                sibling.weight_store(layer).array, pristine
            )
            fresh = InferenceEngine.open_shared(tmp_path / "engine")
            assert np.array_equal(fresh.weight_store(layer).array, pristine)
        restored = faulty.weight_store(layer).array
        assert np.array_equal(restored, pristine)
        # Restoration hands the private pages back to the arena, so a
        # worker's RSS stays bounded by one in-flight tensor no matter
        # how many trials it executes.
        assert not restored.flags.writeable


class TestPooledEquivalence:
    @pytest.mark.parametrize("n_workers", [2, 4])
    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_pool_matches_serial(
        self, untrained_store, tokenizer, world, fault_model, n_workers
    ):
        serial = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model, **REFERENCE
        ).run(6)
        pooled_campaign = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        )
        try:
            pooled = pooled_campaign.run(6, n_workers=n_workers)
        finally:
            pooled_campaign.close_pool()
        assert_records_equal(
            pooled.trials, serial.trials, f"pool{n_workers}", "serial"
        )

    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_kill_and_resume_into_live_pool(
        self, untrained_store, tokenizer, world, tmp_path, fault_model
    ):
        """Resuming on the same campaign reuses the persistent pool —
        same pool object, same worker pids, zero re-spinup — and the
        stitched result is bit-identical to one uninterrupted run."""
        full = make_campaign(
            untrained_store, tokenizer, world, "mc", fault_model, **REFERENCE
        ).run(6)
        campaign = make_campaign(
            untrained_store, tokenizer, world, "mc", fault_model
        )
        try:
            ck = tmp_path / "campaign.jsonl"
            campaign.run(3, n_workers=2, checkpoint=ck)
            pool = campaign._pool
            assert pool is not None and not pool.closed
            pids = pool.worker_pids()
            resumed = campaign.resume(ck, 6, n_workers=2)
            assert campaign._pool is pool
            assert pool.worker_pids() == pids
        finally:
            campaign.close_pool()
        assert_records_equal(
            resumed.trials, full.trials, "resumed-into-pool", "uninterrupted"
        )

    def test_respawn_reattaches_existing_arena(
        self, untrained_store, tokenizer, world, monkeypatch
    ):
        """A worker death respawns against the already-exported arena:
        the weights are exported exactly once per campaign, never
        re-shipped through a rebuilt pool."""
        exports = []
        original = InferenceEngine.export_shared

        def counting_export(self, directory):
            exports.append(str(directory))
            return original(self, directory)

        monkeypatch.setattr(InferenceEngine, "export_shared", counting_export)
        clean = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.COMP_1BIT,
            **REFERENCE,
        ).run(6)
        campaign = make_campaign(
            untrained_store, tokenizer, world, "mc", FaultModel.COMP_1BIT,
            chaos=CampaignChaos(die_in_worker={1, 4}),
        )
        try:
            result = campaign.run(6, n_workers=2, retry_backoff=0.0)
            arena = campaign._arena
            assert arena is not None and arena_valid(arena.root / "target")
        finally:
            campaign.close_pool()
        assert len(exports) == 1  # two deaths, two respawns, one export
        assert_records_equal(
            result.trials, clean.trials, "respawned", "clean"
        )


class TestZooSidecar:
    def _patch_zoo(self, monkeypatch, tmp_path, store):
        from repro.zoo import build as zoo_build

        npz = tmp_path / "tiny-cafe012345ab.npz"
        monkeypatch.setattr(
            zoo_build, "cache_path", lambda name, directory=None: npz
        )
        monkeypatch.setattr(
            zoo_build,
            "build_model",
            lambda name, directory=None, verbose=True: store,
        )
        return zoo_build, npz

    def test_build_emits_sidecar_and_load_prefers_it(
        self, monkeypatch, tmp_path, untrained_store
    ):
        zoo_build, npz = self._patch_zoo(monkeypatch, tmp_path, untrained_store)
        sidecar = npz.with_suffix(".arena")

        built = zoo_build.load_model("tiny")  # cold: builds npz + sidecar
        assert npz.exists() and arena_valid(sidecar)
        assert built.fingerprint() == untrained_store.fingerprint()
        assert built.shared_dir == sidecar

        warm = zoo_build.load_model("tiny")  # warm: attaches the sidecar
        assert warm.shared_dir == sidecar
        assert warm.fingerprint() == untrained_store.fingerprint()

    def test_sidecar_regenerated_from_npz(
        self, monkeypatch, tmp_path, untrained_store
    ):
        zoo_build, npz = self._patch_zoo(monkeypatch, tmp_path, untrained_store)
        sidecar = npz.with_suffix(".arena")
        zoo_build.load_model("tiny")
        shutil.rmtree(sidecar)  # cache predating the sidecar (or torn)

        regen = zoo_build.load_model("tiny")
        assert arena_valid(sidecar)
        assert regen.fingerprint() == untrained_store.fingerprint()

    def test_prefer_shared_false_gives_private_arrays(
        self, monkeypatch, tmp_path, untrained_store
    ):
        zoo_build, npz = self._patch_zoo(monkeypatch, tmp_path, untrained_store)
        zoo_build.load_model("tiny")
        legacy = zoo_build.load_model("tiny", prefer_shared=False)
        assert legacy.fingerprint() == untrained_store.fingerprint()
        assert all(a.flags.writeable for _n, a in legacy.items())
