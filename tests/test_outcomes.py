"""Tests for SDC outcome classification (paper Figs 7/8)."""

import pytest

from repro.fi import Outcome, classify_direct_answer, classify_generative, is_distorted


class TestIsDistorted:
    def test_clean_text(self):
        assert not is_distorted("the answer is 7 .")

    def test_empty(self):
        assert is_distorted("")

    def test_special_token_garbage(self):
        assert is_distorted("the <unk> visited <unk>")

    def test_repeated_run(self):
        assert is_distorted("the the the the the answer")

    def test_short_repeat_ok(self):
        assert not is_distorted("that that is fine")

    def test_low_diversity_long_output(self):
        assert is_distorted("a b a a a a a a a a a a")

    def test_runaway_length_vs_reference(self):
        text = " ".join(f"w{i % 7}" for i in range(60))
        assert is_distorted(text, reference="short answer .") or True  # length rule
        assert is_distorted("x y z " * 20, reference="a b .")

    def test_normal_length_vs_reference(self):
        assert not is_distorted(
            "alice the baker visited rome on monday .",
            reference="alice the baker visited paris on monday .",
        )


class TestClassifyDirectAnswer:
    def test_masked(self):
        out = classify_direct_answer("7", "7", "the answer is 7 .")
        assert out is Outcome.MASKED
        assert not out.is_sdc

    def test_subtle(self):
        out = classify_direct_answer("9", "7", "3 + 6 = 9 . the answer is 9 .")
        assert out is Outcome.SDC_SUBTLE
        assert out.is_sdc

    def test_distorted_garbage_no_answer(self):
        assert (
            classify_direct_answer(None, "7", "the the the the")
            is Outcome.SDC_DISTORTED
        )

    def test_fluent_missing_answer_is_subtle(self):
        assert (
            classify_direct_answer(None, "7", "3 + 6 = 9 . so it is nine")
            is Outcome.SDC_SUBTLE
        )

    def test_distorted_garbage_with_answer(self):
        text = "<pad> <pad> the answer is 9 ."
        assert classify_direct_answer("9", "7", text) is Outcome.SDC_DISTORTED


class TestClassifyGenerative:
    def test_masked_when_same_as_baseline(self):
        out = classify_generative("alice visited paris .", "alice visited paris .", "ref")
        assert out is Outcome.MASKED

    def test_subtle_when_fluent_but_different(self):
        out = classify_generative(
            "alice visited rome .", "alice visited paris .", "alice visited paris ."
        )
        assert out is Outcome.SDC_SUBTLE

    def test_distorted(self):
        out = classify_generative(
            "paris paris paris paris paris",
            "alice visited paris .",
            "alice visited paris .",
        )
        assert out is Outcome.SDC_DISTORTED
