"""Deeper tests of decoding internals and campaign bookkeeping."""

import numpy as np
import pytest

from repro.fi import FaultModel, FICampaign
from repro.generation import GenerationConfig, beam_search_decode, greedy_decode
from repro.generation.decode import _Beam
from repro.numerics.stats import RatioCI
from repro.tasks import MMLUTask, TranslationTask, standardized_subset


class TestBeamInternals:
    def test_length_normalization(self):
        beam = _Beam(session=None, tokens=[1, 2, 3, 4], score=-4.0, finished=False)
        assert beam.normalized(1.0) == pytest.approx(-1.0)
        assert beam.normalized(0.0) == pytest.approx(-4.0)

    def test_empty_beam_normalization_safe(self):
        beam = _Beam(session=None, tokens=[], score=-1.0, finished=False)
        assert np.isfinite(beam.normalized(1.0))

    def test_eos_terminates_beam(self, untrained_engine):
        """Forcing EOS as the argmax stops generation immediately."""
        vocab = untrained_engine.config.vocab_size

        def force_eos(out, ctx):
            return out

        cfg = GenerationConfig(max_new_tokens=6, num_beams=2, eos_id=2)
        result = beam_search_decode(untrained_engine, [3, 4], cfg)
        assert len(result) <= 6
        assert 2 not in result  # EOS is never emitted as content

    def test_beam_wider_explores_no_worse_prefix(self, untrained_engine):
        cfg2 = GenerationConfig(max_new_tokens=4, num_beams=2, eos_id=2)
        cfg6 = GenerationConfig(max_new_tokens=4, num_beams=6, eos_id=2)
        out2 = beam_search_decode(untrained_engine, [5, 9], cfg2)
        out6 = beam_search_decode(untrained_engine, [5, 9], cfg6)
        assert isinstance(out2, list) and isinstance(out6, list)

    def test_greedy_emits_no_eos(self, untrained_engine):
        cfg = GenerationConfig(max_new_tokens=10, eos_id=2)
        out = greedy_decode(untrained_engine, [7, 3], cfg)
        assert 2 not in out


class TestCampaignBookkeeping:
    def _mc(self, engine, tokenizer, world, n_examples=3):
        task = MMLUTask(world)
        return FICampaign(
            engine=engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, n_examples),
            fault_model=FaultModel.MEM_2BIT,
            seed=2,
        )

    def test_examples_cycle_round_robin(self, untrained_engine, tokenizer, world):
        result = self._mc(untrained_engine, tokenizer, world).run(7)
        indices = [t.example_index for t in result.trials]
        assert indices == [0, 1, 2, 0, 1, 2, 0]

    def test_baseline_cached(self, untrained_engine, tokenizer, world):
        campaign = self._mc(untrained_engine, tokenizer, world)
        first = campaign.compute_baseline()
        assert campaign.compute_baseline() is first

    def test_per_example_baseline_mc(self, untrained_engine, tokenizer, world):
        campaign = self._mc(untrained_engine, tokenizer, world)
        campaign.compute_baseline()
        for idx in range(3):
            value = campaign._per_example_baseline("accuracy", idx)
            assert value in (0.0, 100.0)

    def test_gen_campaign_normalized_uses_per_example_base(
        self, untrained_engine, tokenizer, world
    ):
        task = TranslationTask(world)
        campaign = FICampaign(
            engine=untrained_engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, 2),
            fault_model=FaultModel.COMP_1BIT,
            seed=3,
            generation=GenerationConfig(max_new_tokens=6, eos_id=2),
        )
        result = campaign.run(4)
        for ci in result.normalized.values():
            assert isinstance(ci, RatioCI)

    def test_trial_sites_seed_namespaced(self, untrained_engine, tokenizer, world):
        a = self._mc(untrained_engine, tokenizer, world)
        b = self._mc(untrained_engine, tokenizer, world)
        b.seed = 99
        a.compute_baseline()
        b.compute_baseline()
        site_a = a._trial_site(0, 1)
        site_b = b._trial_site(0, 1)
        assert site_a != site_b


class TestRatioCI:
    def test_margin(self):
        ci = RatioCI(0.9, 0.8, 1.0)
        assert ci.margin == pytest.approx(0.1)

    def test_contains(self):
        ci = RatioCI(0.9, 0.8, 1.0)
        assert 0.85 in ci
        assert 1.1 not in ci
