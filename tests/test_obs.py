"""Tests for the repro.obs telemetry subsystem."""

import json

import numpy as np
import pytest

from repro.fi import FaultModel, FICampaign
from repro.harness.results import ExperimentResult, load_result, save_result
from repro.obs import (
    TELEMETRY_SCHEMA_VERSION,
    MetricsRegistry,
    SchemaMismatchError,
    SpanRecord,
    Tracer,
    attach_layer_timing,
    build_manifest,
    check_schema,
    config_hash,
    read_jsonl,
    read_run,
    telemetry,
    write_run,
)
from repro.tasks import MMLUTask, standardized_subset


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts and ends with pristine, disabled telemetry."""
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


# ----------------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------------


class TestTracer:
    def test_nesting_records_parent_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="campaign"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].attrs == {"kind": "campaign"}

    def test_finish_order_and_start_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # Finish order: inner completes first; start order via span_id.
        assert [r.name for r in tracer.records] == ["b", "a"]
        assert [r.name for r in sorted(tracer.records, key=lambda r: r.span_id)] == [
            "a",
            "b",
        ]

    def test_durations_nest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].duration >= by_name["inner"].duration >= 0.0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x", a=1):
            tracer.event("y")
        assert tracer.records == []

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second  # no per-call allocation on the fast path
        first.set(ignored=True)

    def test_set_attaches_mid_span_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("trial") as span:
            span.set(outcome="masked")
        assert tracer.records[0].attrs["outcome"] == "masked"

    def test_adopt_rekeys_and_anchors(self):
        worker = Tracer(enabled=True)
        with worker.span("trial"):
            with worker.span("decode"):
                pass
        parent = Tracer(enabled=True)
        with parent.span("campaign"):
            parent.adopt(worker.records)
        by_name = {r.name: r for r in parent.records}
        assert by_name["trial"].parent_id == by_name["campaign"].span_id
        assert by_name["decode"].parent_id == by_name["trial"].span_id
        ids = [r.span_id for r in parent.records]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.counter("c").add(2)
        registry.gauge("g").set(0.5)
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 0.5
        with pytest.raises(ValueError):
            registry.counter("c").add(-1)

    def test_histogram_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0
        assert hist.quantile(0.5) == pytest.approx(50.5)
        assert hist.quantile(0.95) == pytest.approx(95.05)
        assert hist.quantile(0.99) == pytest.approx(99.01)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_quantile_order_invariance(self):
        forward = MetricsRegistry().histogram("h")
        backward = MetricsRegistry().histogram("h")
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert forward.quantile(q) == backward.quantile(q)

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) == 0.0
        assert hist.summary() == {"count": 0}

    def test_snapshot_merge_is_partition_invariant(self):
        whole = MetricsRegistry()
        for i in range(10):
            whole.counter("n").add()
            whole.histogram("h").observe(float(i))
        left, right = MetricsRegistry(), MetricsRegistry()
        for i in range(10):
            part = left if i < 4 else right
            part.counter("n").add()
            part.histogram("h").observe(float(i))
        merged = MetricsRegistry.from_snapshot(right.snapshot())
        merged.merge(left.snapshot())
        assert merged.counter("n").value == whole.counter("n").value
        for q in (0.5, 0.95, 0.99):
            assert merged.histogram("h").quantile(q) == whole.histogram(
                "h"
            ).quantile(q)


# ----------------------------------------------------------------------------
# JSONL round-trip + manifest
# ----------------------------------------------------------------------------


class TestExport:
    def test_run_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", site="blocks.0.q_proj"):
            with tracer.span("inner"):
                pass
        registry = MetricsRegistry()
        registry.counter("trials").add(5)
        registry.histogram("latency_ms").observe(1.25)
        path = tmp_path / "run.jsonl"
        write_run(
            path,
            build_manifest(seed=7, config={"task": "mmlu"}, command="test"),
            spans=tracer.records,
            metrics=registry,
            extra_records=[{"kind": "row", "x": 1}],
        )
        run = read_run(path)
        assert run.manifest["seed"] == 7
        assert [s.name for s in run.spans] == ["inner", "outer"]
        assert run.spans[1].attrs == {"site": "blocks.0.q_proj"}
        assert run.spans[0].parent_id == run.spans[1].span_id
        assert run.metrics.counter("trials").value == 5
        assert run.metrics.histogram("latency_ms").values == [1.25]
        assert run.of_kind("row") == [{"kind": "row", "x": 1}]

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_run(path, build_manifest(config={}), extra_records=[{"kind": "x"}])
        for record in read_jsonl(path):
            assert isinstance(record, dict) and "kind" in record

    def test_non_run_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "span"}) + "\n")
        with pytest.raises(ValueError, match="manifest"):
            read_run(path)


class TestManifest:
    def test_config_hash_deterministic(self):
        config = {"seed": 3, "task": "gsm8k", "trials": 60}
        assert config_hash(config) == config_hash(dict(reversed(config.items())))
        assert config_hash(config) != config_hash({**config, "seed": 4})

    def test_manifest_determinism_given_fixed_seed(self):
        a = build_manifest(seed=42, config={"task": "mmlu"}, command="c")
        b = build_manifest(seed=42, config={"task": "mmlu"}, command="c")
        volatile = ("created_unix", "created_iso")
        assert {k: v for k, v in a.items() if k not in volatile} == {
            k: v for k, v in b.items() if k not in volatile
        }
        assert a["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert a["seed"] == 42
        assert "python" in a["packages"]

    def test_schema_check(self):
        good = build_manifest(config={})
        assert check_schema(good) is good
        with pytest.raises(SchemaMismatchError, match="schema mismatch"):
            check_schema({**good, "schema_version": TELEMETRY_SCHEMA_VERSION + 1})

    def test_stale_run_file_fails_loudly(self, tmp_path):
        path = tmp_path / "old.jsonl"
        manifest = build_manifest(config={})
        manifest["schema_version"] = 0
        write_run(path, manifest)
        with pytest.raises(SchemaMismatchError):
            read_run(path)


# ----------------------------------------------------------------------------
# Result persistence (harness/results.py schema assertion)
# ----------------------------------------------------------------------------


class TestResultPersistence:
    def test_round_trip(self, tmp_path):
        result = ExperimentResult("fig99", "test table")
        result.add(task="mmlu", normalized=0.97)
        result.note("a note")
        path = save_result(result, tmp_path / "fig99.jsonl", seed=1)
        loaded = load_result(path)
        assert loaded.experiment_id == "fig99"
        assert loaded.rows == [{"task": "mmlu", "normalized": 0.97}]
        assert loaded.notes == ["a note"]

    def test_loading_old_schema_raises(self, tmp_path):
        result = ExperimentResult("fig99", "test table")
        path = save_result(result, tmp_path / "fig99.jsonl")
        records = read_jsonl(path)
        records[0]["schema_version"] = 999
        path.write_text(
            "\n".join(json.dumps(r, default=str) for r in records) + "\n"
        )
        with pytest.raises(SchemaMismatchError):
            load_result(path)


# ----------------------------------------------------------------------------
# Instrumented campaign + deterministic multiprocess merge
# ----------------------------------------------------------------------------


def _campaign(engine, tokenizer, world):
    task = MMLUTask(world)
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 4),
        fault_model=FaultModel.MEM_2BIT,
        seed=5,
    )


class TestCampaignTelemetry:
    def test_disabled_telemetry_stays_empty(
        self, untrained_engine, tokenizer, world, clean_telemetry
    ):
        _campaign(untrained_engine, tokenizer, world).run(4)
        assert clean_telemetry.tracer.records == []
        assert len(clean_telemetry.metrics) == 0

    def test_trial_spans_and_outcome_tallies(
        self, untrained_engine, tokenizer, world, clean_telemetry
    ):
        tel = clean_telemetry
        tel.enable()
        result = _campaign(untrained_engine, tokenizer, world).run(6)
        trial_spans = [
            r for r in tel.tracer.records if r.name == "campaign.trial"
        ]
        assert len(trial_spans) == 6
        assert all("site" in s.attrs and "outcome" in s.attrs for s in trial_spans)
        counters = tel.metrics.counters
        assert counters["campaign.trials"].value == 6
        outcome_total = sum(
            c.value
            for name, c in counters.items()
            if name.startswith("campaign.outcome.")
        )
        assert outcome_total == 6
        masked = counters.get("campaign.outcome.masked")
        expected_masked = sum(t.outcome.value == "masked" for t in result.trials)
        assert (masked.value if masked else 0) == expected_masked
        assert tel.metrics.histogram("campaign.trial_ms").count == 6
        # Per-layer timing hooks detach cleanly after the run.
        assert len(untrained_engine.hooks) == 0
        assert any(
            name.startswith("engine.layer_ms.")
            for name in tel.metrics.histograms
        )

    # Execution-health telemetry that exists only in pooled runs (pool
    # spinup, arena attachment, work stealing) — set aside when
    # comparing the merged science counters/spans against serial.
    POOL_ONLY_COUNTERS = ("campaign.shared_attach", "campaign.steals")
    POOL_ONLY_SPANS = ("campaign.pool_spinup",)

    def test_multiprocess_merge_matches_serial(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        """Worker telemetry merges deterministically: the merged stream
        has exactly the counters/span-counts of the serial run, however
        the trial range was partitioned."""
        from repro.inference import InferenceEngine

        tel = clean_telemetry
        tel.enable()
        _campaign(InferenceEngine(untrained_store), tokenizer, world).run(
            6, n_workers=0
        )
        serial_counters = dict(tel.metrics.snapshot()["counters"])
        serial_hist_counts = {
            k: len(v) for k, v in tel.metrics.snapshot()["histograms"].items()
        }
        serial_span_names = sorted(r.name for r in tel.tracer.records)

        for n_workers in (2, 3):
            tel.reset()
            tel.enable()
            _campaign(InferenceEngine(untrained_store), tokenizer, world).run(
                6, n_workers=n_workers
            )
            snapshot = tel.metrics.snapshot()
            merged_counters = {
                k: v
                for k, v in snapshot["counters"].items()
                if k not in self.POOL_ONLY_COUNTERS
            }
            assert merged_counters == serial_counters
            # The persistent pool attaches each worker to the shared
            # arena exactly once.
            assert (
                snapshot["counters"]["campaign.shared_attach"] == n_workers
            )
            assert {
                k: len(v) for k, v in snapshot["histograms"].items()
            } == serial_hist_counts
            merged_span_names = sorted(
                r.name
                for r in tel.tracer.records
                if r.name not in self.POOL_ONLY_SPANS
            )
            assert merged_span_names == serial_span_names
            span_ids = [r.span_id for r in tel.tracer.records]
            assert len(span_ids) == len(set(span_ids))

    def test_trial_results_identical_with_telemetry(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        """Instrumentation must not perturb the science."""
        from repro.inference import InferenceEngine

        plain = _campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(5)
        clean_telemetry.enable()
        traced = _campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(5)
        assert [t.site for t in plain.trials] == [t.site for t in traced.trials]
        assert [t.prediction for t in plain.trials] == [
            t.prediction for t in traced.trials
        ]


# ----------------------------------------------------------------------------
# Engine / decode instrumentation
# ----------------------------------------------------------------------------


class TestEngineInstrumentation:
    def test_forward_metrics(self, untrained_engine, clean_telemetry):
        tel = clean_telemetry
        tel.enable()
        untrained_engine.forward_full([1, 2, 3])
        assert tel.metrics.counter("engine.forward_calls").value == 1
        assert tel.metrics.counter("engine.tokens").value == 3
        assert tel.metrics.histogram("engine.forward_ms").count == 1
        assert 0.0 < tel.metrics.gauge("engine.kv_occupancy").value <= 1.0

    def test_layer_timing_covers_all_layers(
        self, untrained_engine, clean_telemetry
    ):
        tel = clean_telemetry
        tel.enable()
        detach = attach_layer_timing(untrained_engine, tel)
        untrained_engine.forward_full([1, 2, 3])
        detach()
        names = {
            name[len("engine.layer_ms.") :]
            for name in tel.metrics.histograms
            if name.startswith("engine.layer_ms.")
        }
        assert names == set(untrained_engine.linear_layer_names())
        assert len(untrained_engine.hooks) == 0

    def test_forward_unchanged_by_instrumentation(
        self, untrained_engine, clean_telemetry
    ):
        baseline = untrained_engine.forward_full([1, 2, 3])
        clean_telemetry.enable()
        detach = attach_layer_timing(untrained_engine, clean_telemetry)
        traced = untrained_engine.forward_full([1, 2, 3])
        detach()
        np.testing.assert_array_equal(baseline, traced)


class TestReport:
    def test_report_renders_key_sections(self, tmp_path, clean_telemetry):
        from repro.obs import report_path

        tel = clean_telemetry
        tel.enable()
        with tel.span("campaign.trial", site="blocks.0.q_proj"):
            pass
        tel.metrics.counter("campaign.outcome.masked").add(3)
        tel.metrics.counter("campaign.outcome.sdc_subtle").add(1)
        tel.metrics.counter("decode.tokens").add(40)
        tel.metrics.histogram("decode.generate_ms").observe(20.0)
        tel.metrics.histogram("engine.layer_ms.blocks.0.q_proj").observe(0.5)
        path = tel.flush(tmp_path / "run.jsonl", seed=3, command="test")
        text = report_path(path)
        assert "campaign.trial" in text
        assert "engine.layer_ms.blocks.0.q_proj" in text
        assert "tokens/sec" in text
        assert "SDC rate: 0.250" in text
        assert "schema         v1" in text
