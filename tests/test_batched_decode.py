"""Continuous-batched decoding: pool mechanics and equivalence.

The batched decode path must be indistinguishable from the serial
reference loop:

* ``PooledKVCache`` slot bookkeeping (acquire/release/copy-on-fork)
  never corrupts neighbouring sequences;
* ``forward_step_batch`` at ``B == 1`` is bit-identical to
  ``Session.step`` and agrees at the argmax level for ragged ``B > 1``;
* greedy and beam decoding produce token-for-token serial outputs,
  including when slots retire and refill mid-run;
* the FI-safety gate batches exactly when results cannot change —
  row-scoped injector hooks keep batching, everything else falls back.

Campaign-level ``decode_strategy`` bit-identity sweeps are consolidated
in ``test_differential.py`` behind ``repro.fi.assert_records_equal``.
"""

import numpy as np
import pytest

from repro.fi import (
    ComputationalFaultInjector,
    FaultModel,
    FaultSite,
    MemoryFaultInjector,
)
from repro.generation import (
    BatchedDecoder,
    GenerationConfig,
    beam_search_decode,
    decode_batching_safe,
    generate_ids,
    greedy_decode,
)
from repro.inference.engine import CaptureState
from repro.obs import telemetry

PROMPT = [3, 5, 7, 2, 9]
PROMPTS = [[3, 5, 7], [11, 13, 17, 19, 4], [23, 29], [8, 15, 16, 42], [6], [31, 37]]


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


def _config(**kw):
    kw.setdefault("max_new_tokens", 8)
    kw.setdefault("eos_id", -1)
    return GenerationConfig(**kw)


class TestPooledKVCache:
    def _pool(self, untrained_engine, n_slots=3):
        return untrained_engine.new_pool(n_slots)

    def test_acquire_release_cycle(self, untrained_engine):
        pool = self._pool(untrained_engine)
        slots = [pool.acquire() for _ in range(3)]
        assert slots == [0, 1, 2]
        assert pool.n_free == 0
        pool.release(1)
        assert pool.n_free == 1
        assert pool.acquire() == 1

    def test_exhaustion_raises(self, untrained_engine):
        pool = self._pool(untrained_engine, n_slots=1)
        pool.acquire()
        with pytest.raises(ValueError, match="exhausted"):
            pool.acquire()

    def test_double_free_raises(self, untrained_engine):
        pool = self._pool(untrained_engine)
        slot = pool.acquire()
        pool.release(slot)
        with pytest.raises(ValueError, match="already free"):
            pool.release(slot)

    def test_release_out_of_range_raises(self, untrained_engine):
        pool = self._pool(untrained_engine)
        with pytest.raises(ValueError, match="out of range"):
            pool.release(7)

    def test_views_are_arena_backed(self, untrained_engine):
        pool = self._pool(untrained_engine)
        slot = pool.acquire()
        caches = pool.caches(slot)
        assert np.shares_memory(caches[0].k, pool._k[0])

    def test_acquire_resets_stale_lengths(self, untrained_engine):
        pool = self._pool(untrained_engine)
        slot = pool.acquire()
        cache = pool.caches(slot)[0]
        cache.append(np.ones((4, 2, 8), np.float32), np.ones((4, 2, 8), np.float32))
        pool.release(slot)
        again = pool.acquire()
        assert again == slot
        assert all(c.length == 0 for c in pool.caches(again))

    def test_copy_slot_copies_prefix(self, untrained_engine):
        pool = self._pool(untrained_engine)
        src, dst = pool.acquire(), pool.acquire()
        rng = np.random.default_rng(0)
        for cache in pool.caches(src):
            cache.append(
                rng.normal(size=(4, 3, 8)).astype(np.float32),
                rng.normal(size=(4, 3, 8)).astype(np.float32),
            )
        pool.copy_slot(src, dst)
        for a, b in zip(pool.caches(src), pool.caches(dst)):
            assert b.length == a.length == 3
            np.testing.assert_array_equal(a.keys(), b.keys())
            np.testing.assert_array_equal(a.values(), b.values())
        # The copy is independent: appending to dst leaves src alone.
        pool.caches(dst)[0].append(
            np.ones((4, 1, 8), np.float32), np.ones((4, 1, 8), np.float32)
        )
        assert pool.caches(src)[0].length == 3

    def test_load_adopts_external_caches(self, untrained_engine):
        session = untrained_engine.start_session(PROMPT)
        pool = self._pool(untrained_engine)
        slot = pool.acquire()
        pool.load(slot, session.caches)
        for view, cache in zip(pool.caches(slot), session.caches):
            assert view.length == cache.length
            np.testing.assert_array_equal(view.keys(), cache.keys())


class TestForwardStepBatch:
    def test_b1_bitwise_matches_session_step(self, untrained_engine):
        session = untrained_engine.start_session(PROMPT)
        pool = untrained_engine.new_pool(1)
        slot = pool.acquire()
        pool.load(slot, session.caches)
        position, iteration = session.position, session.iteration
        for token in (4, 8, 15):
            serial = session.step(token)
            batched = untrained_engine.forward_step_batch(
                [token], [pool.caches(slot)], [position], [iteration + 1]
            )
            position += 1
            iteration += 1
            np.testing.assert_array_equal(batched[0], serial)

    def test_ragged_batch_matches_serial_argmax(self, untrained_engine):
        sessions = [untrained_engine.start_session(p) for p in PROMPTS[:3]]
        pool = untrained_engine.new_pool(3)
        slots = [pool.acquire() for _ in sessions]
        for slot, s in zip(slots, sessions):
            pool.load(slot, s.caches)
        tokens = [4, 8, 15]
        serial = [s.step(t) for s, t in zip(sessions, tokens)]
        batched = untrained_engine.forward_step_batch(
            tokens,
            [pool.caches(s) for s in slots],
            [s.position - 1 for s in sessions],
            [s.iteration for s in sessions],
        )
        for row, ref in enumerate(serial):
            np.testing.assert_allclose(batched[row], ref, rtol=2e-5, atol=1e-5)
            assert int(np.argmax(batched[row])) == int(np.argmax(ref))

    def test_rejects_capture(self, untrained_engine):
        pool = untrained_engine.new_pool(1)
        slot = pool.acquire()
        untrained_engine.forward(PROMPT, pool.caches(slot), 0, 0)
        untrained_engine.capture = CaptureState()
        try:
            with pytest.raises(RuntimeError, match="capture"):
                untrained_engine.forward_step_batch(
                    [4], [pool.caches(slot)], [len(PROMPT)], [1]
                )
        finally:
            untrained_engine.capture = None

    def test_rejects_shape_mismatch(self, untrained_engine):
        pool = untrained_engine.new_pool(1)
        slot = pool.acquire()
        with pytest.raises(ValueError):
            untrained_engine.forward_step_batch(
                np.zeros((2, 2), np.int64), [pool.caches(slot)], [0], [0]
            )
        with pytest.raises(ValueError):
            untrained_engine.forward_step_batch(
                [4, 5], [pool.caches(slot)], [0, 0], [0, 0]
            )


class TestDecodeEquivalence:
    def test_decode_one_bitwise_matches_serial(self, untrained_engine):
        config = _config()
        serial = greedy_decode(untrained_engine, PROMPT, config, strategy="serial")
        batched = BatchedDecoder(untrained_engine, config, max_batch=1).decode_one(
            PROMPT
        )
        assert batched == serial

    def test_decode_many_with_refill_matches_serial(self, untrained_engine):
        config = _config()
        serial = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS
        ]
        # max_batch < n_prompts forces retirements to back-fill slots.
        decoder = BatchedDecoder(untrained_engine, config, max_batch=3)
        assert decoder.decode_many(PROMPTS) == serial

    def test_decode_many_moe(self, moe_engine):
        config = _config(max_new_tokens=6)
        serial = [
            greedy_decode(moe_engine, p, config, strategy="serial")
            for p in PROMPTS[:4]
        ]
        decoder = BatchedDecoder(moe_engine, config, max_batch=2)
        assert decoder.decode_many(PROMPTS[:4]) == serial

    def test_eos_retires_and_output_matches(self, trained_engine, tokenizer):
        prompts = [
            tokenizer.encode("translate : de kato visas un hundo ="),
            tokenizer.encode("translate : de hundo dormas ="),
            tokenizer.encode("translate : de kato ="),
        ]
        config = GenerationConfig(
            max_new_tokens=12, eos_id=tokenizer.vocab.eos_id
        )
        serial = [
            greedy_decode(trained_engine, p, config, strategy="serial")
            for p in prompts
        ]
        decoder = BatchedDecoder(trained_engine, config, max_batch=2)
        assert decoder.decode_many(prompts) == serial

    def test_beam_matches_serial(self, trained_engine, tokenizer):
        prompt = tokenizer.encode("translate : de kato visas un hundo =")
        config = GenerationConfig(
            max_new_tokens=8, num_beams=3, eos_id=tokenizer.vocab.eos_id
        )
        serial = beam_search_decode(
            trained_engine, prompt, config, strategy="serial"
        )
        batched = BatchedDecoder(trained_engine, config).beam_decode(prompt)
        assert batched == serial
        # ... and the auto-routed entry point picks the batched path too.
        assert generate_ids(trained_engine, prompt, config) == serial

    def test_beam_from_prebuilt_session(self, untrained_engine):
        config = _config(max_new_tokens=6, num_beams=3)
        serial = beam_search_decode(
            untrained_engine, PROMPT, config, strategy="serial"
        )
        base = untrained_engine.start_session(PROMPT)
        batched = BatchedDecoder(untrained_engine, config).beam_decode(
            PROMPT, session=base
        )
        assert batched == serial

    def test_generate_many_mixed_sessions(self, untrained_engine):
        config = _config()
        serial = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS[:3]
        ]
        sessions = [None, untrained_engine.start_session(PROMPTS[1]), None]
        decoder = BatchedDecoder(untrained_engine, config, max_batch=3)
        assert decoder.generate_many(PROMPTS[:3], sessions=sessions) == serial

    def test_strategy_knob(self, untrained_engine):
        config = _config()
        assert greedy_decode(
            untrained_engine, PROMPT, config, strategy="batched"
        ) == greedy_decode(untrained_engine, PROMPT, config, strategy="serial")
        with pytest.raises(ValueError, match="strategy"):
            greedy_decode(untrained_engine, PROMPT, config, strategy="turbo")
        with pytest.raises(ValueError, match="strategy"):
            generate_ids(untrained_engine, PROMPT, config, strategy="turbo")

    def test_pool_reuse_across_calls(self, untrained_engine):
        config = _config(max_new_tokens=4)
        decoder = BatchedDecoder(untrained_engine, config, max_batch=3)
        first = decoder.decode_many(PROMPTS[:3])
        pool = decoder._pool
        second = decoder.decode_many(PROMPTS[:3])
        assert decoder._pool is pool
        assert first == second
        assert pool.n_free == pool.n_slots


class TestBatchingSafety:
    def test_fault_free_is_safe(self, untrained_engine):
        assert decode_batching_safe(untrained_engine)

    def test_memory_fault_forces_serial(self, untrained_engine):
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.0.up_proj", 2, 3, bits=(30, 22)
        )
        with MemoryFaultInjector(untrained_engine, site):
            assert not decode_batching_safe(untrained_engine)
        assert decode_batching_safe(untrained_engine)

    def test_capture_forces_serial(self, untrained_engine):
        untrained_engine.capture = CaptureState()
        try:
            assert not decode_batching_safe(untrained_engine)
        finally:
            untrained_engine.capture = None

    def test_unscoped_hook_forces_serial(self, untrained_engine):
        remove = untrained_engine.hooks.register(
            "blocks.0.up_proj", lambda out, ctx: None
        )
        try:
            assert not decode_batching_safe(untrained_engine)
        finally:
            remove()
        assert decode_batching_safe(untrained_engine)

    def test_row_scoped_injector_keeps_batching(self, untrained_engine):
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 3, bits=(30, 22),
            iteration=1,
        )
        with ComputationalFaultInjector(untrained_engine, site):
            assert decode_batching_safe(untrained_engine)

    def test_injected_decode_bitwise_matches_serial(self, untrained_engine):
        """B=1 batched decode under an armed one-shot == serial decode."""
        config = _config()
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.1.down_proj", 0, 5, bits=(30, 21),
            iteration=2, row_frac=0.5,
        )
        with ComputationalFaultInjector(untrained_engine, site):
            serial = greedy_decode(
                untrained_engine, PROMPT, config, strategy="serial"
            )
        with ComputationalFaultInjector(untrained_engine, site):
            batched = greedy_decode(
                untrained_engine, PROMPT, config, strategy="batched"
            )
        clean = greedy_decode(untrained_engine, PROMPT, config, strategy="serial")
        assert batched == serial
        assert serial != clean  # the fault actually landed

    def test_batch_row_filter_pins_the_strike(self, untrained_engine):
        """A row-pinned injector corrupts only its batch row."""
        config = _config()
        clean = greedy_decode(untrained_engine, PROMPT, config, strategy="serial")
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 3, bits=(30, 22),
            iteration=1, row_frac=0.0,
        )
        injector = ComputationalFaultInjector(
            untrained_engine, site, batch_row=1
        )
        with injector:
            outs = BatchedDecoder(
                untrained_engine, config, max_batch=2
            ).decode_many([PROMPT, list(PROMPT)])
        assert injector.fired
        assert outs[0] == clean  # row 0 untouched

    def test_hooks_see_batch_rows(self, untrained_engine):
        seen = []

        def probe(out, ctx):
            seen.append(ctx.batch_row)
            return None

        remove = untrained_engine.hooks.register(
            "blocks.0.up_proj", probe, row_scoped=True
        )
        try:
            BatchedDecoder(untrained_engine, _config(max_new_tokens=2),
                           max_batch=2).decode_many(PROMPTS[:2])
        finally:
            remove()
        assert {0, 1} <= set(seen)

    def test_all_row_scoped_bookkeeping(self, untrained_engine):
        hooks = untrained_engine.hooks
        assert hooks.all_row_scoped()
        remove_a = hooks.register("blocks.0.up_proj", lambda o, c: None)
        remove_b = hooks.register(
            "blocks.0.down_proj", lambda o, c: None, row_scoped=True
        )
        assert not hooks.all_row_scoped()
        remove_a()
        assert hooks.all_row_scoped()
        remove_a()  # idempotent
        assert hooks.all_row_scoped()
        remove_b()


class TestDecodeTelemetry:
    def test_occupancy_and_refills_traced(self, untrained_engine, clean_telemetry):
        clean_telemetry.enable()
        config = _config(max_new_tokens=4)
        BatchedDecoder(untrained_engine, config, max_batch=2).decode_many(PROMPTS)
        hist = clean_telemetry.metrics.histograms["decode.batch_occupancy"]
        assert hist.count > 0
        assert max(hist.values) <= 2
        assert clean_telemetry.metrics.counters["decode.slot_refills"].value > 0
        names = [s.name for s in clean_telemetry.tracer.records]
        assert "decode.batch" in names


