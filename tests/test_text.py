"""Tests for vocabulary and tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import World, all_tasks
from repro.text import EOS, UNK, Tokenizer, Vocab, normalize_text


class TestVocab:
    def test_special_tokens_first(self, tokenizer):
        v = tokenizer.vocab
        assert v.pad_id == 0 and v.bos_id == 1 and v.eos_id == 2
        assert v.token(v.unk_id) == UNK

    def test_dedup(self):
        v = Vocab(["cat", "cat", "dog"])
        assert len(v) == 5 + 2

    def test_unknown_maps_to_unk(self, tokenizer):
        assert tokenizer.vocab.id("zzz-not-a-token") == tokenizer.vocab.unk_id

    def test_bijection(self, tokenizer):
        for idx in range(0, len(tokenizer.vocab), 37):
            token = tokenizer.vocab.token(idx)
            assert tokenizer.vocab.id(token) == idx


class TestTokenizer:
    def test_digit_splitting(self, tokenizer):
        assert tokenizer.tokenize("alice has 42 apples") == [
            "alice", "has", "4", "2", "apples",
        ]

    def test_punctuation_isolated(self, tokenizer):
        assert tokenizer.tokenize("7 + 35 = 42 .") == [
            "7", "+", "3", "5", "=", "4", "2", ".",
        ]

    def test_decode_merges_digits(self, tokenizer):
        ids = tokenizer.encode("the answer is 2600 .")
        assert tokenizer.decode(ids) == "the answer is 2600 ."

    def test_decode_stops_at_eos(self, tokenizer):
        ids = tokenizer.encode("paris", add_eos=True) + tokenizer.encode("rome")
        assert tokenizer.decode(ids) == "paris"

    def test_normalize(self):
        assert normalize_text("Hello,  World?") == "hello , world ?"

    def test_roundtrip_task_text(self, tokenizer):
        text = "question : what is the capital of france ? answer : paris ."
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_special_token_passthrough(self, tokenizer):
        assert tokenizer.tokenize("<sep> x") == ["<sep>", "x"]


class TestVocabClosure:
    """Every text any task generator emits must encode without <unk> —
    the vocabulary is closed over the synthetic world."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_training_texts_in_vocab(self, world, tokenizer, seed):
        rng = np.random.default_rng(seed)
        for task in all_tasks(world):
            for text in task.training_texts(rng, 30):
                ids = tokenizer.encode(text)
                assert tokenizer.vocab.unk_id not in ids, (task.name, text)

    def test_eval_prompts_in_vocab(self, world, tokenizer):
        rng = np.random.default_rng(5)
        for task in all_tasks(world):
            for ex in task.examples(rng, 20):
                texts = (
                    [ex.prompt, *ex.options]
                    if hasattr(ex, "options")
                    else [ex.prompt, ex.reference]
                )
                for text in texts:
                    ids = tokenizer.encode(text)
                    assert tokenizer.vocab.unk_id not in ids, (task.name, text)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_property_number_roundtrip(n):
    """Numbers survive encode->decode via digit merge."""
    world = World(seed=2025)
    from repro.training.data import build_tokenizer

    tok = build_tokenizer(world)
    text = f"the answer is {n} ."
    assert tok.decode(tok.encode(text)) == text
