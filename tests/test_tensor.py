"""Tests for the reverse-mode autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, concat, no_grad

RNG = np.random.default_rng(42)


def _randn(*shape: int) -> np.ndarray:
    return RNG.normal(size=shape).astype(np.float64)


class TestArithmetic:
    def test_add_broadcast_grad(self):
        check_gradients(lambda a, b: a + b, [_randn(3, 4), _randn(4)])

    def test_mul_broadcast_grad(self):
        check_gradients(lambda a, b: a * b, [_randn(2, 3), _randn(1, 3)])

    def test_sub_and_neg(self):
        check_gradients(lambda a, b: a - b, [_randn(3), _randn(3)])

    def test_div(self):
        check_gradients(
            lambda a, b: a / b, [_randn(3), np.abs(_randn(3)) + 1.0]
        )

    def test_pow(self):
        check_gradients(lambda a: a**3.0, [np.abs(_randn(4)) + 0.5])

    def test_scalar_ops(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (2.0 * t + 1.0).sum()
        out.backward()
        np.testing.assert_array_equal(t.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        t = Tensor([2.0], requires_grad=True)
        (1.0 - t).sum().backward()
        np.testing.assert_array_equal(t.grad, [-1.0])
        t2 = Tensor([2.0], requires_grad=True)
        (1.0 / t2).sum().backward()
        np.testing.assert_allclose(t2.grad, [-0.25])


class TestMatmul:
    def test_2d(self):
        check_gradients(lambda a, b: a @ b, [_randn(3, 4), _randn(4, 2)])

    def test_batched(self):
        check_gradients(lambda a, b: a @ b, [_randn(2, 3, 4), _randn(2, 4, 5)])

    def test_broadcast_batch(self):
        check_gradients(lambda a, b: a @ b, [_randn(2, 3, 4), _randn(4, 5)])


class TestUnary:
    def test_exp_log(self):
        check_gradients(lambda a: a.exp(), [_randn(5)])
        check_gradients(lambda a: a.log(), [np.abs(_randn(5)) + 0.5])

    def test_tanh_sigmoid(self):
        check_gradients(lambda a: a.tanh(), [_randn(5)])
        check_gradients(lambda a: a.sigmoid(), [_randn(5)])

    def test_sigmoid_saturation(self):
        t = Tensor(np.array([-100.0, 100.0], np.float32))
        out = t.sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-6)


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0), [_randn(3, 4)])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [_randn(3, 4)])

    def test_mean(self):
        check_gradients(lambda a: a.mean(axis=-1), [_randn(2, 5)])

    def test_reshape_transpose(self):
        check_gradients(lambda a: a.reshape(6, 2), [_randn(3, 4)])
        check_gradients(lambda a: a.transpose(1, 0, 2), [_randn(2, 3, 4)])
        check_gradients(lambda a: a.swapaxes(0, 1), [_randn(3, 2)])

    def test_getitem(self):
        check_gradients(lambda a: a[1:], [_randn(4, 3)])

    def test_take_rows_accumulates_repeats(self):
        w = Tensor(_randn(5, 3).astype(np.float32), requires_grad=True)
        idx = np.array([0, 0, 2])
        out = w.take_rows(idx)
        out.sum().backward()
        np.testing.assert_array_equal(w.grad[0], [2.0, 2.0, 2.0])
        np.testing.assert_array_equal(w.grad[1], [0.0, 0.0, 0.0])

    def test_concat(self):
        check_gradients(
            lambda a, b: concat([a, b], axis=1), [_randn(2, 3), _randn(2, 2)]
        )


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor([3.0], requires_grad=True)
        out = t * t  # t used twice
        out.backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_diamond_graph(self):
        # f(x) = (x*2) + (x*3): grad = 5.
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0 + t * 3.0).backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_deep_chain_no_recursion(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(2000):  # would blow the stack if recursive
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_property_linear_grad_is_weight(n, m):
    """d(sum(x @ W))/dx == row sums of W for any shapes."""
    rng = np.random.default_rng(n * 31 + m)
    w = rng.normal(size=(n, m)).astype(np.float32)
    x = Tensor(rng.normal(size=(2, n)).astype(np.float32), requires_grad=True)
    (x @ Tensor(w)).sum().backward()
    expected = np.broadcast_to(w.sum(axis=1), (2, n))
    np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-5)
