"""Tests for the error-propagation geometry (paper Figs 5 and 6).

These verify the paper's central mechanism claims on our engine:
memory faults corrupt a *column* of the injected layer's output and
then blanket the next layer; computational faults corrupt a *row* (one
token) and stay contained.
"""

import numpy as np

from repro.fi import FaultModel, FaultSite, trace_fault

PROMPT = [3, 17, 8, 25, 4, 11, 30, 2, 19, 7]


def _mem_site(engine, bit=30):
    layer = "blocks.0.up_proj"
    return FaultSite(
        FaultModel.MEM_2BIT, layer, row=5, col=7, bits=(bit, bit - 1)
    )


class TestMemoryPropagation:
    def test_column_corruption_in_injected_layer(self, untrained_engine):
        trace = trace_fault(untrained_engine, _mem_site(untrained_engine), PROMPT)
        profile = trace.column_profile("blocks.0.up_proj")
        # The faulty weight column is corrupted for every token...
        assert profile[7] == 1.0
        # ...and no other column is touched in the injected layer.
        others = np.delete(profile, 7)
        assert others.max() == 0.0

    def test_spreads_to_full_tensor_next_layer(self, untrained_engine):
        trace = trace_fault(untrained_engine, _mem_site(untrained_engine), PROMPT)
        # down_proj consumes the corrupted column: every row (token)
        # becomes corrupted across (nearly) all columns.
        frac = trace.corrupted_fraction("blocks.0.down_proj")
        assert frac > 0.9
        rows = trace.row_profile("blocks.0.down_proj")
        assert (rows > 0.5).all()

    def test_trace_restores_engine(self, untrained_engine):
        baseline = untrained_engine.forward_full(PROMPT)
        trace_fault(untrained_engine, _mem_site(untrained_engine), PROMPT)
        np.testing.assert_array_equal(
            untrained_engine.forward_full(PROMPT), baseline
        )

    def test_low_bit_flip_may_not_spread(self, untrained_engine):
        """Mantissa-bit faults produce tiny, often-masked deviations."""
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.0.up_proj", row=5, col=7, bits=(0, 1)
        )
        trace = trace_fault(untrained_engine, site, PROMPT)
        big = trace_fault(untrained_engine, _mem_site(untrained_engine), PROMPT)
        assert trace.corrupted_fraction("blocks.0.down_proj") <= (
            big.corrupted_fraction("blocks.0.down_proj")
        )


class TestComputationalPropagation:
    def _site(self, col=7, row_frac=0.35):
        return FaultSite(
            FaultModel.COMP_2BIT,
            "blocks.0.up_proj",
            row=0,
            col=col,
            bits=(30, 28),
            iteration=0,
            row_frac=row_frac,
        )

    def test_single_row_in_injected_layer(self, untrained_engine):
        trace = trace_fault(untrained_engine, self._site(), PROMPT)
        rows = trace.row_profile("blocks.0.up_proj")
        assert (rows > 0).sum() == 1  # exactly one token row corrupted

    def test_row_local_in_next_layer(self, untrained_engine):
        trace = trace_fault(untrained_engine, self._site(), PROMPT)
        rows = trace.row_profile("blocks.0.down_proj")
        assert (rows > 0).sum() == 1  # corruption stays on the token

    def test_contained_vs_memory_fault(self, untrained_engine):
        """Computational corruption affects far less of the next block
        than memory corruption does (the paper's key asymmetry)."""
        comp = trace_fault(untrained_engine, self._site(), PROMPT)
        mem = trace_fault(untrained_engine, _mem_site(untrained_engine), PROMPT)
        layer = "blocks.1.up_proj"
        assert comp.corrupted_fraction(layer) < mem.corrupted_fraction(layer)

    def test_later_tokens_see_fault_through_attention(self, untrained_engine):
        """The corrupted token's K/V leaks to *later* rows in the next
        block via attention, but never to earlier rows (causality)."""
        trace = trace_fault(untrained_engine, self._site(row_frac=0.35), PROMPT)
        corrupted_row = int(0.35 * len(PROMPT))
        rows = trace.row_profile("blocks.1.q_proj")
        affected = np.nonzero(rows > 0)[0]
        assert affected.size >= 1
        assert affected.min() >= corrupted_row
