"""Tests for configs, the parameter store and the trainable transformer."""

import numpy as np
import pytest

from repro.model import (
    LINEAR_LAYER_NAMES,
    ModelConfig,
    ParamStore,
    TransformerLM,
    block_linear_layers,
    causal_mask,
    init_params,
    rope_tables,
)


def _cfg(**overrides) -> ModelConfig:
    defaults = dict(
        vocab_size=40, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=32
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            _cfg(d_model=30)  # not divisible by heads
        with pytest.raises(ValueError):
            _cfg(n_experts=4, top_k=5)

    def test_head_dim(self):
        assert _cfg().head_dim == 8

    def test_n_params_matches_store_dense(self):
        cfg = _cfg()
        assert init_params(cfg, 0).n_params() == cfg.n_params()

    def test_n_params_matches_store_moe(self):
        cfg = _cfg(n_experts=4, d_ff=24)
        assert init_params(cfg, 0).n_params() == cfg.n_params()

    def test_json_roundtrip(self):
        cfg = _cfg(n_experts=4)
        assert ModelConfig.from_json(cfg.to_json()) == cfg


class TestParamStore:
    def test_init_deterministic(self):
        cfg = _cfg()
        a, b = init_params(cfg, 3), init_params(cfg, 3)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != init_params(cfg, 4).fingerprint()

    def test_linear_layer_names_dense(self):
        cfg = _cfg()
        names = init_params(cfg, 0).linear_layer_names()
        assert len(names) == cfg.n_blocks * len(LINEAR_LAYER_NAMES)
        assert "blocks.0.q_proj" in names
        assert "lm_head" not in names  # excluded from FI targets

    def test_linear_layer_names_moe(self):
        cfg = _cfg(n_experts=4, d_ff=24)
        names = block_linear_layers(cfg, 0)
        assert "blocks.0.router" in names
        assert "blocks.0.experts.3.down_proj" in names
        assert len(names) == 5 + 4 * 3

    def test_save_load_roundtrip(self, tmp_path):
        store = init_params(_cfg(), 7)
        path = tmp_path / "model.npz"
        store.save(path)
        loaded = ParamStore.load(path)
        assert loaded.fingerprint() == store.fingerprint()
        assert loaded.config == store.config

    def test_setitem_shape_guard(self):
        store = init_params(_cfg(), 0)
        with pytest.raises(ValueError):
            store["embed.weight"] = np.zeros((2, 2), np.float32)

    def test_copy_is_deep(self):
        store = init_params(_cfg(), 0)
        clone = store.copy()
        clone["final_norm.weight"][:] = 0.0
        assert store["final_norm.weight"].sum() > 0


class TestRopeAndMask:
    def test_rope_tables_shape(self):
        cos, sin = rope_tables(8, 16, 10000.0)
        assert cos.shape == sin.shape == (16, 8)
        np.testing.assert_allclose(cos[0], 1.0)  # position 0: no rotation
        np.testing.assert_allclose(sin[0], 0.0)

    def test_rope_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_tables(7, 16, 10000.0)

    def test_causal_mask(self):
        mask = causal_mask(4)
        assert mask[0, 1] < -1e8  # future blocked
        assert mask[2, 1] == 0.0  # past allowed
        assert mask[3, 3] == 0.0  # self allowed


class TestTransformerLM:
    def test_forward_shape(self):
        cfg = _cfg()
        model = TransformerLM(cfg, seed=0)
        logits, aux = model.forward(np.zeros((2, 5), np.int64))
        assert logits.shape == (2, 5, cfg.vocab_size)
        assert float(aux.data) == 0.0

    def test_causality(self):
        """Changing a future token must not change past logits."""
        model = TransformerLM(_cfg(), seed=1)
        tokens = np.array([[1, 2, 3, 4, 5]])
        out1, _ = model.forward(tokens)
        tokens2 = tokens.copy()
        tokens2[0, 4] = 9
        out2, _ = model.forward(tokens2)
        np.testing.assert_allclose(
            out1.data[0, :4], out2.data[0, :4], atol=1e-5
        )

    def test_moe_forward_and_aux(self):
        model = TransformerLM(_cfg(n_experts=4, d_ff=24), seed=2)
        logits, aux = model.forward(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, 40)
        # Balanced-routing lower bound: aux >= 1.0 (equality at uniform).
        assert float(aux.data) >= 0.99

    def test_loss_backward_populates_grads(self):
        model = TransformerLM(_cfg(), seed=3)
        tokens = np.array([[1, 2, 3, 4]])
        loss = model.loss(tokens[:, :-1], tokens[:, 1:])
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) == len(model.parameters())
        assert all(np.isfinite(g).all() for g in grads)

    def test_store_roundtrip(self):
        model = TransformerLM(_cfg(), seed=4)
        rebuilt = TransformerLM.from_store(model.to_store())
        tokens = np.array([[3, 1, 2]])
        a, _ = model.forward(tokens)
        b, _ = rebuilt.forward(tokens)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seq_len_guard(self):
        model = TransformerLM(_cfg(max_seq=8), seed=0)
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 9), np.int64))

    def test_input_ndim_guard(self):
        model = TransformerLM(_cfg(), seed=0)
        with pytest.raises(ValueError):
            model.forward(np.zeros(5, np.int64))
