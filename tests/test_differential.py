"""Differential test suite: every execution path, one oracle.

PRs 2–3 grew the campaign runner a family of execution strategies —
shared-prefix option scoring, prefill caching, continuous-batched
decoding, process pools — each duty-bound to reproduce the serial
reference path bit-for-bit.  This module consolidates the equivalence
checks behind :func:`repro.fi.assert_records_equal` and sweeps the
full grid: execution variant × greedy/beam × MC/generative × all
three fault models.  Future perf PRs add one variant entry here
instead of scattering ad-hoc comparisons.

The *reference* configuration turns every optimization off
(``prefill_cache=False, mc_scoring="full", decode_strategy="serial"``);
the *optimized* configuration is the default ``auto`` everything.
"""

import pytest

from repro.fi import (
    FaultModel,
    FICampaign,
    Outcome,
    assert_records_equal,
    assert_results_equal,
    assert_sequences_equal,
    record_signature,
)
from repro.fi.campaign import TrialRecord
from repro.fi.sites import FaultSite
from repro.generation import GenerationConfig
from repro.inference import InferenceEngine
from repro.obs import telemetry
from repro.tasks import MMLUTask, TranslationTask, standardized_subset

REFERENCE = dict(
    prefill_cache=False, mc_scoring="full", decode_strategy="serial"
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


def make_campaign(
    store, tokenizer, world, kind, fault_model, num_beams=1, **kw
):
    """One campaign over the standardized subset; ``kind`` picks the task."""
    engine = InferenceEngine(store)
    if kind == "mc":
        task = MMLUTask(world)
        generation = None
    else:
        task = TranslationTask(world)
        generation = GenerationConfig(
            max_new_tokens=6 if num_beams > 1 else task.max_new_tokens,
            num_beams=num_beams,
            eos_id=tokenizer.vocab.eos_id,
        )
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 3),
        fault_model=fault_model,
        seed=9,
        generation=generation,
        **kw,
    )


MODES = [
    ("mc", 1),
    ("gen", 1),
    ("gen", 3),
]


class TestExecutionEquivalence:
    """auto-optimized campaigns replay the reference path bit-for-bit."""

    @pytest.mark.parametrize("fault_model", FaultModel.all())
    @pytest.mark.parametrize(
        "kind,num_beams", MODES, ids=["mc-greedy", "gen-greedy", "gen-beam"]
    )
    def test_optimized_matches_reference(
        self, untrained_store, tokenizer, world, kind, num_beams, fault_model
    ):
        optimized = make_campaign(
            untrained_store, tokenizer, world, kind, fault_model,
            num_beams=num_beams,
        ).run(8)
        reference = make_campaign(
            untrained_store, tokenizer, world, kind, fault_model,
            num_beams=num_beams, **REFERENCE,
        ).run(8)
        assert_results_equal(optimized, reference, "optimized", "reference")

    @pytest.mark.parametrize(
        "kind,num_beams", MODES, ids=["mc-greedy", "gen-greedy", "gen-beam"]
    )
    def test_pool_matches_serial(
        self, untrained_store, tokenizer, world, kind, num_beams
    ):
        pooled = make_campaign(
            untrained_store, tokenizer, world, kind, FaultModel.COMP_2BIT,
            num_beams=num_beams,
        ).run(6, n_workers=2)
        serial = make_campaign(
            untrained_store, tokenizer, world, kind, FaultModel.COMP_2BIT,
            num_beams=num_beams, **REFERENCE,
        ).run(6, n_workers=0)
        assert_results_equal(pooled, serial, "pooled", "serial")

    def test_moe_selection_tracking_matches_reference(
        self, moe_store, tokenizer, world
    ):
        kw = dict(track_expert_selection=True)
        fast = make_campaign(
            moe_store, tokenizer, world, "mc", FaultModel.MEM_2BIT, **kw
        ).run(6)
        slow = make_campaign(
            moe_store, tokenizer, world, "mc", FaultModel.MEM_2BIT,
            **kw, **REFERENCE,
        ).run(6)
        assert_results_equal(fast, slow, "auto", "reference")


class TestOracle:
    """The oracle itself: failure messages must localize divergence."""

    def _record(self, **kw):
        defaults = dict(
            site=FaultSite(
                FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 3, bits=(5, 20)
            ),
            example_index=0,
            prediction="hello",
            outcome=Outcome.MASKED,
            metrics={"bleu": 1.0},
            changed=False,
            selection_changed=None,
        )
        defaults.update(kw)
        return TrialRecord(**defaults)

    def test_accepts_identical(self):
        a, b = self._record(), self._record()
        assert_records_equal([a], [b])

    def test_pinpoints_field_divergence(self):
        a = self._record()
        b = self._record(prediction="world", outcome=Outcome.SDC_SUBTLE)
        with pytest.raises(AssertionError, match="trial 1 diverges"):
            assert_records_equal([a, a], [a, b], "fast", "slow")
        with pytest.raises(AssertionError, match="prediction, outcome"):
            assert_records_equal([b], [a])

    def test_catches_metrics_divergence(self):
        """Dataclass ``==`` ignores metrics (compare=False); the oracle
        must not."""
        a = self._record(metrics={"bleu": 1.0})
        b = self._record(metrics={"bleu": 2.0})
        assert a == b  # the trap the oracle exists to close
        assert record_signature(a) != record_signature(b)
        with pytest.raises(AssertionError, match="metrics"):
            assert_records_equal([a], [b])

    def test_catches_error_divergence(self):
        a = self._record(outcome=Outcome.FAILED, error="ChaosError: x")
        b = self._record(outcome=Outcome.FAILED, error="ChaosError: y")
        with pytest.raises(AssertionError, match="error"):
            assert_records_equal([a], [b])

    def test_length_mismatch(self):
        a = self._record()
        with pytest.raises(AssertionError, match="trial counts differ"):
            assert_records_equal([a], [a, a], "half", "full")

    def test_sequence_oracle(self):
        assert_sequences_equal([1, 2, 3], [1, 2, 3])
        with pytest.raises(AssertionError, match="element 1 diverges"):
            assert_sequences_equal([1, 2, 3], [1, 9, 3])
        with pytest.raises(AssertionError, match="lengths differ"):
            assert_sequences_equal([1], [1, 2])
