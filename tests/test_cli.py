"""Tests for the command-line interface."""

import dataclasses

import pytest

from repro.cli import build_parser, main
from repro.zoo import ZOO
from repro.zoo.registry import ZooSpec


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_models(self):
        args = build_parser().parse_args(["list-models"])
        assert args.command == "list-models"

    def test_campaign_args(self):
        args = build_parser().parse_args(
            ["campaign", "qwenlike-base", "wmt16", "2bits-mem",
             "--trials", "50", "--policy", "int4"]
        )
        assert args.trials == 50
        assert args.policy == "int4"

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "qwenlike-base", "wmt16", "3bits-mem"]
            )

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_ids_cover_all_figures(self):
        parser = build_parser()
        for fig in ("table1", "table2", "fig03", "fig17", "fig21"):
            args = parser.parse_args(["experiment", fig])
            assert args.id == fig


class TestCommands:
    def test_list_models_runs(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "qwenlike-base" in out
        assert "moelike-base" in out

    def test_build_nothing_errors(self, capsys):
        assert main(["build"]) == 2

    def test_build_tiny_spec(self, tmp_path, monkeypatch, capsys):
        spec = dataclasses.replace(
            ZOO["qwenlike-tiny"], steps=20, corpus_docs=200
        )
        monkeypatch.setitem(ZOO, "qwenlike-tiny", spec)
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert main(["build", "qwenlike-tiny"]) == 0
        assert "ready" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "FP16" in out and "BF16" in out
