"""Tests for greedy/beam decoding and option scoring."""

import numpy as np
import pytest

from repro.autograd.functional import log_softmax_np
from repro.generation import (
    GenerationConfig,
    beam_search_decode,
    choose_option,
    generate_ids,
    greedy_decode,
    score_continuation,
)


def _config(**kw):
    defaults = dict(max_new_tokens=8, eos_id=2)
    defaults.update(kw)
    return GenerationConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=0)
        with pytest.raises(ValueError):
            GenerationConfig(num_beams=0)


class TestGreedy:
    def test_deterministic(self, untrained_engine):
        a = greedy_decode(untrained_engine, [3, 5, 7], _config())
        b = greedy_decode(untrained_engine, [3, 5, 7], _config())
        assert a == b

    def test_respects_max_tokens(self, untrained_engine):
        out = greedy_decode(untrained_engine, [3, 5], _config(max_new_tokens=4))
        assert len(out) <= 4

    def test_matches_manual_argmax(self, untrained_engine):
        prompt = [3, 5, 7]
        out = greedy_decode(untrained_engine, prompt, _config(max_new_tokens=3))
        # Re-derive the first token from a full forward.
        logits = untrained_engine.forward_full(prompt)
        assert out[0] == int(np.argmax(logits[-1]))

    def test_nan_logits_survive(self, untrained_engine):
        """Corrupted runs can produce NaN logits; decoding must not crash."""
        untrained_engine.hooks.register(
            "blocks.1.down_proj", lambda out, ctx: np.full_like(out, np.nan)
        )
        out = greedy_decode(untrained_engine, [3, 5], _config(max_new_tokens=3))
        untrained_engine.hooks.clear()
        assert isinstance(out, list)


class TestBeam:
    def test_beam1_equals_greedy(self, untrained_engine):
        prompt = [4, 9, 1]
        greedy = greedy_decode(untrained_engine, prompt, _config())
        beam = beam_search_decode(untrained_engine, prompt, _config(num_beams=1))
        assert greedy == beam

    def test_beam_score_at_least_greedy(self, untrained_engine):
        """Beam search finds a sequence with log-prob >= greedy's."""
        prompt = [4, 9, 1]
        cfg = _config(max_new_tokens=5, length_penalty=0.0)

        def sequence_logprob(tokens):
            session = untrained_engine.start_session(prompt)
            total = 0.0
            logits = session.last_logits
            for t in tokens:
                total += float(log_softmax_np(logits)[t])
                logits = session.step(t)
            return total

        greedy = greedy_decode(untrained_engine, prompt, cfg)
        beam = beam_search_decode(
            untrained_engine, prompt, _config(max_new_tokens=5, num_beams=4,
                                              length_penalty=0.0)
        )
        if len(beam) == len(greedy):  # compare like with like
            assert sequence_logprob(beam) >= sequence_logprob(greedy) - 1e-4

    def test_generate_ids_dispatch(self, untrained_engine):
        prompt = [3, 2, 8]
        assert generate_ids(
            untrained_engine, prompt, _config(num_beams=1)
        ) == greedy_decode(untrained_engine, prompt, _config())

    def test_beam_deterministic(self, untrained_engine):
        cfg = _config(num_beams=3)
        a = beam_search_decode(untrained_engine, [5, 1], cfg)
        b = beam_search_decode(untrained_engine, [5, 1], cfg)
        assert a == b


class TestOptionScoring:
    def test_score_is_log_prob_sum(self, untrained_engine):
        prompt, option = [3, 5, 7], [11, 13]
        score = score_continuation(untrained_engine, prompt, option)
        logits = untrained_engine.forward_full(prompt + option)
        logp = log_softmax_np(logits, axis=-1)
        expected = logp[len(prompt) - 1, option[0]] + logp[len(prompt), option[1]]
        assert score == pytest.approx(float(expected), rel=1e-5)

    def test_choose_option_picks_argmax(self, untrained_engine):
        prompt = [3, 5, 7]
        options = [[11], [13], [17]]
        scores = [
            score_continuation(untrained_engine, prompt, o) for o in options
        ]
        assert choose_option(untrained_engine, prompt, options) == int(
            np.argmax(scores)
        )

    def test_empty_option_rejected(self, untrained_engine):
        with pytest.raises(ValueError):
            score_continuation(untrained_engine, [1], [])

    def test_trained_model_beats_chance(self, trained_engine, tokenizer, world):
        """On a trained model option scoring beats the 25% chance floor."""
        from repro.tasks import MMLUTask, standardized_subset

        examples = standardized_subset(MMLUTask(world), 16)
        hits = 0
        for ex in examples:
            prompt = tokenizer.encode(ex.prompt)
            options = [tokenizer.encode(o) for o in ex.options]
            hits += int(
                choose_option(trained_engine, prompt, options) == ex.answer_index
            )
        assert hits >= 7  # p(>=7/16 | chance) < 1e-2
