"""End-to-end integration tests: the paper's pipeline in miniature.

These run real fault-injection campaigns on the briefly-trained session
model.  Assertions are deliberately loose (low trial counts on a tiny
model are noisy); the full-strength claims live in the benchmark
harness over the zoo models.
"""

import numpy as np
import pytest

from repro.fi import FaultModel, FICampaign, Outcome
from repro.generation import GenerationConfig, generate_ids
from repro.tasks import (
    GSM8kTask,
    MMLUTask,
    SummarizationTask,
    TranslationTask,
    standardized_subset,
)


def _campaign(engine, tokenizer, task, fault_model, n_examples=6, **kw):
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, n_examples),
        fault_model=fault_model,
        seed=11,
        generation=GenerationConfig(
            max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
        ),
        **kw,
    )


class TestTrainedModelQuality:
    """The substrate must have learned the tasks well enough that fault
    effects are measurable against a meaningful baseline."""

    def test_mc_baseline_above_chance(self, trained_engine, tokenizer, world):
        camp = _campaign(
            trained_engine, tokenizer, MMLUTask(world), FaultModel.MEM_2BIT,
            n_examples=16,
        )
        assert camp.compute_baseline()["accuracy"] > 30.0  # chance = 25%

    def test_translation_baseline_nonzero(self, trained_engine, tokenizer, world):
        camp = _campaign(
            trained_engine, tokenizer, TranslationTask(world), FaultModel.MEM_2BIT
        )
        baseline = camp.compute_baseline()
        assert baseline["bleu"] > 5.0
        assert baseline["chrf"] > 20.0

    def test_generates_structured_text(self, trained_engine, tokenizer, world):
        ex = standardized_subset(SummarizationTask(world), 1)[0]
        ids = generate_ids(
            trained_engine,
            tokenizer.encode(ex.prompt),
            GenerationConfig(max_new_tokens=18, eos_id=tokenizer.vocab.eos_id),
        )
        text = tokenizer.decode(ids)
        assert len(text.split()) >= 3


class TestEndToEndCampaigns:
    def test_memory_campaign_produces_sdcs_and_masks(
        self, trained_engine, tokenizer, world
    ):
        result = _campaign(
            trained_engine, tokenizer, TranslationTask(world), FaultModel.MEM_2BIT
        ).run(24)
        outcomes = {t.outcome for t in result.trials}
        # With 24 random 2-bit memory faults we expect both masked runs
        # (low-bit flips) and at least one SDC (high-bit flips).
        assert Outcome.MASKED in outcomes
        assert any(o.is_sdc for o in outcomes)

    def test_high_bits_cause_more_damage(self, trained_engine, tokenizer, world):
        """Fig 9/10 mechanism: SDC trials concentrate on high bits."""
        result = _campaign(
            trained_engine, tokenizer, TranslationTask(world), FaultModel.MEM_2BIT
        ).run(40)
        sdc_bits = [t.site.highest_bit for t in result.trials if t.outcome.is_sdc]
        masked_bits = [
            t.site.highest_bit for t in result.trials if not t.outcome.is_sdc
        ]
        if sdc_bits and masked_bits:
            assert np.mean(sdc_bits) > np.mean(masked_bits) - 4

    def test_comp_fault_localized_in_time(self, trained_engine, tokenizer, world):
        """A computational fault at a late iteration cannot change
        tokens generated before it."""
        task = SummarizationTask(world)
        ex = standardized_subset(task, 1)[0]
        prompt = tokenizer.encode(ex.prompt)
        cfg = GenerationConfig(max_new_tokens=10, eos_id=tokenizer.vocab.eos_id)
        baseline = generate_ids(trained_engine, prompt, cfg)
        from repro.fi import ComputationalFaultInjector, FaultSite

        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 3,
            bits=(30, 29), iteration=5, row_frac=0.0,
        )
        with ComputationalFaultInjector(trained_engine, site):
            faulty = generate_ids(trained_engine, prompt, cfg)
        shared = min(5, len(baseline), len(faulty))
        assert faulty[:shared] == baseline[:shared]

    def test_gsm8k_outcome_classification(self, trained_engine, tokenizer, world):
        result = _campaign(
            trained_engine, tokenizer, GSM8kTask(world), FaultModel.MEM_2BIT
        ).run(16)
        breakdown = result.sdc_breakdown()
        assert 0.0 <= breakdown["distorted"] <= 1.0
        # Classification is exhaustive.
        masked = sum(t.outcome is Outcome.MASKED for t in result.trials)
        assert masked + sum(t.outcome.is_sdc for t in result.trials) == 16

    def test_normalized_performance_bracketed(
        self, trained_engine, tokenizer, world
    ):
        result = _campaign(
            trained_engine, tokenizer, TranslationTask(world), FaultModel.COMP_1BIT
        ).run(16)
        for metric, ci in result.normalized.items():
            if not np.isnan(ci.ratio):
                assert ci.lower <= ci.ratio <= ci.upper
                # Single 1-bit computational faults rarely halve quality.
                assert ci.ratio > 0.2
