"""Tests for the experiment harness (context, results, static tables)."""

import math

import numpy as np
import pytest

from repro.harness import ExperimentContext, ExperimentResult, format_table
from repro.harness.experiments import (
    TASK_MODELS,
    table1_workloads,
    table2_formats,
)


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("x", "title")
        result.add(a=1, b=2.5)
        result.add(a=3, b=4.5)
        assert result.column("a") == [1, 3]

    def test_format_table(self):
        result = ExperimentResult("fig0", "demo")
        result.add(model="m", value=0.123456)
        result.note("a note")
        text = format_table(result)
        assert "fig0" in text and "model" in text and "0.1235" in text
        assert "note: a note" in text

    def test_format_handles_ragged_rows(self):
        result = ExperimentResult("x", "t")
        result.add(a=1)
        result.add(b=2)
        text = format_table(result)
        assert "a" in text and "b" in text

    def test_str(self):
        assert "demo" in str(ExperimentResult("id", "demo"))


class TestStaticTables:
    def test_table1_lists_all_nine(self):
        ctx = ExperimentContext()
        result = table1_workloads(ctx)
        assert len(result.rows) == 9
        assert set(result.column("task")) == set(TASK_MODELS)
        for row in result.rows:
            assert row["metrics"]
            assert row["models"]

    def test_table2_matches_paper(self):
        result = table2_formats()
        by_name = {row["format"]: row for row in result.rows}
        assert by_name["FP16"]["exp_bits"] == 5
        assert by_name["BF16"]["exp_bits"] == 8
        assert by_name["FP16"]["max_finite"] == 65504.0
        assert by_name["BF16"]["max_finite"] > 1e38


class TestContext:
    def test_world_and_tokenizer_cached(self):
        ctx = ExperimentContext()
        assert ctx.world is ctx.world
        assert ctx.tokenizer is ctx.tokenizer

    def test_tasks_lookup(self):
        ctx = ExperimentContext()
        assert ctx.task("gsm8k").name == "gsm8k"
        with pytest.raises(KeyError):
            ctx.task("nope")

    def test_examples_sized(self):
        ctx = ExperimentContext(n_examples=5)
        assert len(ctx.examples("mmlu")) == 5
        assert len(ctx.examples("mmlu", 3)) == 3

    def test_generation_config(self):
        ctx = ExperimentContext()
        cfg = ctx.generation(ctx.task("wmt16"), num_beams=2)
        assert cfg.num_beams == 2
        assert cfg.eos_id == ctx.tokenizer.vocab.eos_id

    def test_task_models_cover_table1(self):
        assert set(TASK_MODELS) == {
            "mmlu", "arc", "truthfulqa", "winogrande", "hellaswag",
            "gsm8k", "wmt16", "xlsum", "squadv2",
        }
