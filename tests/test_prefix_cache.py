"""Equivalence tests for the redundant-compute elimination pass.

Three layers of optimization must leave results indistinguishable from
the reference path:

* shared-prefix (batched/incremental) option scoring vs. per-option
  ``forward_full`` — same argmax, same scores up to float associativity,
  and *exactly* the reference path whenever fault machinery is armed;
* session/KV machinery the above lean on — fork independence after
  further steps, snapshot/restore round-trips, decoding from a
  pre-built session.

Campaign-level bit-identity sweeps (prefill caching, batched decode,
worker pools vs. the serial reference) are consolidated in
``test_differential.py`` behind ``repro.fi.assert_records_equal``.
"""

import numpy as np
import pytest

from repro.fi import (
    ComputationalFaultInjector,
    FaultModel,
    FaultSite,
    MemoryFaultInjector,
)
from repro.generation import (
    GenerationConfig,
    beam_search_decode,
    choose_option,
    generate_ids,
    greedy_decode,
    score_continuation,
    score_options,
)
from repro.inference import KVCache
from repro.obs import telemetry
from repro.tasks import MMLUTask, standardized_subset

PROMPT = [3, 5, 7, 2, 9]
OPTIONS = [[11, 13], [17], [19, 23, 29], [4, 8]]


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


class TestOptionScoringEquivalence:
    @pytest.mark.parametrize("strategy", ["incremental", "batched", "auto"])
    def test_matches_reference_fault_free(self, untrained_engine, strategy):
        reference = score_options(
            untrained_engine, PROMPT, OPTIONS, strategy="full"
        )
        scores = score_options(untrained_engine, PROMPT, OPTIONS, strategy)
        np.testing.assert_allclose(scores, reference, rtol=2e-5, atol=1e-5)
        assert int(np.argmax(scores)) == int(np.argmax(reference))

    def test_matches_reference_moe(self, moe_engine):
        reference = score_options(moe_engine, PROMPT, OPTIONS, strategy="full")
        batched = score_options(moe_engine, PROMPT, OPTIONS, strategy="batched")
        np.testing.assert_allclose(batched, reference, rtol=2e-5, atol=1e-5)

    def test_single_token_options_prefill_only(self, untrained_engine):
        options = [[11], [13], [17]]
        reference = [
            score_continuation(untrained_engine, PROMPT, o) for o in options
        ]
        scores = score_options(
            untrained_engine, PROMPT, options, strategy="batched"
        )
        np.testing.assert_allclose(scores, reference, rtol=2e-5, atol=1e-5)

    def test_trained_model_agreement(self, trained_engine, tokenizer, world):
        for ex in standardized_subset(MMLUTask(world), 6):
            prompt = tokenizer.encode(ex.prompt)
            options = [tokenizer.encode(o) for o in ex.options]
            assert choose_option(
                trained_engine, prompt, options, strategy="auto"
            ) == choose_option(trained_engine, prompt, options, strategy="full")

    def test_unknown_strategy_rejected(self, untrained_engine):
        with pytest.raises(ValueError):
            score_options(untrained_engine, PROMPT, OPTIONS, strategy="turbo")

    def test_empty_option_rejected(self, untrained_engine):
        with pytest.raises(ValueError):
            score_options(untrained_engine, PROMPT, [[1], []], strategy="batched")
        with pytest.raises(ValueError):
            score_options(untrained_engine, PROMPT, [], strategy="auto")


class TestFISafetyGate:
    """``auto`` must resolve to the exact reference path under faults."""

    def test_hook_forces_exact_fallback(self, untrained_engine):
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 3, bits=(5, 20)
        )
        with ComputationalFaultInjector(untrained_engine, site):
            injected_auto = score_options(
                untrained_engine, PROMPT, OPTIONS, strategy="auto"
            )
        with ComputationalFaultInjector(untrained_engine, site):
            injected_full = score_options(
                untrained_engine, PROMPT, OPTIONS, strategy="full"
            )
        # Bit-identical: both one-shot injections struck only the first
        # option's forward, exactly like the seed path.
        assert injected_auto == injected_full

    def test_memory_fault_forces_exact_fallback(self, untrained_engine):
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.0.up_proj", 2, 3, bits=(30, 22)
        )
        with MemoryFaultInjector(untrained_engine, site):
            assert untrained_engine.fi_active()
            injected_auto = score_options(
                untrained_engine, PROMPT, OPTIONS, strategy="auto"
            )
            injected_full = score_options(
                untrained_engine, PROMPT, OPTIONS, strategy="full"
            )
        assert not untrained_engine.fi_active()
        assert injected_auto == injected_full

    def test_weight_fault_depth_restored(self, untrained_engine):
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.1.q_proj", 0, 0, bits=(3, 8)
        )
        assert untrained_engine.weight_fault_depth == 0
        with MemoryFaultInjector(untrained_engine, site):
            assert untrained_engine.weight_fault_depth == 1
        assert untrained_engine.weight_fault_depth == 0


class TestSessionMachinery:
    def test_fork_independent_after_further_steps(self, untrained_engine):
        session = untrained_engine.start_session(PROMPT)
        fork = session.fork()
        for token in (4, 8, 15):
            session.step(token)
        # The fork is unaffected by the original's later steps: it
        # decodes exactly like a fresh session.
        fresh = untrained_engine.start_session(PROMPT)
        np.testing.assert_array_equal(fork.step(16), fresh.step(16))
        np.testing.assert_array_equal(fork.step(23), fresh.step(23))
        assert fork.position == fresh.position == len(PROMPT) + 2

    def test_kvcache_snapshot_restore_roundtrip(self):
        rng = np.random.default_rng(3)
        cache = KVCache(2, 8, 4)
        cache.append(rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4)))
        snap = cache.snapshot()
        cache.append(rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)))
        cache.restore(snap)
        assert cache.length == 3
        np.testing.assert_array_equal(cache.keys(), snap[0])
        np.testing.assert_array_equal(cache.values(), snap[1])

    def test_kvcache_restore_rejects_oversized(self):
        cache = KVCache(1, 2, 4)
        big = (np.zeros((1, 5, 4)), np.zeros((1, 5, 4)), 5)
        with pytest.raises(ValueError):
            cache.restore(big)

    def test_kvcache_restore_after_truncate_below_snapshot(self):
        """``restore`` rewrites the prefix even after a deeper truncate."""
        rng = np.random.default_rng(4)
        cache = KVCache(2, 8, 4)
        cache.append(rng.normal(size=(2, 4, 4)), rng.normal(size=(2, 4, 4)))
        snap = cache.snapshot()
        cache.truncate(1)
        # Overwrite the region the snapshot must bring back.
        cache.append(rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)))
        cache.restore(snap)
        assert cache.length == 4
        np.testing.assert_array_equal(cache.keys(), snap[0])
        np.testing.assert_array_equal(cache.values(), snap[1])

    def test_kvcache_restore_shrinks_longer_cache(self):
        """Restoring onto a longer cache rolls length back to the snapshot."""
        rng = np.random.default_rng(5)
        cache = KVCache(2, 8, 4)
        cache.append(rng.normal(size=(2, 2, 4)), rng.normal(size=(2, 2, 4)))
        snap = cache.snapshot()
        cache.append(rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)))
        assert cache.length == 7
        cache.restore(snap)
        assert cache.length == 2
        np.testing.assert_array_equal(cache.keys(), snap[0])

    def test_kvcache_truncate_bounds(self):
        cache = KVCache(1, 4, 2)
        cache.append(np.ones((1, 3, 2)), np.ones((1, 3, 2)))
        with pytest.raises(ValueError):
            cache.truncate(4)
        with pytest.raises(ValueError):
            cache.truncate(-1)
        cache.truncate(0)
        assert cache.length == 0

    def test_truncate_then_rescore_is_clean(self, untrained_engine):
        """Append + truncate (incremental scoring) leaves no residue."""
        session = untrained_engine.start_session(PROMPT)
        before = [c.snapshot() for c in session.caches]
        score_options(
            untrained_engine, PROMPT, OPTIONS, strategy="incremental"
        )
        after = untrained_engine.start_session(PROMPT)
        for snap, cache in zip(before, after.caches):
            assert cache.length == snap[2]
            np.testing.assert_array_equal(cache.keys(), snap[0])

    def test_greedy_from_prebuilt_session(self, trained_engine, tokenizer):
        prompt = tokenizer.encode("translate : de kato visas un hundo =")
        config = GenerationConfig(max_new_tokens=8, eos_id=tokenizer.vocab.eos_id)
        plain = greedy_decode(trained_engine, prompt, config)
        base = trained_engine.start_session(prompt)
        cached = greedy_decode(
            trained_engine, prompt, config, session=base.fork()
        )
        assert cached == plain

    def test_beam_from_prebuilt_session(self, trained_engine, tokenizer):
        prompt = tokenizer.encode("translate : de kato visas un hundo =")
        config = GenerationConfig(
            max_new_tokens=6, num_beams=3, eos_id=tokenizer.vocab.eos_id
        )
        plain = beam_search_decode(trained_engine, prompt, config)
        base = trained_engine.start_session(prompt)
        cached = generate_ids(
            trained_engine, prompt, config, session=base.fork()
        )
        assert cached == plain


class TestBatchedForward:
    def test_batched_chunk_matches_incremental(self, untrained_engine):
        session = untrained_engine.start_session(PROMPT)
        chunk = np.array([[4, 8], [15, 16]], dtype=np.int64)
        batched = untrained_engine.forward(
            chunk, session.caches, start_pos=len(PROMPT), iteration=0
        )
        assert batched.shape[:2] == (2, 2)
        for row in range(2):
            per_row = untrained_engine.forward(
                list(chunk[row]),
                session.caches,
                start_pos=len(PROMPT),
                iteration=0,
            )
            for cache in session.caches:
                cache.truncate(len(PROMPT))
            np.testing.assert_allclose(
                batched[row], per_row, rtol=2e-5, atol=1e-5
            )

    def test_batched_leaves_caches_untouched(self, untrained_engine):
        session = untrained_engine.start_session(PROMPT)
        lengths = [c.length for c in session.caches]
        untrained_engine.forward(
            np.array([[4], [8], [15]]),
            session.caches,
            start_pos=len(PROMPT),
            iteration=0,
        )
        assert [c.length for c in session.caches] == lengths

    def test_forward_rejects_higher_rank(self, untrained_engine):
        with pytest.raises(ValueError):
            untrained_engine.forward(
                np.zeros((2, 2, 2), dtype=np.int64),
                untrained_engine.new_caches(),
                start_pos=0,
                iteration=0,
            )


class TestCampaignTelemetry:
    """Counters the optimization layers emit (equivalence sweeps live in
    ``test_differential.py`` behind the shared oracle)."""

    def test_prefill_cache_counters_traced(
        self, untrained_store, tokenizer, world, clean_telemetry
    ):
        from tests.test_differential import make_campaign

        clean_telemetry.enable()
        make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT
        ).run(6)
        counters = clean_telemetry.metrics.counters
        assert "engine.prefill_cache_hits" in counters
        assert "engine.prefill_cache_misses" in counters
        hits = counters["engine.prefill_cache_hits"].value
        misses = counters["engine.prefill_cache_misses"].value
        assert hits + misses == 6
        assert hits > 0  # iteration>=1 faults dominate a 12-token window

    def test_option_batch_histogram_traced(
        self, untrained_engine, clean_telemetry
    ):
        clean_telemetry.enable()
        choose_option(untrained_engine, PROMPT, OPTIONS)
        hist = clean_telemetry.metrics.histograms["decode.option_batch_size"]
        assert hist.values == [len(OPTIONS)]
