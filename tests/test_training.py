"""Tests for corpus building, batching and the trainer."""

import numpy as np
import pytest

from repro.model import ModelConfig, TransformerLM
from repro.tasks import all_tasks
from repro.training import (
    DEFAULT_TASK_WEIGHTS,
    TrainConfig,
    build_mixed_corpus,
    corpus_to_stream,
    sample_batch,
    train_lm,
)


class TestCorpus:
    def test_mixture_respects_weights(self, world):
        tasks = all_tasks(world)
        docs = build_mixed_corpus(tasks, np.random.default_rng(0), 3000)
        assert len(docs) >= 3000  # some tasks emit extra drill lines
        # The heavy task (gsm8k, weight 4) must dominate over a light one.
        gsm = sum("solve" in d for d in docs)
        hella = sum(d.startswith("the ") and len(d.split()) == 5 for d in docs)
        assert gsm > hella

    def test_deterministic(self, world):
        tasks = all_tasks(world)
        a = build_mixed_corpus(tasks, np.random.default_rng(1), 500)
        b = build_mixed_corpus(tasks, np.random.default_rng(1), 500)
        assert a == b

    def test_stream_ends_docs_with_eos(self, world, tokenizer):
        docs = ["paris .", "rome ."]
        stream = corpus_to_stream(docs, tokenizer)
        eos = tokenizer.vocab.eos_id
        assert (stream == eos).sum() == 2

    def test_weights_cover_all_tasks(self, world):
        names = {t.name for t in all_tasks(world)}
        assert set(DEFAULT_TASK_WEIGHTS) == names


class TestBatching:
    def test_shapes_and_shift(self):
        stream = np.arange(100, dtype=np.int64)
        x, y = sample_batch(stream, np.random.default_rng(0), 4, 10)
        assert x.shape == y.shape == (4, 10)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])  # shifted by one

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError):
            sample_batch(np.arange(5), np.random.default_rng(0), 2, 10)


class TestTrainer:
    def _setup(self, tokenizer, world):
        docs = all_tasks(world)[0].training_texts(np.random.default_rng(0), 300)
        stream = corpus_to_stream(docs, tokenizer)
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=32, n_heads=4, n_blocks=2,
            d_ff=48, max_seq=64,
        )
        return TransformerLM(config, seed=0), stream

    def test_loss_decreases(self, tokenizer, world):
        model, stream = self._setup(tokenizer, world)
        result = train_lm(
            model, stream, TrainConfig(steps=60, batch_size=8, seq_len=32, seed=1)
        )
        first = float(np.mean(result.losses[:5]))
        last = result.smoothed_final(10)
        assert last < first * 0.8

    def test_deterministic(self, tokenizer, world):
        outs = []
        for _ in range(2):
            model, stream = self._setup(tokenizer, world)
            train_lm(
                model, stream,
                TrainConfig(steps=5, batch_size=4, seq_len=24, seed=2),
            )
            outs.append(model.to_store().fingerprint())
        assert outs[0] == outs[1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(steps=0)
        with pytest.raises(ValueError):
            TrainConfig(seq_len=1)

    def test_on_step_callback(self, tokenizer, world):
        model, stream = self._setup(tokenizer, world)
        seen = []
        train_lm(
            model, stream,
            TrainConfig(steps=3, batch_size=4, seq_len=24, log_every=1),
            on_step=lambda step, loss: seen.append(step),
        )
        assert seen == [0, 1, 2]
