"""Tests for the fault-forensics stack: flight recorder, Chrome trace
export, live campaign watch, and the bench-artifact checker.

The load-bearing guarantee is *pure observation*: arming the flight
recorder must not change a single trial record (the recorder's whole
value is explaining campaigns whose aggregate numbers are trusted),
and its corruption-front probes must not disengage the batching /
speculation fast paths.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.fi import FaultModel, FICampaign
from repro.fi.differential import assert_records_equal
from repro.generation import GenerationConfig
from repro.generation.batched import decode_batching_safe
from repro.generation.speculative import decode_speculation_safe
from repro.inference import InferenceEngine
from repro.obs import (
    WatchState,
    chrome_trace,
    explain_run,
    explain_trial,
    export_trace,
    first_divergence,
    flight_recorder,
    flight_records,
    read_jsonl,
    read_run,
    render_comparison,
    telemetry,
    watch,
)
from repro.tasks import MMLUTask, TranslationTask, standardized_subset

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with a disarmed recorder + telemetry."""
    tel, recorder = telemetry(), flight_recorder()
    tel.reset(), tel.disable()
    recorder.reset(), recorder.disarm()
    yield recorder
    tel.reset(), tel.disable()
    recorder.reset(), recorder.disarm()


def _mc_campaign(engine, tokenizer, world, fault_model=FaultModel.MEM_2BIT):
    task = MMLUTask(world)
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 4),
        fault_model=fault_model,
        seed=5,
    )


def _gen_campaign(
    engine, tokenizer, world, fault_model=FaultModel.MEM_2BIT, seed=5
):
    task = TranslationTask(world)
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 4),
        fault_model=fault_model,
        seed=seed,
        generation=GenerationConfig(
            max_new_tokens=12, eos_id=tokenizer.vocab.eos_id
        ),
    )


# ----------------------------------------------------------------------------
# Pure-observer guarantee
# ----------------------------------------------------------------------------


class TestPureObserver:
    def test_recorder_off_by_default(self):
        recorder = flight_recorder()
        assert recorder.active is False
        recorder.event("ignored", layer="x")  # no-op, must not raise
        assert recorder.drain() == []

    @pytest.mark.parametrize(
        "fault_model", FaultModel.all(), ids=lambda m: m.value
    )
    @pytest.mark.parametrize("build", [_mc_campaign, _gen_campaign])
    def test_armed_recorder_is_bit_identical(
        self, untrained_store, tokenizer, world, fault_model, build
    ):
        plain = build(
            InferenceEngine(untrained_store), tokenizer, world, fault_model
        ).run(5)
        recorder = flight_recorder().arm()
        armed = build(
            InferenceEngine(untrained_store), tokenizer, world, fault_model
        ).run(5)
        assert_records_equal(plain, armed, "recorder-off", "recorder-on")
        records = recorder.drain()
        assert len(records) == 5
        assert all(r["front"] for r in records)

    def test_armed_recorder_bit_identical_under_pool(
        self, untrained_store, tokenizer, world
    ):
        plain = _mc_campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(4)
        recorder = flight_recorder().arm()
        armed = _mc_campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(4, n_workers=2)
        assert_records_equal(plain, armed, "serial-off", "pool-on")
        # Worker-side records merge back in trial order.
        assert [r["trial"] for r in recorder.drain()] == [0, 1, 2, 3]

    def test_front_probes_keep_gates_engaged(self, untrained_engine):
        recorder = flight_recorder().arm()
        recorder.begin_trial(0, "k", {"layer_name": "x"}, 0)
        detach = recorder.attach_front(untrained_engine, iteration=0)
        try:
            assert len(untrained_engine.hooks) > 0
            assert decode_batching_safe(untrained_engine)
            assert decode_speculation_safe(
                untrained_engine, untrained_engine
            )
        finally:
            detach()
        assert len(untrained_engine.hooks) == 0
        recorder.abort_trial()

    def test_abort_discards_open_trial(self):
        recorder = flight_recorder().arm()
        recorder.begin_trial(3, "k", {"layer_name": "x"}, 0)
        recorder.event("inject.arm", layer="x")
        recorder.abort_trial()
        assert recorder.drain() == []


# ----------------------------------------------------------------------------
# Recorded content + explain rendering
# ----------------------------------------------------------------------------


class TestFlightRecords:
    def test_first_divergence(self):
        assert first_divergence("a b c", "a b c") is None
        assert first_divergence("a x c", "a b c") == {
            "index": 1,
            "baseline": "b",
            "faulty": "x",
        }
        assert first_divergence("a b", "a b c") == {
            "index": 2,
            "baseline": "c",
            "faulty": None,
        }

    def test_records_carry_site_events_and_front(
        self, untrained_store, tokenizer, world
    ):
        recorder = flight_recorder().arm()
        _gen_campaign(InferenceEngine(untrained_store), tokenizer, world).run(
            4
        )
        records = recorder.drain()
        assert len(records) == 4
        for record in records:
            assert record["site"]["fault_model"] == "2bits-mem"
            names = [e["event"] for e in record["events"]]
            assert "inject.arm" in names and "inject.restore" in names
            site_layer = record["site"]["layer_name"]
            assert any(f["layer"] == site_layer for f in record["front"])
            assert record["outcome"].startswith(("masked", "sdc"))

    def test_explain_reconstructs_a_trial_story(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        out = tmp_path / "run.jsonl"
        tel = telemetry()
        tel.enable(out)
        recorder = flight_recorder().arm()
        # Seed 7 yields several sdc-distorted trials at this size.
        _gen_campaign(
            InferenceEngine(untrained_store), tokenizer, world, seed=7
        ).run(12)
        tel.flush(seed=7, command="test", extra_records=recorder.drain())

        loaded = flight_records(read_run(out))
        assert sorted(loaded) == list(range(12))
        index = explain_run(out)
        assert "outcome" in index and "site" in index
        # An SDC trial's story must name the injection site, show the
        # corruption front and the first divergent token.
        sdc = next(
            (r for r in loaded.values() if r["outcome"] != "masked"), None
        )
        assert sdc is not None, "mini-campaign produced no SDC trial"
        story = explain_trial(sdc)
        assert sdc["site"]["layer_name"] in story
        assert "corruption front" in story
        if sdc["divergence"] is not None:
            assert (
                f"first divergent token at index"
                f" {sdc['divergence']['index']}" in story
            )
        assert explain_run(out, trial=sdc["trial"]) == story

    def test_report_includes_flight_section(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        from repro.obs import render_report

        out = tmp_path / "run.jsonl"
        tel = telemetry()
        tel.enable(out)
        recorder = flight_recorder().arm()
        _gen_campaign(InferenceEngine(untrained_store), tokenizer, world).run(
            4
        )
        tel.flush(seed=5, command="test", extra_records=recorder.drain())
        report = render_report(read_run(out))
        assert "flight: outcomes by injection layer" in report


# ----------------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------------


class TestTraceExport:
    def test_export_is_valid_stitched_chrome_trace(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        out = tmp_path / "run.jsonl"
        tel = telemetry()
        tel.enable(out)
        _mc_campaign(InferenceEngine(untrained_store), tokenizer, world).run(
            4, n_workers=2
        )
        tel.flush(seed=5, command="test")
        trace_path = export_trace(out, tmp_path / "trace.json")
        trace = json.loads(trace_path.read_text())

        events = trace["traceEvents"]
        durations = [e for e in events if e["ph"] == "X"]
        assert durations, "no duration events"
        for event in durations:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["name"], str)
        # Worker trial spans land in their own lanes, stitched under
        # the campaign timeline with trial attribution.
        tids = {e["tid"] for e in durations}
        assert 0 in tids and len(tids) >= 2, f"not stitched: {tids}"
        worker_trials = [
            e for e in durations if e["args"].get("worker_pid") is not None
        ]
        assert worker_trials
        assert {e["args"]["trial"] for e in worker_trials} == {0, 1, 2, 3}
        assert len({e["args"]["campaign_hash"] for e in worker_trials}) == 1
        # Rebased worker spans sit inside the campaign.run wall window.
        campaign = next(e for e in durations if e["name"] == "campaign.run")
        for event in worker_trials:
            assert campaign["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= (
                campaign["ts"] + campaign["dur"] + 1
            )

    def test_trace_is_strict_json(self, untrained_store, tokenizer, world,
                                  tmp_path):
        out = tmp_path / "run.jsonl"
        tel = telemetry()
        tel.enable(out)
        with tel.tracer.span("weird", value=float("nan")):
            pass
        tel.flush(seed=1, command="test")
        trace = chrome_trace(read_run(out))
        json.dumps(trace, allow_nan=False)  # must not raise


# ----------------------------------------------------------------------------
# Live watch
# ----------------------------------------------------------------------------


def _journal_lines(n_trials, total=8):
    header = {
        "kind": "campaign-checkpoint",
        "campaign": {"task": "wmt16", "fault_model": "2bits-mem"},
        "campaign_hash": "abc123",
        "n_trials": total,
    }
    lines = [json.dumps(header)]
    for trial in range(n_trials):
        lines.append(
            json.dumps(
                {
                    "kind": "trial",
                    "trial": trial,
                    "attempts": 2 if trial == 1 else 1,
                    "record": {
                        "outcome": "masked" if trial % 2 else "distorted"
                    },
                }
            )
        )
    return lines


class TestWatch:
    def test_state_tracks_progress_and_outcomes(self):
        state = WatchState()
        state.feed("\n".join(_journal_lines(4)) + "\n")
        assert state.done == 4
        assert state.total == 8
        assert state.retries == 1
        assert state.outcome_mix() == {"distorted": 2, "masked": 2}
        rendered = state.render()
        assert "4/8" in rendered and "2bits-mem" in rendered

    def test_torn_line_buffered_until_complete(self):
        state = WatchState()
        lines = _journal_lines(2)
        whole, torn = "\n".join(lines[:2]) + "\n", lines[2]
        state.feed(whole + torn[:10])  # trailing partial line
        assert state.done == 1
        state.feed(torn[10:] + "\n")  # completion arrives
        assert state.done == 2

    def test_garbage_lines_skipped(self):
        state = WatchState()
        state.feed("not json\n" + _journal_lines(1)[1] + "\n")
        assert state.done == 1

    def test_watch_once_renders_file(self, tmp_path, capsys):
        journal = tmp_path / "ckpt.jsonl"
        journal.write_text("\n".join(_journal_lines(3)) + "\n")
        assert watch(journal, once=True, clear=False) == 0
        assert "3/8" in capsys.readouterr().out

    def test_watch_exits_when_complete(self, tmp_path):
        journal = tmp_path / "ckpt.jsonl"
        journal.write_text("\n".join(_journal_lines(8)) + "\n")
        # Not --once: returns because done == total, not via timeout.
        assert watch(journal, interval=0.01, clear=False) == 0


# ----------------------------------------------------------------------------
# JSONL reader torn-line tolerance + report comparison
# ----------------------------------------------------------------------------


class TestReaderAndComparison:
    def _run_file(self, tmp_path, name="run.jsonl"):
        out = tmp_path / name
        tel = telemetry()
        tel.enable(out)
        with tel.tracer.span("campaign.run"):
            pass
        tel.metrics.counter("campaign.trials").add(3)
        tel.metrics.histogram("campaign.trial_ms").observe(1.5)
        tel.flush(seed=1, command="test")
        tel.reset(), tel.disable()
        return out

    def test_torn_final_line_tolerated(self, tmp_path):
        out = self._run_file(tmp_path)
        whole = read_jsonl(out)
        with out.open("a") as fh:
            fh.write('{"kind": "trial", "tru')  # crash mid-write
        assert read_jsonl(out) == whole
        run = read_run(out)  # full reader tolerates it too
        assert run.metrics.counters["campaign.trials"].value == 3

    def test_mid_file_corruption_raises_with_line(self, tmp_path):
        out = self._run_file(tmp_path)
        lines = out.read_text().splitlines()
        lines[1] = lines[1][:5]  # truncate a non-final record
        out.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(out)

    def test_comparison_renders_delta_column(self, tmp_path):
        run_a = read_run(self._run_file(tmp_path, "a.jsonl"))
        tel = telemetry()
        tel.enable(tmp_path / "b.jsonl")
        tel.metrics.counter("campaign.trials").add(5)
        tel.metrics.histogram("campaign.trial_ms").observe(2.0)
        tel.flush(seed=1, command="test")
        run_b = read_run(tmp_path / "b.jsonl")
        text = render_comparison([("a", run_a), ("b", run_b)])
        assert "delta" in text
        assert "campaign.trials" in text and "campaign.trial_ms" in text
        # Three-run comparison drops the delta column.
        three = render_comparison([("a", run_a), ("b", run_b), ("c", run_a)])
        assert "delta" not in three


# ----------------------------------------------------------------------------
# Bench artifact checker
# ----------------------------------------------------------------------------


def _load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckBench:
    def test_committed_artifacts_pass(self, capsys):
        check_bench = _load_check_bench()
        assert check_bench.main([]) == 0
        assert "artifacts valid" in capsys.readouterr().out

    def test_malformed_artifacts_fail(self, tmp_path, capsys):
        check_bench = _load_check_bench()
        good = json.loads(
            (REPO_ROOT / "BENCH_engine.json").read_text()
        )
        # Filename / bench_id mismatch.
        mismatch = tmp_path / "BENCH_wrong.json"
        mismatch.write_text(json.dumps(good))
        # Manifest stripped.
        bare = dict(good)
        del bare["manifest"]
        no_manifest = tmp_path / "BENCH_engine.json"
        no_manifest.write_text(json.dumps(bare))
        assert check_bench.main([str(mismatch), str(no_manifest)]) == 1
        err = capsys.readouterr().err
        assert "filename does not match bench_id" in err
        assert "manifest" in err

    def test_no_numeric_payload_fails(self, tmp_path):
        check_bench = _load_check_bench()
        good = json.loads(
            (REPO_ROOT / "BENCH_engine.json").read_text()
        )
        hollow = {
            "bench_id": "hollow",
            "manifest": good["manifest"],
            "notes": "text only",
        }
        path = tmp_path / "BENCH_hollow.json"
        path.write_text(json.dumps(hollow))
        problems = check_bench.check_bench_file(path)
        assert any("numeric" in p for p in problems)
