"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.tasks import (
    GSM8kTask,
    GenExample,
    MCExample,
    TaskKind,
    TranslationTask,
    World,
    all_tasks,
    extract_final_answer,
    pseudoword,
    standardized_subset,
)
from repro.tasks.world import TRANSLATABLE_ADJECTIVES, TRANSLATABLE_NOUNS


class TestWorld:
    def test_deterministic(self):
        a, b = World(seed=1), World(seed=1)
        assert a.capital_of == b.capital_of
        assert a.lives_in == b.lives_in
        assert a.src_lexicon == b.src_lexicon

    def test_seed_changes_relations(self):
        assert World(seed=1).lives_in != World(seed=2).lives_in

    def test_pseudoword_deterministic_and_distinct(self):
        assert pseudoword("cat") == pseudoword("cat")
        words = {pseudoword(w) for w in ("cat", "dog", "bird", "fish", "horse")}
        assert len(words) == 5

    def test_adjective_reordering(self):
        world = World(seed=2025)
        src = world.to_source_language(["the", "red", "cat"])
        # Adjective moves after the noun in the source language.
        assert src[1] == world.src_lexicon["cat"]
        assert src[2] == world.src_lexicon["red"]

    def test_sizes_have_both_classes(self):
        world = World(seed=2025)
        sizes = set(world.size_of.values())
        assert sizes == {"big", "small"}


class TestGenerators:
    def test_all_nine_tasks(self, world):
        tasks = all_tasks(world)
        assert len(tasks) == 9
        assert sum(t.kind is TaskKind.MULTIPLE_CHOICE for t in tasks) == 5
        assert sum(t.kind is TaskKind.GENERATIVE for t in tasks) == 4

    @pytest.mark.parametrize("task_index", range(9))
    def test_examples_deterministic(self, world, task_index):
        task = all_tasks(world)[task_index]
        a = task.examples(np.random.default_rng(3), 10)
        b = task.examples(np.random.default_rng(3), 10)
        assert a == b

    def test_mc_examples_valid(self, world):
        for task in all_tasks(world):
            if task.kind is not TaskKind.MULTIPLE_CHOICE:
                continue
            for ex in task.examples(np.random.default_rng(0), 25):
                assert isinstance(ex, MCExample)
                assert 0 <= ex.answer_index < len(ex.options)
                assert len(set(ex.options)) == len(ex.options), task.name

    def test_mc_correct_option_is_true_fact(self, world):
        from repro.tasks import MMLUTask

        for ex in MMLUTask(world).examples(np.random.default_rng(1), 30):
            correct = ex.options[ex.answer_index].strip()
            if "capital of" in ex.prompt:
                country = ex.prompt.split("capital of ")[1].split(" ?")[0]
                assert world.capital_of[country] == correct

    def test_standardized_subset_stable(self, world):
        task = all_tasks(world)[0]
        assert standardized_subset(task, 15) == standardized_subset(task, 15)


class TestGSM8k:
    def test_cot_arithmetic_consistent(self, world):
        task = GSM8kTask(world, use_cot=True)
        for ex in task.examples(np.random.default_rng(2), 40):
            answer = ex.meta["final_answer"]
            assert extract_final_answer(ex.reference) == answer
            # The reference's arithmetic must actually hold.
            steps = ex.reference.split(" . ")
            a, _, b, _, d = steps[0].split()
            d2, _, c, _, e = steps[1].split()
            assert int(a) + int(b) == int(d) and d == d2
            assert int(d) - int(c) == int(e)
            assert e == answer

    def test_direct_mode_short(self, world):
        task = GSM8kTask(world, use_cot=False)
        ex = task.examples(np.random.default_rng(0), 1)[0]
        assert ex.prompt.startswith("solve brief :")
        assert ex.reference.startswith("the answer is")

    def test_extract_final_answer(self):
        assert extract_final_answer("foo . the answer is 42 .") == "42"
        assert extract_final_answer("the answer is 2 6 0 0 .") == "2600"
        assert extract_final_answer("no answer here") is None

    def test_answers_nonnegative(self, world):
        task = GSM8kTask(world)
        for ex in task.examples(np.random.default_rng(4), 100):
            assert int(ex.meta["final_answer"]) >= 0


class TestTranslation:
    def test_reference_is_valid_english(self, world):
        task = TranslationTask(world)
        content = set(TRANSLATABLE_NOUNS) | set(TRANSLATABLE_ADJECTIVES)
        for ex in task.examples(np.random.default_rng(3), 20):
            words = ex.reference.rstrip(" .").split()
            assert any(w in content for w in words)

    def test_source_maps_back(self, world):
        task = TranslationTask(world)
        ex = task.examples(np.random.default_rng(1), 1)[0]
        inverse = {v: k for k, v in world.src_lexicon.items()}
        src_words = ex.meta["source"].split()
        mapped = {inverse.get(w) for w in src_words}
        for word in ex.reference.rstrip(" .").split():
            assert word in mapped


class TestSquad:
    def test_unanswerable_fraction(self, world):
        from repro.tasks import SquadTask

        task = SquadTask(world)
        examples = task.examples(np.random.default_rng(0), 200)
        frac = np.mean([not ex.meta["answerable"] for ex in examples])
        assert 0.1 < frac < 0.45

    def test_answer_in_context_when_answerable(self, world):
        from repro.tasks import SquadTask

        for ex in SquadTask(world).examples(np.random.default_rng(1), 50):
            if ex.meta["answerable"]:
                assert ex.meta["answer"] in ex.prompt


class TestTrainingTexts:
    @pytest.mark.parametrize("task_index", range(9))
    def test_nonempty_and_deterministic(self, world, task_index):
        task = all_tasks(world)[task_index]
        a = task.training_texts(np.random.default_rng(9), 20)
        b = task.training_texts(np.random.default_rng(9), 20)
        assert a == b
        assert all(isinstance(t, str) and t for t in a)
