"""Tests for post-campaign vulnerability aggregation."""

import pytest

from repro.fi import FaultModel, FaultSite, Outcome
from repro.fi.analysis import (
    GroupVulnerability,
    by_bit_role,
    by_block,
    by_layer_type,
    most_vulnerable,
)
from repro.fi.campaign import CampaignResult, TrialRecord


def _trial(layer: str, bits: tuple[int, ...], sdc: bool) -> TrialRecord:
    return TrialRecord(
        site=FaultSite(FaultModel.MEM_2BIT, layer, 0, 0, bits=bits),
        example_index=0,
        prediction="x",
        outcome=Outcome.SDC_SUBTLE if sdc else Outcome.MASKED,
        metrics={},
    )


def _result(trials) -> CampaignResult:
    return CampaignResult(
        task_name="t",
        fault_model=FaultModel.MEM_2BIT,
        n_trials=len(trials),
        baseline={},
        faulty={},
        normalized={},
        trials=trials,
    )


class TestAggregation:
    def test_by_layer_type(self):
        trials = [
            _trial("blocks.0.up_proj", (14,), True),
            _trial("blocks.1.up_proj", (14,), True),
            _trial("blocks.0.q_proj", (14,), False),
            _trial("blocks.0.q_proj", (2,), False),
        ]
        groups = by_layer_type(_result(trials))
        assert groups[0].group == "up_proj"
        assert groups[0].sdc_rate == 1.0
        by_name = {g.group: g for g in groups}
        assert by_name["q_proj"].sdc_rate == 0.0
        assert by_name["q_proj"].trials == 2

    def test_by_block(self):
        trials = [
            _trial("blocks.0.up_proj", (14,), False),
            _trial("blocks.3.up_proj", (14,), True),
        ]
        by_name = {g.group: g for g in by_block(_result(trials))}
        assert by_name["block3"].sdc_rate == 1.0
        assert by_name["block0"].sdc_rate == 0.0

    def test_by_bit_role_bf16(self):
        trials = [
            _trial("blocks.0.up_proj", (15,), False),   # sign
            _trial("blocks.0.up_proj", (14, 3), True),  # exponent
            _trial("blocks.0.up_proj", (6, 2), False),  # mantissa
        ]
        by_name = {
            g.group: g
            for g in by_bit_role(_result(trials), n_storage_bits=16, man_bits=7)
        }
        assert by_name["sign"].trials == 1
        assert by_name["exponent"].sdcs == 1
        assert by_name["mantissa"].sdc_rate == 0.0

    def test_sorted_by_rate(self):
        trials = [
            _trial("blocks.0.q_proj", (14,), False),
            _trial("blocks.0.up_proj", (14,), True),
        ]
        groups = by_layer_type(_result(trials))
        rates = [g.sdc_rate for g in groups]
        assert rates == sorted(rates, reverse=True)


class TestGroupVulnerability:
    def test_interval_brackets_rate(self):
        g = GroupVulnerability("x", trials=40, sdcs=10)
        lo, hi = g.interval
        assert lo < g.sdc_rate < hi

    def test_empty_group(self):
        g = GroupVulnerability("x", trials=0, sdcs=0)
        assert g.sdc_rate == 0.0
        assert g.interval == (0.0, 1.0)

    def test_most_vulnerable_respects_min_trials(self):
        groups = [
            GroupVulnerability("tiny-sample", trials=1, sdcs=1),
            GroupVulnerability("solid", trials=50, sdcs=20),
        ]
        top = most_vulnerable(groups, min_trials=5)
        assert top is not None and top.group == "solid"

    def test_most_vulnerable_none(self):
        assert most_vulnerable([], min_trials=5) is None


class TestOnRealCampaign:
    def test_profiles_from_live_campaign(self, untrained_engine, tokenizer, world):
        from repro.fi import FICampaign
        from repro.tasks import MMLUTask, standardized_subset

        task = MMLUTask(world)
        result = FICampaign(
            engine=untrained_engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, 3),
            fault_model=FaultModel.MEM_2BIT,
            seed=1,
        ).run(20)
        layer_groups = by_layer_type(result)
        assert sum(g.trials for g in layer_groups) == 20
        block_groups = by_block(result)
        assert sum(g.trials for g in block_groups) == 20
        roles = by_bit_role(result, n_storage_bits=32, man_bits=23)
        assert sum(g.trials for g in roles) == 20
