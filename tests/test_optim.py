"""Tests for optimizers, clipping and the LR schedule."""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    AdamW,
    CosineWarmupSchedule,
    Tensor,
    clip_grad_norm,
)


def _quadratic_problem():
    """min ||x - target||^2 from a fixed start."""
    target = np.array([1.0, -2.0, 3.0], np.float32)
    x = Tensor(np.zeros(3, np.float32), requires_grad=True)
    return x, target


def _loss(x: Tensor, target: np.ndarray) -> Tensor:
    diff = x - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges(self):
        x, target = _quadratic_problem()
        opt = SGD([x], lr=0.1)
        for _ in range(200):
            loss = _loss(x, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_momentum_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            x, target = _quadratic_problem()
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(50):
                loss = _loss(x, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = float(_loss(x, target).data)
        assert losses[0.9] < losses[0.0]


class TestAdamW:
    def test_converges(self):
        x, target = _quadratic_problem()
        opt = AdamW([x], lr=0.1)
        for _ in range(300):
            loss = _loss(x, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([10.0], np.float32), requires_grad=True)
        opt = AdamW([x], lr=0.1, weight_decay=0.1)
        for _ in range(50):
            opt.zero_grad()
            x.grad = np.zeros(1, np.float32)  # no data gradient
            opt.step()
        assert abs(float(x.data[0])) < 10.0

    def test_skips_params_without_grad(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        opt = AdamW([x], lr=0.1)
        opt.step()  # no grad yet: must not move or crash
        np.testing.assert_array_equal(x.data, 1.0)


class TestClip:
    def test_clips_to_max_norm(self):
        t = Tensor(np.zeros(4, np.float32), requires_grad=True)
        t.grad = np.full(4, 10.0, np.float32)
        pre = clip_grad_norm([t], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(t.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_threshold(self):
        t = Tensor(np.zeros(2, np.float32), requires_grad=True)
        t.grad = np.array([0.3, 0.4], np.float32)
        clip_grad_norm([t], max_norm=1.0)
        np.testing.assert_allclose(t.grad, [0.3, 0.4])


class TestSchedule:
    def test_warmup_then_decay(self):
        opt = SGD([], lr=0.0)
        sched = CosineWarmupSchedule(opt, peak_lr=1.0, warmup_steps=10, total_steps=100)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] < lrs[5] < lrs[9]  # warming up
        assert max(lrs) == pytest.approx(1.0)
        assert lrs[-1] < 0.2  # decayed
        assert lrs[-1] >= 0.1 * 0.999  # floor = final_lr_frac * peak

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineWarmupSchedule(SGD([], lr=0), 1.0, -1, 10)
