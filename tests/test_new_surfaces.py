"""The three runtime-surface fault models: KV cache, speculation side,
GEMM accumulator.

Covers the new injection surfaces end to end:

* site sampling properties — KV/accumulator sites always address real
  storage of the live geometry, resolved strike positions are uniform
  over *occupied* cache positions only, and identically-keyed trials
  sample identical sites across independently built campaigns;
* :class:`KVFaultInjector` mechanics — iteration latching, persistence
  across appends, rollback when a rejected speculation round truncates
  (or a snapshot restore rewinds) past the strike, re-arming after
  rollback, bit-exact restoration on exit;
* stream isolation — a KV fault pinned to one server tenant's slot
  leaves every other concurrent stream bit-identical, and the slot
  comes back clean;
* the differential oracle — all three new fault models produce
  bit-identical TrialRecords serial vs ``--workers 2`` vs resumed;
* the draft-vs-target masking study — draft-side faults are masked by
  construction (verification re-derives every emitted token), and
  :func:`repro.fi.speculation_masking` measures exactly that;
* forensics — flight records and ``repro obs explain`` stories carry
  the new fault kinds' events and name the corrupted surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import (
    AccumulatorFaultInjector,
    FaultModel,
    FaultSite,
    KVFaultInjector,
    Outcome,
    assert_results_equal,
    by_engine_side,
    by_surface,
    inject,
    sample_site,
    speculation_masking,
)
from repro.generation import GenerationConfig, SpeculativeDecoder, greedy_decode
from repro.inference import InferenceEngine, KVCache
from repro.model import ModelConfig, TransformerLM
from repro.obs import (
    explain_trial,
    flight_recorder,
    flight_records,
    read_run,
    telemetry,
)
from repro.serve import InferenceServer, ServeRejected
from repro.tasks import TranslationTask

from tests.test_differential import make_campaign

NEW_MODELS = (FaultModel.KV_1BIT, FaultModel.KV_2BIT,
              FaultModel.ACC_1BIT, FaultModel.ACC_2BIT)


@pytest.fixture(autouse=True)
def clean_obs():
    tel, recorder = telemetry(), flight_recorder()
    tel.reset(), tel.disable()
    recorder.reset(), recorder.disarm()
    yield
    tel.reset(), tel.disable()
    recorder.reset(), recorder.disarm()


_PROP_ENGINE: InferenceEngine | None = None


def _prop_engine() -> InferenceEngine:
    """Module-cached engine (hypothesis forbids function-scoped fixtures)."""
    global _PROP_ENGINE
    if _PROP_ENGINE is None:
        config = ModelConfig(
            vocab_size=40, d_model=32, n_heads=4, n_blocks=2, d_ff=48,
            max_seq=64,
        )
        _PROP_ENGINE = InferenceEngine(TransformerLM(config, seed=13).to_store())
    return _PROP_ENGINE


def _kv_site(**kw) -> FaultSite:
    defaults = dict(
        fault_model=FaultModel.KV_1BIT,
        layer_name="blocks.0.kv",
        row=1,
        col=2,
        bits=(3,),
        iteration=0,
        row_frac=0.5,
        plane="v",
    )
    defaults.update(kw)
    return FaultSite(**defaults)


# ----------------------------------------------------------------------------
# Site-sampler properties.
# ----------------------------------------------------------------------------


class TestSiteSampling:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_kv_sites_in_bounds(self, seed):
        """KV sites always address the live cache geometry."""
        engine = _prop_engine()
        cfg = engine.config
        rng = np.random.default_rng(seed)
        model = (FaultModel.KV_1BIT, FaultModel.KV_2BIT)[seed % 2]
        site = sample_site(engine, model, rng, max_iterations=8)
        block, suffix = site.layer_name.split(".")[1:3]
        assert suffix == "kv" and 0 <= int(block) < cfg.n_blocks
        assert site.surface == "kv-cache"
        assert 0 <= site.row < cfg.n_heads
        assert 0 <= site.col < cfg.head_dim
        assert site.plane in ("k", "v")
        assert 0.0 <= site.row_frac < 1.0
        assert 0 <= site.iteration < 8
        assert len(site.bits) == model.n_bits
        assert all(0 <= b < 32 for b in site.bits)
        # The resolved strike position is in-bounds for any occupancy.
        for length in (1, 3, 17):
            pos = min(int(site.row_frac * length), length - 1)
            assert 0 <= pos < length

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_acc_sites_in_bounds(self, seed):
        """Accumulator sites target real linears with a valid split."""
        engine = _prop_engine()
        rng = np.random.default_rng(seed)
        model = (FaultModel.ACC_1BIT, FaultModel.ACC_2BIT)[seed % 2]
        site = sample_site(engine, model, rng, max_iterations=8)
        assert site.surface == "accumulator"
        store = engine.weight_store(site.layer_name)
        assert 0 <= site.col < store.shape[1]
        assert 0.0 <= site.acc_frac < 1.0
        # The reduction split always lands in [1, K].
        k = store.shape[0]
        split = min(1 + int(site.acc_frac * k), k)
        assert 1 <= split <= k

    def test_kv_positions_uniform_over_occupied_prefix(self):
        """Strike positions cover exactly the occupied positions, evenly."""
        engine = _prop_engine()
        rng = np.random.default_rng(7)
        length = 7
        counts = np.zeros(length, dtype=int)
        n = 700
        for _ in range(n):
            site = sample_site(engine, FaultModel.KV_1BIT, rng)
            pos = min(int(site.row_frac * length), length - 1)
            counts[pos] += 1
        assert counts.sum() == n
        assert (counts > 0).all()  # every occupied position reachable
        # Loose uniformity bound: each bin within 2x of the expectation.
        assert counts.max() < 2 * (n / length)

    def test_identical_trial_keys_sample_identical_sites(
        self, untrained_store, tokenizer, world
    ):
        """Two independently built campaigns agree site-for-site —
        the stable-key property the pooled/resumed paths rely on."""
        for model in NEW_MODELS:
            a = make_campaign(untrained_store, tokenizer, world, "gen", model)
            b = make_campaign(untrained_store, tokenizer, world, "gen", model)
            for trial in range(12):
                assert a.trial_key(trial) == b.trial_key(trial)
                assert a._trial_site(trial, 8) == b._trial_site(trial, 8)

    def test_kv_layer_filter_respected(self):
        engine = _prop_engine()
        rng = np.random.default_rng(3)
        site = sample_site(
            engine,
            FaultModel.KV_1BIT,
            rng,
            layer_filter=lambda name: name.startswith("blocks.1."),
        )
        assert site.layer_name == "blocks.1.kv"
        with pytest.raises(ValueError):
            sample_site(
                engine, FaultModel.KV_1BIT, rng, layer_filter=lambda n: False
            )


# ----------------------------------------------------------------------------
# KV injector mechanics: latch, persistence, rollback, restoration.
# ----------------------------------------------------------------------------


class TestKVInjector:
    def _append(self, cache, t, seed=0):
        rng = np.random.default_rng(seed)
        n_heads, _, head_dim = cache.k.shape
        cache.append(
            rng.normal(size=(n_heads, t, head_dim)).astype(np.float32),
            rng.normal(size=(n_heads, t, head_dim)).astype(np.float32),
        )

    def test_latch_fires_at_or_after_iteration(self, untrained_engine):
        site = _kv_site(iteration=2)
        cache = KVCache(4, 16, 8)
        with KVFaultInjector(untrained_engine, site) as inj:
            self._append(cache, 3)
            inj.on_append(0, cache, 0)
            assert not inj.fired  # before the sampled iteration
            inj.on_append(0, cache, 3)  # speculation skipped 2: >= latches
            assert inj.fired
        assert untrained_engine.kv_fault is None

    def test_truncate_past_strike_rolls_back_and_rearms(
        self, untrained_engine
    ):
        """The rejected-speculation-round fix: a strike beyond the
        surviving prefix is undone and the injector re-arms."""
        site = _kv_site(row_frac=0.5)
        cache = KVCache(4, 16, 8)
        with KVFaultInjector(untrained_engine, site) as inj:
            self._append(cache, 3)
            pristine = cache.v.copy()
            inj.on_append(0, cache, 0)
            assert inj.fired
            pos = min(int(site.row_frac * 3), 2)  # == 1
            assert not np.array_equal(cache.v, pristine)
            cache.truncate(pos)  # discard the struck position
            assert not inj.fired  # rolled back + re-armed
            np.testing.assert_array_equal(cache.v, pristine)
            assert cache.watchers == ()
            self._append(cache, 2, seed=1)  # decode continues: re-fires
            inj.on_append(0, cache, 1)
            assert inj.fired
        assert cache.watchers == ()

    def test_truncate_before_strike_keeps_fault(self, untrained_engine):
        site = _kv_site(row_frac=0.9)  # strikes the last occupied position
        cache = KVCache(4, 16, 8)
        with KVFaultInjector(untrained_engine, site) as inj:
            self._append(cache, 4)
            inj.on_append(0, cache, 0)  # pos == 3
            cache.truncate(4)  # no-op rewind: strike survives
            assert inj.fired

    def test_restore_is_a_rewind_too(self, untrained_engine):
        site = _kv_site(row_frac=0.9)
        cache = KVCache(4, 16, 8)
        with KVFaultInjector(untrained_engine, site) as inj:
            self._append(cache, 2)
            snap = cache.snapshot()
            self._append(cache, 2, seed=1)
            inj.on_append(0, cache, 0)  # strikes within the new tokens
            cache.restore(snap)
            assert not inj.fired
            assert cache.watchers == ()

    def test_exit_restores_bits_and_disarms(self, untrained_engine):
        site = _kv_site(plane="k")
        cache = KVCache(4, 16, 8)
        self._append(cache, 5)
        pristine = cache.k.copy()
        with KVFaultInjector(untrained_engine, site) as inj:
            inj.on_append(0, cache, 0)
            assert inj.fired
            assert not np.array_equal(cache.k, pristine)
        np.testing.assert_array_equal(cache.k, pristine)
        assert cache.watchers == ()
        assert untrained_engine.kv_fault is None

    def test_caches_pin_scopes_by_identity(self, untrained_engine):
        """A pinned injector ignores every cache but its own slot's."""
        site = _kv_site()
        mine = [KVCache(4, 16, 8), KVCache(4, 16, 8)]
        other = KVCache(4, 16, 8)
        self._append(other, 3)
        self._append(mine[0], 3)
        with KVFaultInjector(untrained_engine, site, caches=mine) as inj:
            inj.on_append(0, other, 0)
            assert not inj.fired  # someone else's sequence
            inj.on_append(0, mine[0], 0)
            assert inj.fired

    def test_double_arm_rejected(self, untrained_engine):
        with KVFaultInjector(untrained_engine, _kv_site()):
            with pytest.raises(RuntimeError):
                KVFaultInjector(untrained_engine, _kv_site()).__enter__()

    def test_engine_decode_with_kv_fault_restores(self, untrained_engine):
        """End-to-end: injected greedy decode leaves no residue and the
        fault-free decode afterwards is bit-identical to before."""
        config = GenerationConfig(max_new_tokens=6, eos_id=-1)
        before = greedy_decode(untrained_engine, [3, 5, 7], config)
        site = _kv_site(bits=(30,), iteration=1)
        with inject(untrained_engine, site) as inj:
            greedy_decode(untrained_engine, [3, 5, 7], config)
        assert isinstance(inj, KVFaultInjector)
        assert untrained_engine.kv_fault is None
        after = greedy_decode(untrained_engine, [3, 5, 7], config)
        assert before == after


class TestAccumulatorInjector:
    def test_strike_equals_in_reduction_flip(self, untrained_engine):
        """The delta formulation is bit-exact to flipping the partial
        sum inside the reduction: out' = out + (flip(p) - p)."""
        site = FaultSite(
            fault_model=FaultModel.ACC_1BIT,
            layer_name="blocks.0.up_proj",
            row=0,
            col=3,
            bits=(21,),
            iteration=0,
            row_frac=0.0,
            acc_frac=0.4,
        )
        x = np.random.default_rng(0).normal(size=(2, 32)).astype(np.float32)
        w = untrained_engine._w("blocks.0.up_proj")
        clean = (x @ w).astype(np.float32)
        out = clean.copy()
        with AccumulatorFaultInjector(untrained_engine, site) as inj:
            inj.maybe_strike(out, x, w, "blocks.0.up_proj", 0, None)
        assert inj.fired
        assert untrained_engine.acc_fault is None
        # Exactly one element moved, in the sampled column.
        diff = np.nonzero(out != clean)
        assert diff[0].tolist() == [0] and diff[1].tolist() == [3]

    def test_one_shot_and_iteration_gate(self, untrained_engine):
        site = FaultSite(
            fault_model=FaultModel.ACC_1BIT,
            layer_name="blocks.0.up_proj",
            row=0,
            col=0,
            bits=(1,),
            iteration=2,
            row_frac=0.0,
            acc_frac=0.5,
        )
        x = np.ones((1, 32), dtype=np.float32)
        w = untrained_engine._w("blocks.0.up_proj")
        out = (x @ w).astype(np.float32)
        with AccumulatorFaultInjector(untrained_engine, site) as inj:
            inj.maybe_strike(out, x, w, "blocks.0.up_proj", 0, None)
            assert not inj.fired  # wrong iteration
            inj.maybe_strike(out, x, w, "blocks.0.down_proj", 2, None)
            assert not inj.fired  # wrong layer
            inj.maybe_strike(out, x, w, "blocks.0.up_proj", 2, None)
            assert inj.fired
            first = out.copy()
            inj.maybe_strike(out, x, w, "blocks.0.up_proj", 2, None)
            np.testing.assert_array_equal(out, first)  # one-shot

    def test_decode_with_acc_fault_restores(self, untrained_engine):
        config = GenerationConfig(max_new_tokens=5, eos_id=-1)
        before = greedy_decode(untrained_engine, [4, 9, 2], config)
        site = sample_site(
            untrained_engine,
            FaultModel.ACC_2BIT,
            np.random.default_rng(11),
            max_iterations=4,
        )
        with inject(untrained_engine, site):
            greedy_decode(untrained_engine, [4, 9, 2], config)
        assert untrained_engine.acc_fault is None
        assert greedy_decode(untrained_engine, [4, 9, 2], config) == before


# ----------------------------------------------------------------------------
# Speculation-side injection and the masking theorem.
# ----------------------------------------------------------------------------


@pytest.fixture(scope="module")
def draft_store(tiny_config):
    """A second tiny model (different init) drafting for the target."""
    return TransformerLM(tiny_config, seed=21).to_store()


class TestSpeculationSide:
    def _spec(self, target, draft, max_new=8):
        return SpeculativeDecoder(
            target,
            draft,
            GenerationConfig(max_new_tokens=max_new, eos_id=-1),
            speculation_depth=3,
        )

    def test_draft_fault_never_changes_output(
        self, untrained_store, draft_store
    ):
        """Verification masks any draft-side corruption: emitted tokens
        are target argmaxes over the emitted prefix, draft or no draft."""
        target = InferenceEngine(untrained_store)
        draft = InferenceEngine(draft_store)
        prompt = [3, 5, 7, 11]
        clean = self._spec(target, draft).decode_one(prompt)
        rng = np.random.default_rng(5)
        for model in (FaultModel.KV_1BIT, FaultModel.ACC_2BIT,
                      FaultModel.COMP_2BIT, FaultModel.MEM_2BIT):
            site = sample_site(
                draft, model, rng, max_iterations=6, engine_side="draft"
            )
            with inject(draft, site):
                faulted = self._spec(target, draft).decode_one(
                    prompt, force=True
                )
            assert faulted == clean, f"draft-side {model.value} leaked"

    def test_target_kv_fault_rolls_back_across_rejections(
        self, untrained_store, draft_store
    ):
        """Target-side KV faults survive speculation's truncate-heavy
        schedule: deterministic, and the engine comes back pristine."""
        target = InferenceEngine(untrained_store)
        draft = InferenceEngine(draft_store)
        prompt = [3, 5, 7, 11]
        clean = self._spec(target, draft).decode_one(prompt)
        site = _kv_site(bits=(30,), iteration=1, row_frac=0.8)
        runs = []
        for _ in range(2):
            with inject(target, site):
                runs.append(
                    self._spec(target, draft).decode_one(prompt, force=True)
                )
        assert runs[0] == runs[1]  # rollback bookkeeping is deterministic
        assert target.kv_fault is None
        assert self._spec(target, draft).decode_one(prompt) == clean

    def test_masking_study_draft_side(
        self, untrained_store, draft_store, tokenizer, world
    ):
        """The acceptance study: measured draft-side masking rate is
        exactly 1.0 (zero SDCs) over fired trials."""
        campaign = make_campaign(
            untrained_store,
            tokenizer,
            world,
            "gen",
            FaultModel.KV_1BIT,
            draft_model=InferenceEngine(draft_store),
            spec_fault_side="draft",
        )
        result = campaign.run(8)
        assert all(t.site.engine_side == "draft" for t in result.trials)
        assert all(t.outcome is Outcome.MASKED for t in result.trials)
        study = speculation_masking(result)
        assert set(study) == {"draft"}
        row = study["draft"]
        assert row["trials"] == 8 and row["sdc"] == 0
        assert row["fired"] >= 1, "no draft fault ever struck"
        assert row["masking_rate"] == 1.0
        (side,) = by_engine_side(result)
        assert side.group == "draft" and side.sdcs == 0

    def test_masking_study_target_side_baseline(
        self, untrained_store, draft_store, tokenizer, world
    ):
        campaign = make_campaign(
            untrained_store,
            tokenizer,
            world,
            "gen",
            FaultModel.KV_2BIT,
            draft_model=InferenceEngine(draft_store),
            spec_fault_side="target",
        )
        result = campaign.run(8)
        assert all(t.site.engine_side == "target" for t in result.trials)
        study = speculation_masking(result)
        assert set(study) == {"target"}
        assert 0 <= study["target"]["fired"] <= study["target"]["trials"]

    def test_spec_fault_side_validation(
        self, untrained_store, tokenizer, world
    ):
        with pytest.raises(ValueError, match="draft_model"):
            make_campaign(
                untrained_store,
                tokenizer,
                world,
                "gen",
                FaultModel.KV_1BIT,
                spec_fault_side="draft",
            )


# ----------------------------------------------------------------------------
# Live-server KV campaigns: stream isolation and blast radius.
# ----------------------------------------------------------------------------


class TestServerKVFaults:
    PROMPTS = [[3, 5, 7], [11, 13, 17, 19], [23, 29, 4]]

    def _config(self):
        return GenerationConfig(max_new_tokens=8, eos_id=-1)

    def test_stream_isolation(self, untrained_engine):
        """A KV fault pinned to one tenant's slot: every other stream is
        bit-identical to the fault-free run, and the slot comes back
        clean for the next occupant."""
        fault = _kv_site(bits=(30,), iteration=0, row_frac=0.2)
        with InferenceServer(
            untrained_engine, self._config(), max_batch=3
        ) as server:
            baseline = [
                h.result(timeout=60)
                for h in [server.submit(p) for p in self.PROMPTS]
            ]
            victim = server.submit(self.PROMPTS[0], kv_fault=fault)
            others = [server.submit(p) for p in self.PROMPTS[1:]]
            victim_tokens = victim.result(timeout=60)
            assert victim.kv_fired  # iteration-0 fault strikes at prefill
            for handle, clean in zip(others, baseline[1:]):
                assert handle.result(timeout=60) == clean
                assert not handle.kv_fired
            # The engine and the recycled slots are pristine again.
            rerun = [
                h.result(timeout=60)
                for h in [server.submit(p) for p in self.PROMPTS]
            ]
            assert rerun == baseline
            assert untrained_engine.kv_fault is None
        # victim_tokens is a complete stream either way; SDC vs masked
        # is the campaign's question, not the transport's.
        assert len(victim_tokens) > 0

    def test_single_fault_in_flight(self, untrained_engine):
        fault = _kv_site()
        with InferenceServer(
            untrained_engine, self._config(), max_batch=3
        ) as server:
            first = server.submit(self.PROMPTS[0], kv_fault=fault)
            with pytest.raises(ServeRejected, match="kv_fault_busy"):
                server.submit(self.PROMPTS[1], kv_fault=fault)
            first.result(timeout=60)
            # Retiring the first frees the budget.
            server.submit(self.PROMPTS[1], kv_fault=fault).result(timeout=60)

    def test_rejects_non_kv_fault_models(self, untrained_engine):
        site = sample_site(
            untrained_engine, FaultModel.MEM_2BIT, np.random.default_rng(0)
        )
        with InferenceServer(untrained_engine, self._config()) as server:
            with pytest.raises(ValueError, match="KV"):
                server.submit(self.PROMPTS[0], kv_fault=site)

    def test_campaign_as_tenant_fires_kv_faults(
        self, untrained_store, tokenizer, world
    ):
        """serve_faults mode: injected trials ride the shared batch and
        reproduce the local reference records exactly."""
        local = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.KV_1BIT
        ).run(6)
        campaign = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.KV_1BIT
        )
        task = TranslationTask(world)
        config = GenerationConfig(
            max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
        )
        with InferenceServer(campaign.engine, config, max_batch=4) as server:
            campaign.attach_server(server, serve_faults=True)
            served = campaign.run(6)
            campaign.detach_server()
        # Slot pinning keeps the blast radius inside the campaign's own
        # stream, so served trials equal the engine-exclusive reference.
        assert_results_equal(served, local, "served", "local")
        (group,) = by_surface(served)
        assert group.group == "kv-cache"

    def test_serve_faults_validation(
        self, untrained_store, tokenizer, world
    ):
        campaign = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT
        )
        config = GenerationConfig(
            max_new_tokens=4, eos_id=tokenizer.vocab.eos_id
        )
        with InferenceServer(campaign.engine, config) as server:
            with pytest.raises(ValueError, match="KV-fault-only"):
                campaign.attach_server(server, serve_faults=True)


class TestPooledTruncationWatchers:
    """Per-slot truncation on a pooled arena behaves exactly like a
    private cache's: a pinned KV injector rolls back and re-arms when a
    rejected speculation round truncates its slot past the strike, and
    the restore touches nothing but that slot's arena row."""

    def test_rejected_round_restores_and_rearms_without_disturbing_siblings(
        self, untrained_engine
    ):
        prompt = [3, 5, 7, 9]
        chunk = [1, 8, 2]  # pending token + two proposals
        pool = untrained_engine.new_pool(2)
        victim, sibling = pool.acquire(), pool.acquire()
        v_caches = pool.caches(victim)
        s_caches = pool.caches(sibling)
        untrained_engine.forward(prompt, v_caches, start_pos=0, iteration=0)
        untrained_engine.forward([2, 4, 6], s_caches, start_pos=0, iteration=0)
        # Fault-free reference bits for the verify chunk's K/V writes
        # into the struck block (block-0 K/V are computed pre-attention,
        # so the faulted replay below writes identical bits + one flip).
        untrained_engine.forward(
            chunk, v_caches, start_pos=len(prompt), iteration=1
        )
        ref_k = v_caches[0].k.copy()
        ref_v = v_caches[0].v.copy()
        for cache in v_caches:
            cache.truncate(len(prompt))
        sib = [(c.k.copy(), c.v.copy()) for c in s_caches]
        site = _kv_site(bits=(30,), iteration=1, row_frac=0.9)
        with KVFaultInjector(untrained_engine, site, caches=v_caches) as inj:
            untrained_engine.forward(
                chunk, v_caches, start_pos=len(prompt), iteration=1
            )
            assert inj.fired
            assert not np.array_equal(v_caches[0].v, ref_v)  # bits flipped
            # The round rejects everything: per-slot truncation — exactly
            # what BatchedSpeculativeDecoder's rollback does — fires the
            # slot views' watchers.
            for cache in v_caches:
                cache.truncate(len(prompt))
            assert not inj.fired  # rolled back + re-armed
            np.testing.assert_array_equal(v_caches[0].k, ref_k)
            np.testing.assert_array_equal(v_caches[0].v, ref_v)
            # Sibling arena rows saw neither the strike nor the restore.
            for cache, (k, v) in zip(s_caches, sib):
                np.testing.assert_array_equal(cache.k, k)
                np.testing.assert_array_equal(cache.v, v)
            # The next round re-fires on the surviving prefix.
            untrained_engine.forward(
                chunk[:2], v_caches, start_pos=len(prompt), iteration=2
            )
            assert inj.fired
        assert untrained_engine.kv_fault is None
        assert all(c.watchers == () for c in v_caches)

    def test_served_speculation_stream_isolation(
        self, untrained_engine, tokenizer
    ):
        """A KV fault pinned to one stream of a *speculative* server:
        rejected rounds truncate the victim's pooled slots mid-flight,
        sibling streams stay bit-identical to the fault-free run, and
        the recycled slots come back clean."""
        draft_config = ModelConfig(
            vocab_size=untrained_engine.config.vocab_size, d_model=16,
            n_heads=2, n_blocks=1, d_ff=24, max_seq=160,
        )
        draft = InferenceEngine(TransformerLM(draft_config, seed=23).to_store())
        config = GenerationConfig(max_new_tokens=8, eos_id=-1)
        prompts = [[3, 5, 7], [11, 13, 17, 19], [23, 29, 4]]
        fault = _kv_site(bits=(30,), iteration=0, row_frac=0.2)
        with InferenceServer(
            untrained_engine, config, max_batch=3,
            draft=draft, speculation_depth=3,
        ) as server:
            baseline = [
                h.result(timeout=60)
                for h in [server.submit(p) for p in prompts]
            ]
            # Speculative serving is exact before any fault shows up.
            assert baseline == [
                greedy_decode(untrained_engine, p, config) for p in prompts
            ]
            victim = server.submit(prompts[0], kv_fault=fault)
            others = [server.submit(p) for p in prompts[1:]]
            victim_tokens = victim.result(timeout=60)
            assert victim.kv_fired  # iteration-0 fault strikes at prefill
            for handle, clean in zip(others, baseline[1:]):
                assert handle.result(timeout=60) == clean
                assert not handle.kv_fired
            # Engine and recycled slots (both pools) are pristine again.
            rerun = [
                h.result(timeout=60)
                for h in [server.submit(p) for p in prompts]
            ]
            assert rerun == baseline
            assert untrained_engine.kv_fault is None
        assert len(victim_tokens) > 0


# ----------------------------------------------------------------------------
# Differential acceptance: serial vs pooled vs resumed, per model.
# ----------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("fault_model", NEW_MODELS)
    def test_serial_vs_pooled_vs_resumed(
        self, untrained_store, tokenizer, world, tmp_path, fault_model
    ):
        serial = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).run(6)
        pooled = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).run(6, n_workers=2)
        assert_results_equal(pooled, serial, "pooled", "serial")
        ck = tmp_path / f"{fault_model.value}.ckpt.jsonl"
        make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).run(3, checkpoint=ck)
        resumed = make_campaign(
            untrained_store, tokenizer, world, "gen", fault_model
        ).resume(ck, 6)
        assert_results_equal(resumed, serial, "resumed", "serial")

    @pytest.mark.parametrize("side", ["draft", "target"])
    def test_spec_side_serial_vs_pooled_vs_resumed(
        self, untrained_store, draft_store, tokenizer, world, tmp_path, side
    ):
        def build():
            return make_campaign(
                untrained_store,
                tokenizer,
                world,
                "gen",
                FaultModel.COMP_2BIT,
                draft_model=InferenceEngine(draft_store),
                spec_fault_side=side,
            )

        serial = build().run(6)
        pooled = build().run(6, n_workers=2)
        assert_results_equal(pooled, serial, "pooled", "serial")
        ck = tmp_path / f"spec-{side}.ckpt.jsonl"
        build().run(3, checkpoint=ck)
        resumed = build().resume(ck, 6)
        assert_results_equal(resumed, serial, "resumed", "serial")

    def test_fingerprint_back_compat(self, untrained_store, tokenizer, world):
        """Existing campaigns' fingerprints are untouched: the new keys
        join only when the speculation-side study is active."""
        plain = make_campaign(
            untrained_store, tokenizer, world, "gen", FaultModel.COMP_2BIT
        ).fingerprint()
        assert "spec_fault_side" not in plain
        assert "speculation_depth" not in plain


# ----------------------------------------------------------------------------
# Forensics: flight events and `repro obs explain` on the new kinds.
# ----------------------------------------------------------------------------


class TestExplainNewSurfaces:
    def _run(self, store, tokenizer, world, fault_model, out, trials=6):
        tel = telemetry()
        tel.enable(out)
        recorder = flight_recorder().arm()
        make_campaign(store, tokenizer, world, "gen", fault_model).run(trials)
        tel.flush(seed=0, command="test", extra_records=recorder.drain())
        return flight_records(read_run(out))

    def test_kv_timeline_and_story(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        loaded = self._run(
            untrained_store, tokenizer, world, FaultModel.KV_1BIT,
            tmp_path / "kv.jsonl",
        )
        assert sorted(loaded) == list(range(6))
        fired_any = False
        for record in loaded.values():
            assert record["site"]["fault_model"] == "1bit-kv"
            names = [e["event"] for e in record["events"]]
            assert "inject.kv_arm" in names
            story = explain_trial(record)
            assert "kv-cache" in story
            assert record["site"]["layer_name"] in story
            if "inject.kv_fire" in names:
                fired_any = True
                fire = next(
                    e for e in record["events"]
                    if e["event"] == "inject.kv_fire"
                )
                assert fire["before"] != fire["after"]
        assert fired_any, "no KV fault fired across the mini-campaign"

    def test_accumulator_timeline_and_story(
        self, untrained_store, tokenizer, world, tmp_path
    ):
        loaded = self._run(
            untrained_store, tokenizer, world, FaultModel.ACC_2BIT,
            tmp_path / "acc.jsonl",
        )
        fired = [
            r for r in loaded.values()
            if any(e["event"] == "inject.acc_fire" for e in r["events"])
        ]
        assert fired, "no accumulator fault fired across the mini-campaign"
        for record in loaded.values():
            story = explain_trial(record)
            assert "accumulator" in story
        # An SDC trial's divergence is attributed to the corrupted
        # surface: the story names the struck pseudo-layer and shows
        # the corruption front / first divergent token when present.
        sdc = next(
            (r for r in loaded.values() if r["outcome"] != "masked"), None
        )
        if sdc is not None and sdc["divergence"] is not None:
            story = explain_trial(sdc)
            assert (
                f"first divergent token at index"
                f" {sdc['divergence']['index']}" in story
            )
