"""Tests for memory and computational fault injectors."""

import numpy as np
import pytest

from repro.fi import (
    ComputationalFaultInjector,
    FaultModel,
    FaultSite,
    MemoryFaultInjector,
    inject,
)

TOKENS = [1, 4, 9, 2, 6]


def _mem_site(layer="blocks.0.up_proj", row=3, col=5, bits=(30, 2)):
    return FaultSite(FaultModel.MEM_2BIT, layer, row, col, bits=bits)


def _comp_site(layer="blocks.0.up_proj", col=5, bits=(30,), iteration=0):
    return FaultSite(
        FaultModel.COMP_1BIT, layer, 0, col, bits=bits,
        iteration=iteration, row_frac=0.5,
    )


class TestMemoryInjector:
    def test_corrupts_then_restores_exactly(self, untrained_engine):
        site = _mem_site()
        store = untrained_engine.weight_store(site.layer_name)
        pristine = store.array.copy()
        baseline = untrained_engine.forward_full(TOKENS)
        with MemoryFaultInjector(untrained_engine, site):
            faulty = untrained_engine.forward_full(TOKENS)
            assert store.array[site.row, site.col] != pristine[site.row, site.col]
        np.testing.assert_array_equal(store.array, pristine)
        np.testing.assert_array_equal(
            untrained_engine.forward_full(TOKENS), baseline
        )
        assert not np.allclose(faulty, baseline)

    def test_restores_on_exception(self, untrained_engine):
        site = _mem_site()
        store = untrained_engine.weight_store(site.layer_name)
        pristine = store.array.copy()
        with pytest.raises(RuntimeError):
            with MemoryFaultInjector(untrained_engine, site):
                raise RuntimeError("inference crashed")
        np.testing.assert_array_equal(store.array, pristine)

    def test_rejects_comp_model(self, untrained_engine):
        with pytest.raises(ValueError):
            MemoryFaultInjector(untrained_engine, _comp_site())

    def test_persistent_across_iterations(self, untrained_engine):
        """Memory faults affect every generation iteration (paper §4.3.2)."""
        site = _mem_site(bits=(30, 28))
        baseline = untrained_engine.start_session(TOKENS[:3])
        base_logits = [baseline.last_logits.copy(), baseline.step(1).copy()]
        with MemoryFaultInjector(untrained_engine, site):
            faulty = untrained_engine.start_session(TOKENS[:3])
            fault_logits = [faulty.last_logits.copy(), faulty.step(1).copy()]
        assert not np.allclose(base_logits[0], fault_logits[0], equal_nan=True)
        assert not np.allclose(base_logits[1], fault_logits[1], equal_nan=True)


class TestComputationalInjector:
    def test_one_shot_at_iteration(self, untrained_engine):
        site = _comp_site(iteration=1)
        baseline = untrained_engine.start_session(TOKENS[:3])
        base0 = baseline.last_logits.copy()
        base1 = baseline.step(2).copy()
        base2 = baseline.step(3).copy()
        with ComputationalFaultInjector(untrained_engine, site) as injector:
            session = untrained_engine.start_session(TOKENS[:3])
            out0 = session.last_logits.copy()
            assert not injector.fired  # iteration 0 untouched
            out1 = session.step(2).copy()
            assert injector.fired  # fired at iteration 1
            out2 = session.step(3).copy()
        np.testing.assert_array_equal(out0, base0)
        assert not np.allclose(out1, base1)
        # KV cache carries the corruption forward even though the
        # injector fired once.
        assert not np.allclose(out2, base2)

    def test_hook_removed_after_context(self, untrained_engine):
        with ComputationalFaultInjector(untrained_engine, _comp_site()):
            assert len(untrained_engine.hooks) == 1
        assert len(untrained_engine.hooks) == 0
        baseline = untrained_engine.forward_full(TOKENS)
        np.testing.assert_array_equal(
            untrained_engine.forward_full(TOKENS), baseline
        )

    def test_single_element_corruption(self, untrained_engine):
        """Exactly one element of the hooked layer output changes."""
        site = _comp_site(bits=(3,))
        from repro.inference import CaptureState

        untrained_engine.capture = CaptureState()
        untrained_engine.forward_full(TOKENS)
        clean = untrained_engine.capture.layer_outputs[site.layer_name]
        untrained_engine.capture = CaptureState()
        with ComputationalFaultInjector(untrained_engine, site):
            untrained_engine.forward_full(TOKENS)
        corrupted = untrained_engine.capture.layer_outputs[site.layer_name]
        untrained_engine.capture = None
        assert (clean != corrupted).sum() <= 1

    def test_rejects_memory_model(self, untrained_engine):
        with pytest.raises(ValueError):
            ComputationalFaultInjector(untrained_engine, _mem_site())


class TestInjectDispatch:
    def test_dispatch(self, untrained_engine):
        assert isinstance(
            inject(untrained_engine, _mem_site()), MemoryFaultInjector
        )
        assert isinstance(
            inject(untrained_engine, _comp_site()), ComputationalFaultInjector
        )

    @pytest.mark.parametrize("policy", ["bf16", "int4"])
    def test_memory_injection_per_policy(self, untrained_store, policy):
        from repro.inference import InferenceEngine

        engine = InferenceEngine(untrained_store, weight_policy=policy)
        width = engine.weight_store("blocks.0.up_proj").n_storage_bits
        site = _mem_site(bits=(width - 1, 0))
        pristine = engine.weight_store(site.layer_name).array.copy()
        with inject(engine, site):
            assert engine.weight_store(site.layer_name).array[
                site.row, site.col
            ] != pytest.approx(float(pristine[site.row, site.col]))
        np.testing.assert_array_equal(
            engine.weight_store(site.layer_name).array, pristine
        )
