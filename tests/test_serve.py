"""Serving loop: mid-flight admission, fairness, SLOs, equivalence.

Covers the multi-tenant streaming server end to end:

* the smooth weighted-round-robin scheduler (exact share convergence,
  maximal interleaving, in-flight caps);
* admission control (bounded queues shed with typed rejections, too-long
  prompts rejected, shutdown refuses new work);
* served streams token-identical to serial ``greedy_decode`` under
  concurrent mid-flight admission;
* stream-termination edge cases from the bug taxonomy — EOS as the very
  first token, client abandoning a stream mid-generation, token budget
  hit mid-speculation round — all free KV slots and never deadlock the
  pump;
* a saturating tenant cannot starve a light tenant's TTFT;
* campaigns attach as just another tenant with unchanged baselines;
* SLO instruments land in the obs registry and render as the dedicated
  report section.
"""

import numpy as np
import pytest

from repro.fi import FaultModel
from repro.fi.campaign import FICampaign
from repro.generation import (
    BatchedDecoder,
    GenerationConfig,
    SpeculativeDecoder,
    greedy_decode,
)
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import telemetry
from repro.obs.export import read_run
from repro.obs.report import render_report
from repro.serve import (
    InferenceServer,
    ServeRejected,
    TenantConfig,
    WeightedScheduler,
    run_load,
)
from repro.serve.loadgen import PromptSpec, equivalence_gate
from repro.tasks import TranslationTask, standardized_subset

PROMPTS = [[3, 5, 7], [11, 13, 17, 19, 4], [23, 29], [8, 15, 16, 42], [6], [31, 37]]


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


def _config(**kw):
    kw.setdefault("max_new_tokens", 8)
    kw.setdefault("eos_id", -1)
    return GenerationConfig(**kw)


def _stock(scheduler: WeightedScheduler, name: str, n: int) -> None:
    scheduler.get(name).queue.extend(object() for _ in range(n))


def _draft_for(engine: InferenceEngine) -> InferenceEngine:
    """A draft smaller than the target, sharing its vocabulary."""
    config = ModelConfig(
        vocab_size=engine.config.vocab_size, d_model=16, n_heads=2,
        n_blocks=1, d_ff=24, max_seq=160,
    )
    return InferenceEngine(TransformerLM(config, seed=23).to_store())


class TestWeightedScheduler:
    def test_exact_share_convergence(self):
        scheduler = WeightedScheduler()
        scheduler.add(TenantConfig("a", weight=3.0))
        scheduler.add(TenantConfig("b", weight=1.0))
        _stock(scheduler, "a", 400)
        _stock(scheduler, "b", 400)
        picks = []
        for _ in range(400):
            state = scheduler.pick()
            state.queue.popleft()
            picks.append(state.name)
        assert picks.count("a") == 300
        assert picks.count("b") == 100

    def test_smooth_interleaving(self):
        """Weight 3:1 serves A A B A, never the bursty A A A B."""
        scheduler = WeightedScheduler()
        scheduler.add(TenantConfig("a", weight=3.0))
        scheduler.add(TenantConfig("b", weight=1.0))
        _stock(scheduler, "a", 8)
        _stock(scheduler, "b", 8)
        picks = []
        for _ in range(8):
            state = scheduler.pick()
            state.queue.popleft()
            picks.append(state.name)
        assert picks == ["a", "a", "b", "a", "a", "a", "b", "a"]

    def test_in_flight_cap_gates_runnability(self):
        scheduler = WeightedScheduler()
        scheduler.add(TenantConfig("a", weight=9.0, max_in_flight=1))
        scheduler.add(TenantConfig("b", weight=1.0))
        _stock(scheduler, "a", 4)
        _stock(scheduler, "b", 4)
        scheduler.get("a").in_flight = 1  # at cap: only b is runnable
        assert scheduler.pick().name == "b"
        scheduler.get("a").in_flight = 0
        assert scheduler.pick().name == "a"

    def test_empty_and_duplicate(self):
        scheduler = WeightedScheduler()
        assert scheduler.pick() is None
        scheduler.add(TenantConfig("a"))
        with pytest.raises(ValueError, match="already registered"):
            scheduler.add(TenantConfig("a"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TenantConfig("a", weight=0)
        with pytest.raises(ValueError):
            TenantConfig("a", max_in_flight=0)
        with pytest.raises(ValueError):
            TenantConfig("a", max_queue=0)
        with pytest.raises(ValueError):
            TenantConfig("")


class TestServedEquivalence:
    def test_concurrent_streams_match_serial(self, untrained_engine):
        specs = [PromptSpec("t", tuple(p), 8) for p in PROMPTS]
        assert equivalence_gate(
            untrained_engine, _config(), specs, max_batch=4
        ) == len(PROMPTS)

    def test_mid_flight_admission_matches_serial(self, untrained_engine):
        """Requests submitted while others decode join mid-batch and
        still produce serial-identical streams."""
        config = _config(max_new_tokens=12)
        references = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS
        ]
        with InferenceServer(untrained_engine, config, max_batch=2) as server:
            first = [server.submit(p) for p in PROMPTS[:2]]
            # Wait for the batch to be mid-flight, then pile on.
            next(iter(first[0]))
            late = [server.submit(p) for p in PROMPTS[2:]]
            outputs = [h.result(timeout=60) for h in first + late]
        assert outputs == references

    def test_streaming_is_incremental(self, untrained_engine):
        config = _config(max_new_tokens=6)
        with InferenceServer(untrained_engine, config) as server:
            handle = server.submit(PROMPTS[0])
            streamed = list(iter(handle))
        assert streamed == handle.tokens
        assert len(streamed) == 6
        assert handle.finish_reason == "length"
        assert handle.ttft_s is not None
        assert handle.latency_s >= handle.ttft_s


class TestAdmissionControl:
    def test_bounded_queue_sheds_typed(self, untrained_engine):
        server = InferenceServer(
            untrained_engine,
            _config(),
            tenants=[TenantConfig("x", max_queue=2)],
        )
        server.submit(PROMPTS[0], tenant="x")
        server.submit(PROMPTS[1], tenant="x")
        with pytest.raises(ServeRejected) as exc_info:
            server.submit(PROMPTS[2], tenant="x")
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.tenant == "x"
        assert server.tenant_stats()["x"]["rejected"] == 1
        server.stop()

    def test_prompt_too_long_rejected(self, untrained_engine):
        server = InferenceServer(untrained_engine, _config())
        max_seq = untrained_engine.config.max_seq
        with pytest.raises(ServeRejected) as exc_info:
            server.submit([1] * max_seq, max_new_tokens=8)
        assert exc_info.value.reason == "prompt_too_long"
        server.stop()

    def test_shutdown_refuses_new_work(self, untrained_engine):
        server = InferenceServer(untrained_engine, _config()).start()
        server.stop()
        with pytest.raises(ServeRejected) as exc_info:
            server.submit(PROMPTS[0])
        assert exc_info.value.reason == "shutdown"

    def test_unknown_tenant_autoregisters(self, untrained_engine):
        with InferenceServer(untrained_engine, _config()) as server:
            server.submit(PROMPTS[0], tenant="fresh").result(timeout=60)
        assert server.tenant_stats()["fresh"]["completed"] == 1


class TestStreamTerminationEdges:
    """The bug-taxonomy stream-termination cases: every one must free
    its KV slot and leave the pump serving."""

    def _assert_pump_alive(self, server, prompt):
        """The acid test after an edge case: the next request decodes."""
        follow_up = server.submit(prompt)
        assert follow_up.result(timeout=60)
        assert follow_up.finish_reason in ("length", "eos")

    def test_eos_as_first_token(self, untrained_engine):
        first = greedy_decode(
            untrained_engine, PROMPTS[0], _config(max_new_tokens=1),
            strategy="serial",
        )[0]
        config = _config(max_new_tokens=8, eos_id=first)
        with InferenceServer(untrained_engine, config, max_batch=2) as server:
            handle = server.submit(PROMPTS[0])
            assert handle.result(timeout=60) == []
            assert handle.finish_reason == "eos"
            assert list(iter(handle)) == []  # stream ends, never hangs
            assert server.pool.n_free == server.pool.n_slots
            # EOS-first never even occupies a batch row across a step.
            other = greedy_decode(
                untrained_engine, PROMPTS[1], config, strategy="serial"
            )
            got = server.submit(PROMPTS[1]).result(timeout=60)
            assert got == other

    def test_client_abandons_stream_mid_generation(self, untrained_engine):
        config = _config(max_new_tokens=64)
        with InferenceServer(untrained_engine, config, max_batch=2) as server:
            handle = server.submit(PROMPTS[0], max_new_tokens=64)
            stream = iter(handle)
            next(stream)
            next(stream)
            handle.cancel()
            handle.result(timeout=60)
            assert handle.finish_reason == "cancelled"
            assert 2 <= len(handle.tokens) < 64
            # Tokens decoded before the cancel landed drain, then the
            # stream terminates — it never hangs.
            assert list(stream) == handle.tokens[2:]
            assert server.pool.n_free == server.pool.n_slots
            self._assert_pump_alive(server, PROMPTS[1])

    def test_cancel_while_queued(self, untrained_engine):
        config = _config(max_new_tokens=16)
        with InferenceServer(untrained_engine, config, max_batch=1) as server:
            running = server.submit(PROMPTS[0])
            queued = server.submit(PROMPTS[1])
            queued.cancel()
            assert queued.result(timeout=60) == []
            assert queued.finish_reason == "cancelled"
            assert running.result(timeout=60)
        # A cancelled-in-queue request never held a slot.
        assert server.pool.n_free == server.pool.n_slots

    def test_budget_hit_mid_speculation_round(self, untrained_engine):
        """A token budget landing inside a draft-verify round truncates
        to exactly the serial output, and the engine's caches stay
        consistent — serving the same engine afterwards still matches
        serial decode."""
        for max_new in (1, 2, 3, 5):
            config = _config(max_new_tokens=max_new)
            decoder = SpeculativeDecoder(
                untrained_engine, untrained_engine, config, speculation_depth=4
            )
            for prompt in PROMPTS[:3]:
                serial = greedy_decode(
                    untrained_engine, prompt, config, strategy="serial"
                )
                assert decoder.decode_one(prompt) == serial
        config = _config(max_new_tokens=8)
        with InferenceServer(untrained_engine, config) as server:
            self._assert_pump_alive(server, PROMPTS[0])

    def test_hard_stop_terminates_streams(self, untrained_engine):
        config = _config(max_new_tokens=64)
        server = InferenceServer(untrained_engine, config, max_batch=1).start()
        active = server.submit(PROMPTS[0], max_new_tokens=64)
        queued = server.submit(PROMPTS[1], max_new_tokens=64)
        next(iter(active))
        server.stop(drain=False)
        assert active.result(timeout=60) is not None
        assert queued.finish_reason == "shutdown"
        assert list(iter(queued)) == []
        assert server.pool.n_free == server.pool.n_slots


class TestServedSpeculation:
    """The composed fast path live: the pump speculates on decoding rows
    while newly admitted prompts prefill in the same round.  Exactness
    and the stream-termination edges must hold with a draft armed, and
    every edge must leave *both* pools (target and draft) fully free."""

    def _server(self, engine, config, **kw):
        kw.setdefault("max_batch", 2)
        kw.setdefault("speculation_depth", 4)
        return InferenceServer(engine, config, draft=_draft_for(engine), **kw)

    def _assert_slots_free(self, server):
        assert server.pool.n_free == server.pool.n_slots
        assert server.draft_pool.n_free == server.draft_pool.n_slots

    def test_matches_serial_under_mid_flight_admission(self, untrained_engine):
        config = _config(max_new_tokens=10)
        serial = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS
        ]
        # Six streams through two slots: refills join rounds mid-flight.
        with self._server(untrained_engine, config) as server:
            handles = [server.submit(p) for p in PROMPTS]
            assert [h.result(timeout=60) for h in handles] == serial
            self._assert_slots_free(server)

    def test_eos_as_first_token(self, untrained_engine):
        first = greedy_decode(
            untrained_engine, PROMPTS[0], _config(max_new_tokens=1),
            strategy="serial",
        )[0]
        config = _config(max_new_tokens=8, eos_id=first)
        with self._server(untrained_engine, config) as server:
            handle = server.submit(PROMPTS[0])
            assert handle.result(timeout=60) == []
            assert handle.finish_reason == "eos"
            # EOS-first retires before the draft slot is ever acquired.
            self._assert_slots_free(server)

    def test_eos_mid_round(self, untrained_engine):
        free = [
            greedy_decode(
                untrained_engine, p, _config(max_new_tokens=12),
                strategy="serial",
            )
            for p in PROMPTS[:4]
        ]
        eos = free[0][4]  # lands inside a depth-4 round for stream 0
        config = _config(max_new_tokens=12, eos_id=eos)
        serial = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS[:4]
        ]
        with self._server(untrained_engine, config) as server:
            handles = [server.submit(p) for p in PROMPTS[:4]]
            assert [h.result(timeout=60) for h in handles] == serial
            self._assert_slots_free(server)

    @pytest.mark.parametrize("max_new", (1, 2, 3, 5))
    def test_budget_hit_mid_round(self, untrained_engine, max_new):
        """Budgets that end a stream inside a verify chunk truncate to
        exactly the serial output — "length" never lands mid-chunk."""
        config = _config(max_new_tokens=max_new)
        serial = [
            greedy_decode(untrained_engine, p, config, strategy="serial")
            for p in PROMPTS[:3]
        ]
        with self._server(untrained_engine, config) as server:
            handles = [server.submit(p) for p in PROMPTS[:3]]
            assert [h.result(timeout=60) for h in handles] == serial
            for handle in handles:
                assert handle.finish_reason in ("eos", "length")
            self._assert_slots_free(server)

    def test_cancel_while_speculating(self, untrained_engine):
        config = _config(max_new_tokens=64)
        with self._server(untrained_engine, config) as server:
            handle = server.submit(PROMPTS[0], max_new_tokens=64)
            stream = iter(handle)
            next(stream)
            next(stream)
            handle.cancel()
            handle.result(timeout=60)
            assert handle.finish_reason == "cancelled"
            # Cancellation lands at round granularity: tokens committed
            # by the in-flight round drain, then the stream terminates.
            assert 2 <= len(handle.tokens) < 64
            assert list(stream) == handle.tokens[2:]
            self._assert_slots_free(server)
            follow_up = server.submit(PROMPTS[1])
            assert follow_up.result(timeout=60)

    def test_abandoned_stream(self, untrained_engine):
        """A client that walks away without ever reading: the stream is
        cancelled unread, the pump keeps serving, no slot leaks."""
        config = _config(max_new_tokens=64)
        with self._server(untrained_engine, config) as server:
            abandoned = server.submit(PROMPTS[0], max_new_tokens=64)
            live = server.submit(PROMPTS[1], max_new_tokens=8)
            abandoned.cancel()
            abandoned.result(timeout=60)
            assert abandoned.finish_reason == "cancelled"
            assert live.result(timeout=60) == greedy_decode(
                untrained_engine, PROMPTS[1], _config(max_new_tokens=8),
                strategy="serial",
            )
            self._assert_slots_free(server)


class TestFairness:
    def test_two_tenant_weighted_share(self, untrained_engine):
        """Admission order converges to the configured 3:1 share while
        both tenants have work (exact, deterministic)."""
        config = _config(max_new_tokens=2)
        server = InferenceServer(
            untrained_engine,
            config,
            max_batch=1,
            tenants=[
                TenantConfig("a", weight=3.0),
                TenantConfig("b", weight=1.0),
            ],
        )
        handles = []
        for i in range(12):
            handles.append(server.submit(PROMPTS[i % len(PROMPTS)], tenant="a"))
            handles.append(server.submit(PROMPTS[i % len(PROMPTS)], tenant="b"))
        with server:
            for handle in handles:
                handle.result(timeout=120)
        admitted = [tenant for tenant, _ in server.admission_log]
        # While both queues are non-empty the smooth-WRR share is exact.
        assert admitted[:8].count("a") == 6
        assert admitted[:8].count("b") == 2
        assert admitted[:4] == ["a", "a", "b", "a"]
        assert admitted.count("a") == 12 and admitted.count("b") == 12

    def test_saturating_tenant_cannot_starve_light_ttft(self, untrained_engine):
        """A flood from one tenant must not push another tenant's
        first token behind the whole backlog."""
        config = _config(max_new_tokens=12)
        server = InferenceServer(
            untrained_engine,
            config,
            max_batch=2,
            tenants=[
                TenantConfig("heavy", max_queue=1000),
                TenantConfig("light"),
            ],
        )
        heavy = [
            server.submit(PROMPTS[i % len(PROMPTS)], tenant="heavy")
            for i in range(40)
        ]
        with server:
            # Server is busy on the heavy backlog; a light request
            # arriving mid-flight is admitted at the next WRR pick.
            next(iter(heavy[0]))
            light = server.submit(PROMPTS[0], tenant="light")
            light.result(timeout=120)
            stats = server.tenant_stats()
            assert stats["heavy"]["queued"] > 0, (
                "light tenant should finish while the saturating tenant"
                " still has a backlog"
            )
            for handle in heavy:
                handle.result(timeout=120)
        light_admissions = [
            i
            for i, (tenant, _) in enumerate(server.admission_log)
            if tenant == "light"
        ]
        assert light_admissions, "light tenant was never admitted"

    def test_max_in_flight_cap_respected(self, untrained_engine):
        config = _config(max_new_tokens=8)
        server = InferenceServer(
            untrained_engine,
            config,
            max_batch=4,
            tenants=[TenantConfig("capped", max_in_flight=1)],
        )
        handles = [
            server.submit(PROMPTS[i], tenant="capped") for i in range(4)
        ]
        with server:
            for handle in handles:
                handle.result(timeout=120)
        # With the cap at 1, admissions are strictly sequential: each
        # request is admitted only after the previous one retires.
        assert [r for _, r in server.admission_log] == sorted(
            r for _, r in server.admission_log
        )
        assert server.tenant_stats()["capped"]["completed"] == 4


class TestServeTelemetry:
    def test_slo_instruments_recorded(self, untrained_engine, clean_telemetry):
        tel = clean_telemetry
        tel.enable()
        config = _config(max_new_tokens=6)
        with InferenceServer(untrained_engine, config, max_batch=2) as server:
            for p in PROMPTS[:4]:
                server.submit(p, tenant="users")
            # Drained by stop(drain=True) on context exit.
        assert tel.metrics.histogram("serve.ttft_ms").summary()["count"] == 4
        assert tel.metrics.histogram("serve.e2e_ms").summary()["count"] == 4
        assert tel.metrics.histogram("serve.tpot_ms").summary()["count"] == 4
        occupancy = tel.metrics.histogram("serve.batch_occupancy").summary()
        assert occupancy["count"] > 0 and occupancy["max"] <= 2
        assert tel.metrics.counter("serve.tenant.users.tokens").value == 24
        assert tel.metrics.gauge("decode.free_slots").value == 2

    def test_free_slots_gauge_from_batched_decoder(
        self, untrained_engine, clean_telemetry
    ):
        tel = clean_telemetry
        tel.enable()
        decoder = BatchedDecoder(untrained_engine, _config(), max_batch=3)
        decoder.decode_many(PROMPTS)
        # Every slot released once the sweep retires all sequences.
        assert tel.metrics.gauge("decode.free_slots").value == 3

    def test_report_renders_serve_section(
        self, untrained_engine, clean_telemetry, tmp_path
    ):
        tel = clean_telemetry
        out = tmp_path / "serve-run.jsonl"
        tel.enable(out)
        config = _config(max_new_tokens=4)
        with InferenceServer(untrained_engine, config) as server:
            specs = [PromptSpec("t", tuple(p), 4) for p in PROMPTS[:3]]
            report = run_load(
                server, specs, offered_rps=200.0, duration_s=0.1, seed=3
            )
        tel.record("serve_load_point", **report.to_dict())
        tel.flush(command="test-serve")
        rendered = render_report(read_run(out))
        assert "== serving SLOs ==" in rendered
        assert "serve.ttft_ms" in rendered
        assert "== serving load sweep ==" in rendered
        assert "== serving tenants ==" in rendered

    def test_per_tenant_accept_len_and_report(
        self, untrained_engine, clean_telemetry, tmp_path
    ):
        """Accept-rate collapse under mixed traffic must be observable:
        per-round accept lengths land in per-tenant histograms and the
        tenant table grows accept columns."""
        tel = clean_telemetry
        out = tmp_path / "spec-serve.jsonl"
        tel.enable(out)
        config = _config(max_new_tokens=6)
        with InferenceServer(
            untrained_engine, config, max_batch=2,
            draft=_draft_for(untrained_engine), speculation_depth=4,
        ) as server:
            for p in PROMPTS[:2]:
                server.submit(p, tenant="alpha")
            for p in PROMPTS[2:4]:
                server.submit(p, tenant="beta")
        for tenant in ("alpha", "beta"):
            summary = tel.metrics.histogram(
                f"serve.tenant.{tenant}.spec_accept_len"
            ).summary()
            assert summary["count"] > 0
        tel.flush(command="test-spec-serve")
        rendered = render_report(read_run(out))
        assert "== serving tenants ==" in rendered
        assert "accept mean" in rendered


class TestLoadGenerator:
    def test_run_load_accounting(self, untrained_engine):
        config = _config(max_new_tokens=4)
        specs = [PromptSpec("t", tuple(p), 4) for p in PROMPTS]
        with InferenceServer(untrained_engine, config, max_batch=4) as server:
            report = run_load(
                server, specs, offered_rps=300.0, duration_s=0.2, seed=7
            )
        assert report.submitted == report.completed + report.rejected
        assert report.tokens == 4 * report.completed
        assert report.throughput_tps > 0
        payload = report.to_dict()
        for key in ("offered_rps", "throughput_tps", "ttft_ms", "latency_ms"):
            assert key in payload
        assert payload["ttft_ms"]["p99"] >= payload["ttft_ms"]["p50"]

    def test_open_loop_sheds_under_overload(self, untrained_engine):
        """A tiny bounded queue under a flood must shed, not deadlock."""
        config = _config(max_new_tokens=8)
        specs = [PromptSpec("t", tuple(p), 8) for p in PROMPTS]
        server = InferenceServer(
            untrained_engine,
            config,
            max_batch=1,
            tenants=[TenantConfig("q", max_queue=2)],
        )
        with server:
            report = run_load(
                server,
                specs,
                offered_rps=500.0,
                duration_s=0.2,
                seed=11,
                tenant="q",
            )
        assert report.rejected > 0
        assert report.completed + report.rejected == report.submitted


class TestCampaignAsTenant:
    def _campaign(self, engine, tokenizer, world, **kw):
        task = TranslationTask(world)
        return FICampaign(
            engine=engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, 3),
            fault_model=kw.pop("fault_model", FaultModel.COMP_2BIT),
            seed=5,
            generation=GenerationConfig(
                max_new_tokens=task.max_new_tokens,
                eos_id=tokenizer.vocab.eos_id,
            ),
            **kw,
        )

    def test_served_baseline_identical(
        self, untrained_engine, tokenizer, world
    ):
        local = self._campaign(untrained_engine, tokenizer, world)
        expected = local.compute_baseline()
        served = self._campaign(untrained_engine, tokenizer, world)
        server = InferenceServer(
            untrained_engine, served.generation, max_batch=4
        ).start()
        try:
            served.attach_server(server, tenant="campaign")
            assert served.compute_baseline() == expected
            assert served._baseline_preds == local._baseline_preds
            stats = server.tenant_stats()["campaign"]
            assert stats["completed"] == 3
        finally:
            server.stop()

    def test_attach_validations(self, untrained_engine, tokenizer, world):
        campaign = self._campaign(untrained_engine, tokenizer, world)
        other = InferenceServer(untrained_engine, _config(eos_id=-1))
        with pytest.raises(ValueError, match="eos_id"):
            campaign.attach_server(other)
        other.stop()

    def test_worker_state_drops_server_handle(
        self, untrained_engine, tokenizer, world
    ):
        campaign = self._campaign(untrained_engine, tokenizer, world)
        server = InferenceServer(
            untrained_engine, campaign.generation
        ).start()
        try:
            campaign.attach_server(server)
            assert "_serve" not in campaign._worker_state()
            assert campaign._worker_state()["_serve_tenant"] == "campaign"
        finally:
            server.stop()

    def test_detached_server_falls_back_locally(
        self, untrained_engine, tokenizer, world
    ):
        campaign = self._campaign(untrained_engine, tokenizer, world)
        server = InferenceServer(untrained_engine, campaign.generation)
        # Never started: the serve route reports unavailable and the
        # baseline silently takes the local batched path.
        campaign.attach_server(server)
        reference = self._campaign(untrained_engine, tokenizer, world)
        assert campaign.compute_baseline() == reference.compute_baseline()

    def test_served_speculative_baseline(
        self, untrained_engine, tokenizer, world, clean_telemetry
    ):
        """A speculative campaign on a draft-matched server serves its
        baseline instead of falling back — the fix for the silent
        local-serial degradation."""
        draft = _draft_for(untrained_engine)
        local = self._campaign(
            untrained_engine, tokenizer, world,
            draft_model=draft, speculation_depth=3,
        )
        expected = local.compute_baseline()
        served = self._campaign(
            untrained_engine, tokenizer, world,
            draft_model=draft, speculation_depth=3,
        )
        server = InferenceServer(
            untrained_engine, served.generation, max_batch=4,
            draft=draft, speculation_depth=3,
        ).start()
        try:
            served.attach_server(server, tenant="campaign")
            tel = clean_telemetry
            tel.enable()
            assert served.compute_baseline() == expected
            snap = tel.metrics.snapshot()
            assert not any(
                key.startswith("serve.campaign_fallback.")
                for key in snap["counters"]
            )
            assert server.tenant_stats()["campaign"]["completed"] == 3
        finally:
            server.stop()

    def test_fallback_counter_on_speculation_unsupported(
        self, untrained_engine, tokenizer, world, clean_telemetry, tmp_path
    ):
        """A speculative campaign on a draft-less server falls back —
        and the degradation is now counted and rendered, not silent."""
        draft = _draft_for(untrained_engine)
        campaign = self._campaign(
            untrained_engine, tokenizer, world, draft_model=draft
        )
        server = InferenceServer(
            untrained_engine, campaign.generation, max_batch=4
        ).start()
        out = tmp_path / "fallback.jsonl"
        try:
            campaign.attach_server(server)
            tel = clean_telemetry
            tel.enable(out)
            reference = self._campaign(
                untrained_engine, tokenizer, world, draft_model=draft
            )
            assert campaign.compute_baseline() == reference.compute_baseline()
            fallback = tel.metrics.counter(
                "serve.campaign_fallback.speculation_unsupported"
            )
            assert fallback.value == 1
            tel.flush(command="test-fallback")
        finally:
            server.stop()
        rendered = render_report(read_run(out))
        assert "serving campaign fallbacks" in rendered
        assert "speculation_unsupported" in rendered
        server.stop()
