"""Shared fixtures: a tiny world/tokenizer and small trained models.

The trained model is session-scoped and deliberately tiny (a few
hundred training steps) — enough that generations are structured and
fault effects are measurable, while keeping the suite fast.  Tests of
pure mechanics (injection, propagation, decoding) use an *untrained*
model, which exercises identical code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.tasks import World, all_tasks
from repro.text.tokenizer import Tokenizer
from repro.training import (
    TrainConfig,
    build_mixed_corpus,
    build_tokenizer,
    corpus_to_stream,
    train_lm,
)


@pytest.fixture(scope="session")
def world() -> World:
    return World(seed=2025)


@pytest.fixture(scope="session")
def tokenizer(world: World) -> Tokenizer:
    return build_tokenizer(world)


def _tiny_config(tokenizer: Tokenizer, **overrides) -> ModelConfig:
    defaults = dict(
        vocab_size=len(tokenizer),
        d_model=32,
        n_heads=4,
        n_blocks=2,
        d_ff=48,
        max_seq=160,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


@pytest.fixture(scope="session")
def tiny_config(tokenizer: Tokenizer) -> ModelConfig:
    return _tiny_config(tokenizer)


@pytest.fixture(scope="session")
def untrained_store(tiny_config: ModelConfig):
    return TransformerLM(tiny_config, seed=5).to_store()


@pytest.fixture()
def untrained_engine(untrained_store) -> InferenceEngine:
    return InferenceEngine(untrained_store)


@pytest.fixture(scope="session")
def moe_store(tokenizer: Tokenizer):
    config = _tiny_config(tokenizer, d_ff=32, n_experts=4, top_k=2)
    return TransformerLM(config, seed=6).to_store()


@pytest.fixture()
def moe_engine(moe_store) -> InferenceEngine:
    return InferenceEngine(moe_store)


@pytest.fixture(scope="session")
def trained_store(world: World, tokenizer: Tokenizer):
    """A briefly trained tiny model shared by integration tests."""
    rng = np.random.default_rng(99)
    docs = build_mixed_corpus(all_tasks(world), rng, 2500)
    stream = corpus_to_stream(docs, tokenizer)
    model = TransformerLM(
        _tiny_config(tokenizer, d_model=48, n_blocks=3, d_ff=96), seed=7
    )
    train_lm(
        model,
        stream,
        TrainConfig(steps=320, batch_size=12, seq_len=56, seed=3, lr=4e-3),
    )
    return model.to_store()


@pytest.fixture()
def trained_engine(trained_store) -> InferenceEngine:
    return InferenceEngine(trained_store)
