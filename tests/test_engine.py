"""Tests for the fast inference engine: parity, caching, hooks, storage."""

import numpy as np
import pytest

from repro.inference import (
    CaptureState,
    FloatWeightStore,
    InferenceEngine,
    KVCache,
    QuantizedWeightStore,
    make_weight_store,
)
from repro.model import ModelConfig, TransformerLM

TOKENS = [1, 5, 7, 2, 9, 11, 3]


class TestParity:
    def test_matches_training_forward(self, untrained_store):
        engine = InferenceEngine(untrained_store)
        model = TransformerLM.from_store(untrained_store)
        expected, _ = model.forward(np.asarray([TOKENS]))
        actual = engine.forward_full(TOKENS)
        np.testing.assert_allclose(actual, expected.data[0], atol=1e-4)

    def test_incremental_matches_full(self, untrained_engine):
        session = untrained_engine.start_session(TOKENS[:3])
        incremental = [session.last_logits.copy()]
        for token in TOKENS[3:]:
            incremental.append(session.step(token).copy())
        full = untrained_engine.forward_full(TOKENS)
        for i, logits in enumerate(incremental):
            np.testing.assert_allclose(logits, full[2 + i], atol=1e-4)

    def test_moe_incremental_matches_full(self, moe_engine):
        session = moe_engine.start_session(TOKENS[:4])
        stepped = session.step(TOKENS[4])
        full = moe_engine.forward_full(TOKENS[:5])
        np.testing.assert_allclose(stepped, full[4], atol=1e-4)

    def test_moe_matches_training_forward(self, moe_store):
        engine = InferenceEngine(moe_store)
        model = TransformerLM.from_store(moe_store)
        expected, _ = model.forward(np.asarray([TOKENS]))
        np.testing.assert_allclose(
            engine.forward_full(TOKENS), expected.data[0], atol=1e-4
        )

    def test_session_fork_independent(self, untrained_engine):
        session = untrained_engine.start_session(TOKENS[:3])
        fork = session.fork()
        a = session.step(4)
        b = fork.step(8)
        assert not np.allclose(a, b)
        # Fork positions advanced independently.
        assert session.position == fork.position == 4


class TestKVCache:
    def test_append_and_views(self):
        cache = KVCache(2, 8, 4)
        cache.append(np.ones((2, 3, 4)), np.ones((2, 3, 4)))
        assert cache.length == 3
        assert cache.keys().shape == (2, 3, 4)

    def test_overflow_raises(self):
        cache = KVCache(1, 2, 4)
        with pytest.raises(ValueError):
            cache.append(np.ones((1, 3, 4)), np.ones((1, 3, 4)))

    def test_truncate_and_clone(self):
        cache = KVCache(1, 8, 2)
        cache.append(np.ones((1, 4, 2)), np.ones((1, 4, 2)))
        clone = cache.clone()
        cache.truncate(2)
        assert cache.length == 2 and clone.length == 4
        with pytest.raises(ValueError):
            cache.truncate(5)


class TestHooks:
    def test_hook_fires_and_modifies(self, untrained_engine):
        calls = []

        def hook(out, ctx):
            calls.append((ctx.block, ctx.layer, ctx.iteration))
            out[...] = 0.0
            return out

        remove = untrained_engine.hooks.register("blocks.0.up_proj", hook)
        baseline = untrained_engine.forward_full(TOKENS)
        remove()
        clean = untrained_engine.forward_full(TOKENS)
        assert calls == [(0, "up_proj", 0)]
        assert not np.allclose(baseline, clean)

    def test_hook_iteration_counter(self, untrained_engine):
        seen = []
        untrained_engine.hooks.register(
            "blocks.0.q_proj", lambda out, ctx: seen.append(ctx.iteration)
        )
        session = untrained_engine.start_session(TOKENS[:3])
        session.step(1)
        session.step(2)
        untrained_engine.hooks.clear()
        assert seen == [0, 1, 2]

    def test_capture_layers(self, untrained_engine):
        untrained_engine.capture = CaptureState()
        untrained_engine.forward_full(TOKENS)
        outputs = untrained_engine.capture.layer_outputs
        untrained_engine.capture = None
        assert "blocks.0.q_proj" in outputs
        assert "blocks.1.down_proj" in outputs
        assert outputs["blocks.0.q_proj"].shape == (len(TOKENS), 32)

    def test_moe_expert_selection_capture(self, moe_engine):
        moe_engine.capture = CaptureState()
        moe_engine.forward_full(TOKENS)
        selections = moe_engine.capture.expert_selections
        moe_engine.capture = None
        assert (0, 0) in selections
        top = selections[(0, 0)]
        assert top.shape == (len(TOKENS), 2)  # top-2 of 4 experts
        assert top.max() < 4


class TestStoragePolicies:
    def test_weight_store_lookup(self, untrained_engine):
        store = untrained_engine.weight_store("blocks.0.q_proj")
        assert store.shape == (32, 32)
        with pytest.raises(KeyError):
            untrained_engine.weight_store("embed")

    @pytest.mark.parametrize("policy", ["fp32", "fp16", "bf16", "int8", "int4"])
    def test_policies_build_and_run(self, untrained_store, policy):
        engine = InferenceEngine(untrained_store, weight_policy=policy)
        logits = engine.forward_full(TOKENS)
        assert np.isfinite(logits).all()

    def test_quantized_close_to_fp32(self, untrained_store):
        base = InferenceEngine(untrained_store).forward_full(TOKENS)
        q8 = InferenceEngine(untrained_store, weight_policy="int8").forward_full(
            TOKENS
        )
        q4 = InferenceEngine(untrained_store, weight_policy="int4").forward_full(
            TOKENS
        )
        err8 = np.abs(q8 - base).mean()
        err4 = np.abs(q4 - base).mean()
        assert err8 < err4  # 8-bit is a tighter approximation

    def test_float_store_flip_restore(self):
        w = np.random.default_rng(0).normal(size=(8, 4)).astype(np.float32)
        store = FloatWeightStore(w, "bf16")
        before = store.array.copy()
        token = store.flip_element_bits(2, 1, [14])
        assert store.array[2, 1] != before[2, 1]
        assert (store.array != before).sum() == 1  # exactly one element
        store.restore(token)
        np.testing.assert_array_equal(store.array, before)

    def test_quantized_store_flip_restore(self):
        w = np.random.default_rng(1).normal(size=(64, 4)).astype(np.float32)
        store = QuantizedWeightStore(w, nbits=4)
        before = store.array.copy()
        token = store.flip_element_bits(5, 2, [3])
        assert store.array[5, 2] != before[5, 2]
        store.restore(token)
        np.testing.assert_array_equal(store.array, before)

    def test_make_weight_store_rejects_unknown(self):
        with pytest.raises(KeyError):
            make_weight_store(np.zeros((2, 2), np.float32), "fp8")

    def test_activation_format_defaults(self, untrained_store):
        assert InferenceEngine(untrained_store, "bf16").activation_format == "bf16"
        assert InferenceEngine(untrained_store, "int4").activation_format == "fp32"
