"""Tests for BLEU, chrF++, ROUGE, EM/F1 and the task scorer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    bleu,
    chrf_pp,
    corpus_bleu,
    exact_match,
    lcs_length,
    normalize_answer,
    rouge_1,
    rouge_l,
    score_generative,
    token_f1,
)
from repro.tasks.base import GenExample

_WORDS = st.lists(
    st.sampled_from("the cat dog sees a red blue house tree".split()),
    min_size=1,
    max_size=12,
)


class TestBLEU:
    def test_perfect_match_is_100(self):
        toks = "the red cat sees the dog".split()
        assert bleu(toks, toks) == pytest.approx(100.0)

    def test_no_overlap_near_zero(self):
        assert bleu("a b c d e".split(), "v w x y z".split()) < 5.0

    def test_partial_order_sensitivity(self):
        ref = "the cat sees the dog".split()
        good = "the cat sees a dog".split()
        scrambled = "dog the sees cat the".split()
        assert bleu(good, ref) > bleu(scrambled, ref)

    def test_brevity_penalty(self):
        ref = "a b c d e f g h".split()
        assert bleu("a b".split(), ref) < bleu("a b c d e f".split(), ref)

    def test_corpus_validation(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a"]], [])
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_empty_hypothesis(self):
        assert corpus_bleu([[]], [["a", "b"]]) == 0.0


class TestChrF:
    def test_perfect_match(self):
        assert chrf_pp("the red cat", "the red cat") == pytest.approx(100.0)

    def test_partial_beats_none(self):
        ref = "the red cat sees"
        assert chrf_pp("the red cat", ref) > chrf_pp("zzz qqq", ref)

    def test_character_level_credit(self):
        # chrF gives partial credit for near-miss words; BLEU-4 gives ~0.
        ref = "translation"
        assert chrf_pp("translations", ref) > 50.0

    def test_empty_strings(self):
        assert chrf_pp("", "abc") == 0.0


class TestRouge:
    def test_lcs_known(self):
        assert lcs_length("a b c d".split(), "a c d".split()) == 3
        assert lcs_length([], ["a"]) == 0
        assert lcs_length("x y".split(), "a b".split()) == 0

    def test_rouge1_order_insensitive(self):
        ref = "alice visited paris".split()
        assert rouge_1("paris visited alice".split(), ref) == pytest.approx(100.0)

    def test_rougeL_order_sensitive(self):
        ref = "alice visited paris on monday".split()
        inorder = "alice visited paris".split()
        reversed_ = "paris visited alice".split()
        assert rouge_l(inorder, ref) > rouge_l(reversed_, ref)

    def test_empty(self):
        assert rouge_1([], ["a"]) == 0.0
        assert rouge_l(["a"], []) == 0.0


class TestSquadMetrics:
    def test_normalization(self):
        assert normalize_answer("The  Baker!") == "baker"

    def test_exact_match(self):
        assert exact_match("paris .", "Paris") == 1.0
        assert exact_match("london", "paris") == 0.0

    def test_f1_partial(self):
        score = token_f1("works as a baker", "baker")
        assert 0.0 < score < 100.0

    def test_f1_empty_both(self):
        assert token_f1("the", "a") == 100.0  # both normalize to empty


class TestScoreGenerative:
    def _examples(self):
        return [
            GenExample(prompt="p", reference="the answer is 7 .", meta={"final_answer": "7"}),
            GenExample(prompt="p", reference="the answer is 3 .", meta={"final_answer": "3"}),
        ]

    def test_accuracy_via_final_answer(self):
        scores = score_generative(
            ("accuracy",),
            ["so the answer is 7 .", "the answer is 9 ."],
            self._examples(),
        )
        assert scores["accuracy"] == pytest.approx(50.0)

    def test_text_metrics(self):
        examples = [GenExample(prompt="p", reference="alice visited paris .")]
        scores = score_generative(
            ("bleu", "chrf", "rouge1", "rougeL", "exact_match", "f1"),
            ["alice visited paris ."],
            examples,
        )
        for name, value in scores.items():
            assert value == pytest.approx(100.0), name

    def test_validation(self):
        with pytest.raises(ValueError):
            score_generative(("bleu",), ["a"], [])
        with pytest.raises(KeyError):
            score_generative(("nope",), ["a"], [GenExample("p", "a")])


@settings(max_examples=100, deadline=None)
@given(_WORDS, _WORDS)
def test_property_metric_bounds(hyp, ref):
    """All text metrics stay in [0, 100]."""
    for value in (
        bleu(hyp, ref),
        chrf_pp(" ".join(hyp), " ".join(ref)),
        rouge_1(hyp, ref),
        rouge_l(hyp, ref),
        token_f1(" ".join(hyp), " ".join(ref)),
    ):
        assert 0.0 <= value <= 100.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(_WORDS)
def test_property_identity_is_perfect(tokens):
    """Every metric scores an exact copy at 100."""
    text = " ".join(tokens)
    assert bleu(tokens, tokens) == pytest.approx(100.0)
    assert chrf_pp(text, text) == pytest.approx(100.0)
    assert rouge_l(tokens, tokens) == pytest.approx(100.0)
    assert exact_match(text, text) == 1.0


@settings(max_examples=60, deadline=None)
@given(_WORDS, _WORDS)
def test_property_lcs_bounds_and_symmetry(a, b):
    """LCS is symmetric and bounded by both lengths."""
    assert lcs_length(a, b) == lcs_length(b, a)
    assert lcs_length(a, b) <= min(len(a), len(b))
