"""Composed batched-speculative decoding.

:class:`BatchedSpeculativeDecoder` composes draft-and-verify with
continuous batching; this suite holds it to the contracts the
composition rests on:

* every (depth, batch width) combination is token-identical to the
  serial ``greedy_decode`` reference, including EOS landing mid-round
  and token budgets that end a stream inside a verify chunk;
* batch width 1 reduces exactly to :class:`SpeculativeDecoder`;
* the FI gate matrix routes correctly — observer hooks keep the
  composed path, row-scoped computational hooks and kv faults drop to
  plain batching, weight faults force the exact serial loop;
* pooled slots (target and draft side) are all free again after every
  call, and a decoder instance is reusable;
* telemetry carries the composed round metrics (spec_rounds,
  spec_accept_len, batch occupancy, span timing).
"""

import pytest

from repro.fi import FaultModel, FaultSite, KVFaultInjector
from repro.generation import (
    BatchedSpeculativeDecoder,
    GenerationConfig,
    SpeculativeDecoder,
    greedy_decode,
)
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import telemetry
from repro.obs.instrument import attach_layer_timing

PROMPTS = [
    [3, 5, 7], [11, 13, 17, 19, 4], [23, 29], [8, 15, 16, 42], [6], [31, 37],
]


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


@pytest.fixture(scope="module")
def draft_store(tokenizer):
    config = ModelConfig(
        vocab_size=len(tokenizer), d_model=16, n_heads=2, n_blocks=1,
        d_ff=24, max_seq=160,
    )
    return TransformerLM(config, seed=23).to_store()


@pytest.fixture()
def draft_engine(draft_store) -> InferenceEngine:
    return InferenceEngine(draft_store)


def _config(**kw):
    kw.setdefault("max_new_tokens", 10)
    kw.setdefault("eos_id", -1)
    return GenerationConfig(**kw)


def _serial(engine, prompts, config):
    return [greedy_decode(engine, p, config, strategy="serial") for p in prompts]


class TestComposedEquivalence:
    @pytest.mark.parametrize("depth", (1, 2, 4))
    @pytest.mark.parametrize("width", (1, 2, 3, 8))
    def test_depths_and_widths_match_serial(
        self, untrained_engine, draft_engine, depth, width
    ):
        config = _config()
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=depth, max_batch=width,
        )
        assert decoder.decode_many(PROMPTS) == _serial(
            untrained_engine, PROMPTS, config
        )

    def test_eos_mid_stream(self, untrained_engine, draft_engine):
        free = _serial(untrained_engine, PROMPTS, _config(max_new_tokens=12))
        eos = free[1][3]  # lands mid-round for at least one stream
        config = _config(max_new_tokens=12, eos_id=eos)
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=4, max_batch=3,
        )
        assert decoder.decode_many(PROMPTS) == _serial(
            untrained_engine, PROMPTS, config
        )

    @pytest.mark.parametrize("max_new", (1, 2, 3, 5))
    def test_token_budget_edges(
        self, untrained_engine, draft_engine, max_new
    ):
        config = _config(max_new_tokens=max_new)
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=4, max_batch=3,
        )
        assert decoder.decode_many(PROMPTS) == _serial(
            untrained_engine, PROMPTS, config
        )

    def test_width_one_reduces_to_speculative(
        self, untrained_engine, draft_engine
    ):
        config = _config()
        spec = SpeculativeDecoder(
            untrained_engine, draft_engine, config, speculation_depth=3
        )
        composed = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=3, max_batch=1,
        )
        for prompt in PROMPTS[:3]:
            assert composed.decode_many([prompt]) == [spec.decode_one(prompt)]

    def test_consumes_prefilled_sessions(
        self, untrained_engine, draft_engine
    ):
        config = _config()
        serial = _serial(untrained_engine, PROMPTS[:3], config)
        sessions = [
            untrained_engine.start_session(PROMPTS[0]),
            None,
            untrained_engine.start_session(PROMPTS[2]),
        ]
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=2, max_batch=2,
        )
        assert decoder.decode_many(PROMPTS[:3], sessions=sessions) == serial

    def test_empty_prompt_list(self, untrained_engine, draft_engine):
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, _config()
        )
        assert decoder.decode_many([]) == []

    def test_slot_hygiene_and_reuse(self, untrained_engine, draft_engine):
        config = _config()
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=4, max_batch=3,
        )
        first = decoder.decode_many(PROMPTS)
        for pool in (decoder._pool, decoder._draft_pool):
            assert pool.n_free == pool.n_slots
        # Same instance, same pools: the second pass must be identical.
        assert decoder.decode_many(PROMPTS) == first
        for pool in (decoder._pool, decoder._draft_pool):
            assert pool.n_free == pool.n_slots


class TestValidation:
    def test_depth_validated(self, untrained_engine, draft_engine):
        with pytest.raises(ValueError, match="speculation_depth"):
            BatchedSpeculativeDecoder(
                untrained_engine, draft_engine, _config(), speculation_depth=0
            )

    def test_max_batch_validated(self, untrained_engine, draft_engine):
        with pytest.raises(ValueError, match="max_batch"):
            BatchedSpeculativeDecoder(
                untrained_engine, draft_engine, _config(), max_batch=0
            )

    def test_vocab_mismatch_rejected(self, untrained_engine):
        other = InferenceEngine(
            TransformerLM(
                ModelConfig(
                    vocab_size=untrained_engine.config.vocab_size + 3,
                    d_model=16, n_heads=2, n_blocks=1, d_ff=24, max_seq=64,
                ),
                seed=1,
            ).to_store()
        )
        with pytest.raises(ValueError, match="vocabulary mismatch"):
            BatchedSpeculativeDecoder(untrained_engine, other, _config())

    def test_sessions_length_mismatch(self, untrained_engine, draft_engine):
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, _config()
        )
        with pytest.raises(ValueError, match="sessions"):
            decoder.decode_many(PROMPTS[:2], sessions=[None])


class TestGateMatrix:
    """decode_many picks the fastest path that preserves exact fault
    semantics; the composed round counter tells which leg actually ran."""

    def _decode(self, untrained_engine, draft_engine, tel):
        tel.reset()
        tel.enable()
        config = _config(max_new_tokens=8)
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, config,
            speculation_depth=4, max_batch=3,
        )
        out = decoder.decode_many(PROMPTS[:3])
        snap = tel.metrics.snapshot()
        tel.reset()
        tel.disable()
        return out, snap

    def test_observer_hooks_keep_composed(
        self, untrained_engine, draft_engine, clean_telemetry
    ):
        detach = attach_layer_timing(untrained_engine)
        try:
            out, snap = self._decode(
                untrained_engine, draft_engine, clean_telemetry
            )
        finally:
            detach()
        assert out == _serial(
            untrained_engine, PROMPTS[:3], _config(max_new_tokens=8)
        )
        assert snap["counters"].get("decode.spec_rounds", 0) > 0

    def test_row_scoped_hook_routes_batched(
        self, untrained_engine, draft_engine, clean_telemetry
    ):
        remove = untrained_engine.hooks.register(
            "blocks.0.up_proj", lambda out, ctx: None, row_scoped=True
        )
        try:
            out, snap = self._decode(
                untrained_engine, draft_engine, clean_telemetry
            )
        finally:
            remove()
        assert out == _serial(
            untrained_engine, PROMPTS[:3], _config(max_new_tokens=8)
        )
        # Batched leg: occupancy is observed, speculation never runs.
        assert snap["counters"].get("decode.spec_rounds", 0) == 0
        assert "decode.batch_occupancy" in snap["histograms"]

    def test_kv_fault_routes_batched(
        self, untrained_engine, draft_engine, clean_telemetry
    ):
        site = FaultSite(
            fault_model=FaultModel.KV_1BIT,
            layer_name="blocks.0.kv",
            row=1, col=2, bits=(30,), iteration=2, row_frac=0.5, plane="v",
        )
        with KVFaultInjector(untrained_engine, site):
            _, snap = self._decode(
                untrained_engine, draft_engine, clean_telemetry
            )
        assert snap["counters"].get("decode.spec_rounds", 0) == 0
        assert "decode.batch_occupancy" in snap["histograms"]

    def test_weight_fault_forces_serial(
        self, untrained_engine, draft_engine, clean_telemetry
    ):
        untrained_engine.weight_fault_depth = 1
        try:
            out, snap = self._decode(
                untrained_engine, draft_engine, clean_telemetry
            )
        finally:
            untrained_engine.weight_fault_depth = 0
        assert out == _serial(
            untrained_engine, PROMPTS[:3], _config(max_new_tokens=8)
        )
        assert snap["counters"].get("decode.spec_rounds", 0) == 0
        assert "decode.batch_occupancy" not in snap["histograms"]


class TestComposedTelemetry:
    def test_round_metrics_emitted(
        self, untrained_engine, draft_engine, clean_telemetry
    ):
        tel = clean_telemetry
        tel.enable()
        decoder = BatchedSpeculativeDecoder(
            untrained_engine, draft_engine, _config(),
            speculation_depth=4, max_batch=3,
        )
        decoder.decode_many(PROMPTS)
        snap = tel.metrics.snapshot()
        assert snap["counters"]["decode.spec_rounds"] > 0
        accept = tel.metrics.histogram("decode.spec_accept_len").summary()
        assert accept["count"] == snap["counters"]["decode.spec_rounds"]
        occupancy = tel.metrics.histogram("decode.batch_occupancy").summary()
        assert occupancy["count"] > 0 and occupancy["max"] <= 3
        assert tel.metrics.histogram("decode.spec_batch_ms").summary()["count"] == 1
        assert tel.metrics.gauge("decode.free_slots").value == 3
