"""Tests for deployment-level SDC rate projection."""

import math

import pytest

from repro.fi import FaultModel, FaultSite, Outcome
from repro.fi.campaign import CampaignResult, TrialRecord
from repro.fi.projection import HOURS_PER_FIT, project_sdc_rate


def _result(n_sdc: int, n_total: int) -> CampaignResult:
    trials = [
        TrialRecord(
            site=FaultSite(FaultModel.MEM_2BIT, "blocks.0.up_proj", 0, 0, bits=(14,)),
            example_index=0,
            prediction="x",
            outcome=Outcome.SDC_SUBTLE if i < n_sdc else Outcome.MASKED,
            metrics={},
        )
        for i in range(n_total)
    ]
    return CampaignResult(
        task_name="t", fault_model=FaultModel.MEM_2BIT, n_trials=n_total,
        baseline={}, faulty={}, normalized={}, trials=trials,
    )


class TestProjection:
    def test_basic_arithmetic(self):
        # 10% SDC prob, 1e-3 FIT/bit, 1e6 bits -> 1e3 FIT raw faults,
        # 100 FIT of SDCs.
        proj = project_sdc_rate(_result(10, 100), 1e-3, 1_000_000)
        assert proj.p_sdc_given_fault == pytest.approx(0.1)
        assert proj.sdc_fit == pytest.approx(100.0)
        assert proj.mtbf_hours == pytest.approx(HOURS_PER_FIT / 100.0)

    def test_zero_sdc_infinite_mtbf(self):
        proj = project_sdc_rate(_result(0, 50), 1e-3, 1000)
        assert proj.sdc_per_hour == 0.0
        assert math.isinf(proj.mtbf_hours)

    def test_interval_brackets_point(self):
        proj = project_sdc_rate(_result(20, 100), 1e-4, 10_000)
        low, high = proj.interval_fit()
        assert low < proj.sdc_fit < high

    def test_scales_linearly_with_bits(self):
        small = project_sdc_rate(_result(5, 50), 1e-3, 1000)
        large = project_sdc_rate(_result(5, 50), 1e-3, 2000)
        assert large.sdc_fit == pytest.approx(2 * small.sdc_fit)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_sdc_rate(_result(1, 10), -1.0, 100)
        with pytest.raises(ValueError):
            project_sdc_rate(_result(1, 10), 1.0, 0)
        empty = CampaignResult(
            "t", FaultModel.MEM_2BIT, 0, {}, {}, {}, trials=[]
        )
        with pytest.raises(ValueError):
            project_sdc_rate(empty, 1.0, 100)

    def test_end_to_end_with_live_campaign(self, untrained_engine, tokenizer, world):
        from repro.fi import FICampaign
        from repro.tasks import MMLUTask, standardized_subset

        task = MMLUTask(world)
        result = FICampaign(
            engine=untrained_engine,
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, 3),
            fault_model=FaultModel.MEM_2BIT,
            seed=4,
        ).run(15)
        n_bits = sum(
            untrained_engine.weight_store(n).array.size
            * untrained_engine.weight_store(n).n_storage_bits
            for n in untrained_engine.linear_layer_names()
        )
        proj = project_sdc_rate(result, bit_fit_rate=1e-4, n_weight_bits=n_bits)
        assert 0.0 <= proj.p_sdc_given_fault <= 1.0
        assert proj.sdc_fit >= 0.0
