"""Tests for the statistical fault-injection campaign runner."""

import numpy as np
import pytest

from repro.fi import FaultModel, FICampaign, Outcome
from repro.generation import GenerationConfig
from repro.tasks import GSM8kTask, MMLUTask, TranslationTask, standardized_subset


def _mc_campaign(engine, tokenizer, world, fault_model=FaultModel.MEM_2BIT, **kw):
    task = MMLUTask(world)
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 4),
        fault_model=fault_model,
        seed=5,
        **kw,
    )


def _gen_campaign(engine, tokenizer, world, task_cls=TranslationTask, **kw):
    task = task_cls(world)
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 3),
        fault_model=kw.pop("fault_model", FaultModel.COMP_2BIT),
        seed=5,
        generation=GenerationConfig(
            max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
        ),
        **kw,
    )


class TestMCCampaign:
    def test_runs_and_aggregates(self, untrained_engine, tokenizer, world):
        result = _mc_campaign(untrained_engine, tokenizer, world).run(10)
        assert result.n_trials == 10
        assert "accuracy" in result.baseline
        assert 0.0 <= result.sdc_rate <= 1.0
        assert len(result.trials) == 10

    def test_deterministic(self, untrained_engine, tokenizer, world):
        a = _mc_campaign(untrained_engine, tokenizer, world).run(8)
        b = _mc_campaign(untrained_engine, tokenizer, world).run(8)
        assert [t.site for t in a.trials] == [t.site for t in b.trials]
        assert [t.prediction for t in a.trials] == [t.prediction for t in b.trials]

    def test_engine_restored_after_run(self, untrained_engine, tokenizer, world):
        before = untrained_engine.weight_store("blocks.0.up_proj").array.copy()
        _mc_campaign(untrained_engine, tokenizer, world).run(6)
        np.testing.assert_array_equal(
            untrained_engine.weight_store("blocks.0.up_proj").array, before
        )
        assert len(untrained_engine.hooks) == 0

    def test_requires_examples(self, untrained_engine, tokenizer, world):
        task = MMLUTask(world)
        with pytest.raises(ValueError):
            FICampaign(
                engine=untrained_engine,
                tokenizer=tokenizer,
                task_name=task.name,
                metrics=task.metrics,
                examples=[],
                fault_model=FaultModel.MEM_2BIT,
            )


class TestGenerativeCampaign:
    def test_runs_with_metrics(self, untrained_engine, tokenizer, world):
        result = _gen_campaign(untrained_engine, tokenizer, world).run(6)
        assert set(result.baseline) == {"bleu", "chrf"}
        assert set(result.faulty) == {"bleu", "chrf"}
        for metric, ci in result.normalized.items():
            assert np.isnan(ci.ratio) or ci.ratio >= 0.0

    def test_outcome_classification_populated(
        self, untrained_engine, tokenizer, world
    ):
        result = _gen_campaign(untrained_engine, tokenizer, world).run(6)
        assert all(isinstance(t.outcome, Outcome) for t in result.trials)
        breakdown = result.sdc_breakdown()
        assert 0.0 <= breakdown["subtle"] + breakdown["distorted"] <= 1.0

    def test_bit_grouping(self, untrained_engine, tokenizer, world):
        result = _gen_campaign(untrained_engine, tokenizer, world).run(12)
        table = result.outcomes_by_highest_bit()
        assert sum(sum(v.values()) for v in table.values()) == 12
        for bit in table:
            assert 0 <= bit < 32

    def test_gsm8k_uses_direct_answer_classification(
        self, trained_engine, tokenizer, world
    ):
        result = _gen_campaign(
            trained_engine,
            tokenizer,
            world,
            task_cls=GSM8kTask,
            fault_model=FaultModel.MEM_2BIT,
        ).run(6)
        assert "accuracy" in result.baseline

    def test_max_fault_iterations_cap(self, untrained_engine, tokenizer, world):
        campaign = _gen_campaign(
            untrained_engine, tokenizer, world, max_fault_iterations=2
        )
        result = campaign.run(12)
        assert all(t.site.iteration < 2 for t in result.trials)

    def test_selection_tracking_moe(self, moe_engine, tokenizer, world):
        campaign = _gen_campaign(
            moe_engine,
            tokenizer,
            world,
            fault_model=FaultModel.MEM_2BIT,
            track_expert_selection=True,
        )
        result = campaign.run(5)
        assert all(t.selection_changed in (True, False) for t in result.trials)


class TestParallel:
    def test_parallel_matches_serial(self, untrained_store, tokenizer, world):
        """Process-pool execution returns bit-identical trials."""
        from repro.inference import InferenceEngine

        serial = _mc_campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(6, n_workers=0)
        parallel = _mc_campaign(
            InferenceEngine(untrained_store), tokenizer, world
        ).run(6, n_workers=2)
        assert [t.site for t in serial.trials] == [t.site for t in parallel.trials]
        assert [t.prediction for t in serial.trials] == [
            t.prediction for t in parallel.trials
        ]
