"""Speculative decoding: correctness, FI-safety gate, campaign equivalence.

The speculative decoder's contract is absolute: greedy output is
token-identical to the serial reference loop for any draft and any
depth, and a campaign with a draft model produces bit-identical
``TrialRecord``s (the gate forces injected trials onto the exact
serial path; speculation only ever accelerates fault-free work).
"""

import numpy as np
import pytest

from repro.fi import (
    ComputationalFaultInjector,
    FaultModel,
    FICampaign,
    assert_results_equal,
)
from repro.fi.sites import FaultSite
from repro.generation import (
    GenerationConfig,
    SpeculativeDecoder,
    decode_speculation_safe,
    generate_ids,
    greedy_decode,
)
from repro.generation.decode import _resolve_decode_strategy
from repro.inference import InferenceEngine
from repro.inference.engine import CaptureState
from repro.model import ModelConfig, TransformerLM
from repro.obs import telemetry
from repro.tasks import TranslationTask, standardized_subset
from repro.zoo import ZOO, draft_for


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry()
    tel.reset()
    tel.disable()
    yield tel
    tel.reset()
    tel.disable()


@pytest.fixture(scope="module")
def draft_store(tokenizer):
    """A draft smaller than ``untrained_store`` with different weights."""
    config = ModelConfig(
        vocab_size=len(tokenizer), d_model=16, n_heads=2, n_blocks=1,
        d_ff=24, max_seq=160,
    )
    return TransformerLM(config, seed=23).to_store()


@pytest.fixture()
def draft_engine(draft_store) -> InferenceEngine:
    return InferenceEngine(draft_store)


def _prompts(n=6, lo=2, hi=12, seed=77, vocab=40):
    rng = np.random.default_rng(seed)
    return [
        [int(t) for t in rng.integers(3, vocab, size=int(rng.integers(lo, hi)))]
        for _ in range(n)
    ]


class TestGreedyBitIdentity:
    """Speculative greedy output == serial greedy output, always."""

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_depths_match_serial(self, untrained_engine, draft_engine, depth):
        config = GenerationConfig(max_new_tokens=24)
        for prompt in _prompts():
            serial = greedy_decode(
                untrained_engine, prompt, config, strategy="serial"
            )
            spec = SpeculativeDecoder(
                untrained_engine, draft_engine, config, speculation_depth=depth
            ).decode_one(prompt)
            assert spec == serial

    def test_self_draft_full_acceptance(self, untrained_engine, untrained_store):
        """Draft == target: every proposal accepted, bonus-token path."""
        config = GenerationConfig(max_new_tokens=16)
        twin = InferenceEngine(untrained_store)
        tel = telemetry()
        tel.enable()
        decoder = SpeculativeDecoder(
            untrained_engine, twin, config, speculation_depth=4
        )
        for prompt in _prompts(n=3):
            serial = greedy_decode(
                untrained_engine, prompt, config, strategy="serial"
            )
            assert decoder.decode_one(prompt) == serial
        rejected = tel.metrics.snapshot()["counters"].get(
            "decode.spec_rejected", 0.0
        )
        assert rejected == 0.0

    @pytest.mark.parametrize("max_new", [1, 2, 3, 5])
    def test_token_budget_edges(self, untrained_engine, draft_engine, max_new):
        config = GenerationConfig(max_new_tokens=max_new)
        decoder = SpeculativeDecoder(
            untrained_engine, draft_engine, config, speculation_depth=4
        )
        for prompt in _prompts(n=4):
            serial = greedy_decode(
                untrained_engine, prompt, config, strategy="serial"
            )
            assert decoder.decode_one(prompt) == serial
            assert len(serial) <= max_new

    def test_eos_handling(self, untrained_engine, draft_engine):
        """EOS anywhere in a verify chunk stops without emitting it."""
        # Sweep eos over the most frequent argmax tokens so some decode
        # actually hits it mid-chunk.
        config0 = GenerationConfig(max_new_tokens=24)
        prompts = _prompts(n=4)
        seen = [
            t
            for p in prompts
            for t in greedy_decode(untrained_engine, p, config0, strategy="serial")
        ]
        assert seen, "untrained decode emitted nothing"
        hit_early_stop = False
        for eos in set(seen):
            config = GenerationConfig(max_new_tokens=24, eos_id=eos)
            decoder = SpeculativeDecoder(
                untrained_engine, draft_engine, config, speculation_depth=3
            )
            for prompt in prompts:
                serial = greedy_decode(
                    untrained_engine, prompt, config, strategy="serial"
                )
                assert decoder.decode_one(prompt) == serial
                hit_early_stop |= len(serial) < 24
        assert hit_early_stop

    def test_consumes_prefilled_session(self, untrained_engine, draft_engine):
        config = GenerationConfig(max_new_tokens=12)
        prompt = _prompts(n=1)[0]
        serial = greedy_decode(untrained_engine, prompt, config, strategy="serial")
        session = untrained_engine.start_session(prompt)
        spec = SpeculativeDecoder(
            untrained_engine, draft_engine, config, speculation_depth=2
        ).decode_one(prompt, session=session)
        assert spec == serial


class TestConstructionAndGate:
    def test_vocab_mismatch_rejected(self, untrained_engine):
        other = InferenceEngine(
            TransformerLM(
                ModelConfig(
                    vocab_size=untrained_engine.config.vocab_size + 3,
                    d_model=16, n_heads=2, n_blocks=1, d_ff=24, max_seq=64,
                ),
                seed=1,
            ).to_store()
        )
        with pytest.raises(ValueError, match="vocabulary mismatch"):
            SpeculativeDecoder(
                untrained_engine, other, GenerationConfig(max_new_tokens=4)
            )

    def test_depth_validated(self, untrained_engine, draft_engine):
        with pytest.raises(ValueError, match="speculation_depth"):
            SpeculativeDecoder(
                untrained_engine, draft_engine,
                GenerationConfig(max_new_tokens=4), speculation_depth=0,
            )

    def test_gate_rejects_armed_machinery(self, untrained_engine, draft_engine):
        assert decode_speculation_safe(untrained_engine, draft_engine)
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 1,
            bits=(3, 17), iteration=2,
        )
        with ComputationalFaultInjector(untrained_engine, site):
            # Row-scoped hooks keep *batching* safe but must still
            # force speculation serial: the iteration<->forward mapping
            # changes under draft-and-verify.
            assert not decode_speculation_safe(untrained_engine, draft_engine)
        assert decode_speculation_safe(untrained_engine, draft_engine)
        untrained_engine.capture = CaptureState()
        assert not decode_speculation_safe(untrained_engine, draft_engine)
        untrained_engine.capture = None
        draft_engine.weight_fault_depth = 1
        assert not decode_speculation_safe(untrained_engine, draft_engine)
        draft_engine.weight_fault_depth = 0

    def test_gate_admits_pure_observer_hooks(
        self, untrained_engine, draft_engine
    ):
        """Layer-timing probes (observer=True) must not kill speculation.

        Campaign.run attaches timing hooks to the target whenever
        telemetry is active; the fault-free baseline sweep runs with
        them armed, so an observer-blind gate would silently fall back
        to serial on every traced run.
        """
        from repro.obs.instrument import attach_layer_timing

        detach = attach_layer_timing(untrained_engine)
        try:
            assert untrained_engine.fi_active()  # hooks are registered...
            assert untrained_engine.hooks.all_observers()
            assert decode_speculation_safe(untrained_engine, draft_engine)
            # ...but mixing in one perturbing hook closes the gate.
            remove = untrained_engine.hooks.register(
                "blocks.0.up_proj", lambda out, ctx: None, row_scoped=True
            )
            assert not decode_speculation_safe(untrained_engine, draft_engine)
            remove()
            assert decode_speculation_safe(untrained_engine, draft_engine)
        finally:
            detach()

    def test_decode_one_falls_back_serial_under_faults(
        self, untrained_engine, draft_engine
    ):
        """With a fault armed, decode_one IS the serial reference path."""
        config = GenerationConfig(max_new_tokens=8)
        prompt = _prompts(n=1)[0]
        site = FaultSite(
            FaultModel.COMP_2BIT, "blocks.0.up_proj", 0, 1,
            bits=(3, 17), iteration=1,
        )
        with ComputationalFaultInjector(untrained_engine, site):
            injected_serial = greedy_decode(
                untrained_engine, prompt, config, strategy="serial"
            )
        with ComputationalFaultInjector(untrained_engine, site):
            injected_spec = SpeculativeDecoder(
                untrained_engine, draft_engine, config, speculation_depth=4
            ).decode_one(prompt)
        assert injected_spec == injected_serial

    def test_strategy_resolution(self, untrained_engine, draft_engine):
        assert (
            _resolve_decode_strategy(
                untrained_engine, "auto", draft=draft_engine
            )
            == "speculative"
        )
        assert _resolve_decode_strategy(untrained_engine, "auto") == "batched"
        untrained_engine.weight_fault_depth = 1
        assert (
            _resolve_decode_strategy(
                untrained_engine, "auto", draft=draft_engine
            )
            == "serial"
        )
        untrained_engine.weight_fault_depth = 0
        with pytest.raises(ValueError, match="requires a draft"):
            _resolve_decode_strategy(untrained_engine, "speculative")

    def test_generate_ids_routes_draft(self, untrained_engine, draft_engine):
        config = GenerationConfig(max_new_tokens=10)
        prompt = _prompts(n=1)[0]
        serial = generate_ids(
            untrained_engine, prompt, config, strategy="serial"
        )
        spec = generate_ids(
            untrained_engine, prompt, config, draft=draft_engine,
            speculation_depth=3,
        )
        explicit = generate_ids(
            untrained_engine, prompt, config, strategy="speculative",
            draft=draft_engine, speculation_depth=3,
        )
        assert spec == serial
        assert explicit == serial


class TestTelemetry:
    def test_accept_metrics_emitted(self, untrained_engine, draft_engine):
        tel = telemetry()
        tel.enable()
        config = GenerationConfig(max_new_tokens=20)
        decoder = SpeculativeDecoder(
            untrained_engine, draft_engine, config, speculation_depth=4
        )
        for prompt in _prompts(n=3):
            decoder.decode_one(prompt)
        snap = tel.metrics.snapshot()
        assert snap["counters"]["decode.spec_rounds"] >= 3
        accept_lens = snap["histograms"]["decode.spec_accept_len"]
        assert len(accept_lens) == snap["counters"]["decode.spec_rounds"]
        assert all(0 <= a <= 4 for a in accept_lens)
        assert "decode.spec_rejected" in snap["counters"]
        spans = [s.name for s in tel.tracer.records]
        assert "decode.speculate" in spans

    def test_traced_campaign_emits_accept_metrics(
        self, untrained_store, draft_store, tokenizer, world
    ):
        """campaign.run under tracing must still speculate its baseline.

        run() arms layer-timing hooks on the target before the
        fault-free sweep; they register observer=True so the gate stays
        open.  Regression: an observer-blind gate fell back to serial
        on every traced run, silently dropping both the speedup and the
        accept-rate telemetry.
        """
        tel = telemetry()
        tel.enable()
        _make_campaign(
            untrained_store, draft_store, tokenizer, world,
            FaultModel.MEM_2BIT, speculation_depth=4,
        ).run(4)
        snap = tel.metrics.snapshot()
        assert "decode.spec_accept_len" in snap["histograms"]
        assert snap["counters"]["decode.spec_rounds"] > 0


def _make_campaign(store, draft_store, tokenizer, world, fault_model, **kw):
    engine = InferenceEngine(store)
    task = TranslationTask(world)
    generation = GenerationConfig(
        max_new_tokens=task.max_new_tokens, eos_id=tokenizer.vocab.eos_id
    )
    draft = (
        InferenceEngine(draft_store) if draft_store is not None else None
    )
    return FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 3),
        fault_model=fault_model,
        seed=9,
        generation=generation,
        draft_model=draft,
        **kw,
    )


class TestCampaignEquivalence:
    """Speculative campaigns replay the serial reference bit-for-bit."""

    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_speculative_matches_reference(
        self, untrained_store, draft_store, tokenizer, world, fault_model
    ):
        speculative = _make_campaign(
            untrained_store, draft_store, tokenizer, world, fault_model,
            speculation_depth=4,
        ).run(8)
        reference = _make_campaign(
            untrained_store, None, tokenizer, world, fault_model,
            prefill_cache=False, mc_scoring="full", decode_strategy="serial",
        ).run(8)
        assert_results_equal(speculative, reference, "speculative", "reference")

    @pytest.mark.parametrize("fault_model", FaultModel.all())
    def test_pool_matches_serial(
        self, untrained_store, draft_store, tokenizer, world, fault_model
    ):
        pooled = _make_campaign(
            untrained_store, draft_store, tokenizer, world, fault_model,
            speculation_depth=2,
        ).run(6, n_workers=2)
        serial = _make_campaign(
            untrained_store, None, tokenizer, world, fault_model,
            prefill_cache=False, mc_scoring="full", decode_strategy="serial",
        ).run(6, n_workers=0)
        assert_results_equal(pooled, serial, "pooled", "serial")

    def test_campaign_vocab_mismatch_rejected(self, untrained_store, tokenizer, world):
        bad_draft = TransformerLM(
            ModelConfig(
                vocab_size=len(tokenizer) + 1, d_model=16, n_heads=2,
                n_blocks=1, d_ff=24, max_seq=64,
            ),
            seed=2,
        ).to_store()
        with pytest.raises(ValueError, match="vocabulary"):
            _make_campaign(
                untrained_store, bad_draft, tokenizer, world,
                FaultModel.COMP_2BIT,
            )

    def test_explicit_speculative_needs_draft(
        self, untrained_store, tokenizer, world
    ):
        with pytest.raises(ValueError, match="draft_model"):
            _make_campaign(
                untrained_store, None, tokenizer, world,
                FaultModel.COMP_2BIT, decode_strategy="speculative",
            )


class TestZooPairing:
    def test_draft_of_metadata(self):
        assert ZOO["qwenlike-tiny"].draft_of == "qwenlike-base"
        spec = draft_for("qwenlike-base")
        assert spec is not None and spec.name == "qwenlike-tiny"
        assert draft_for("llamalike-base") is None
        with pytest.raises(KeyError):
            draft_for("no-such-model")

    def test_draft_of_excluded_from_cache_hash(self):
        """Pairing metadata must not invalidate cached weights."""
        import dataclasses

        from repro.zoo.build import _spec_hash

        spec = ZOO["qwenlike-tiny"]
        unpaired = dataclasses.replace(spec, draft_of=None)
        assert _spec_hash(spec, 364) == _spec_hash(unpaired, 364)
