"""Edge-case tests across modules (inputs at the boundaries)."""

import numpy as np
import pytest

from repro.generation import GenerationConfig, greedy_decode, score_continuation
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.text import Tokenizer, Vocab


class TestSingleTokenPrompt:
    def test_prefill_one_token(self, untrained_engine):
        session = untrained_engine.start_session([5])
        assert session.last_logits.shape == (untrained_engine.config.vocab_size,)
        session.step(3)
        assert session.position == 2

    def test_empty_prompt_rejected(self, untrained_engine):
        with pytest.raises(ValueError):
            untrained_engine.start_session([])

    def test_greedy_from_single_token(self, untrained_engine):
        out = greedy_decode(
            untrained_engine, [7], GenerationConfig(max_new_tokens=3, eos_id=2)
        )
        assert len(out) <= 3


class TestSequenceLimits:
    def test_session_up_to_max_seq(self, tokenizer):
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=32, n_heads=4, n_blocks=1,
            d_ff=32, max_seq=8,
        )
        engine = InferenceEngine(TransformerLM(config, seed=0).to_store())
        session = engine.start_session([1, 2, 3, 4])
        for token in (5, 6, 7, 8):
            session.step(token)
        # Cache is now full; one more step must fail loudly, not corrupt.
        with pytest.raises(ValueError):
            session.step(9)

    def test_option_scoring_near_limit(self, untrained_engine):
        max_seq = untrained_engine.config.max_seq
        prompt = list(range(5, 5 + max_seq - 2))
        score = score_continuation(untrained_engine, prompt, [3, 4])
        assert np.isfinite(score)


class TestTokenizerEdges:
    def test_empty_string(self, tokenizer):
        assert tokenizer.encode("") == []
        assert tokenizer.decode([]) == ""

    def test_whitespace_only(self, tokenizer):
        assert tokenizer.encode("   \n\t ") == []

    def test_zero_token(self, tokenizer):
        assert tokenizer.tokenize("0 apples") == ["0", "apples"]

    def test_long_number(self, tokenizer):
        tokens = tokenizer.tokenize("123456789")
        assert tokens == list("123456789")

    def test_vocab_of_nothing(self):
        vocab = Vocab([])
        assert len(vocab) == 5  # just the specials
        tok = Tokenizer(vocab)
        assert tok.encode("anything") == [vocab.unk_id]


class TestModelEdges:
    def test_one_block_one_head(self, tokenizer):
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=16, n_heads=1, n_blocks=1,
            d_ff=16, max_seq=16,
        )
        model = TransformerLM(config, seed=0)
        logits, _ = model.forward(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, len(tokenizer))
        engine = InferenceEngine(model.to_store())
        np.testing.assert_allclose(
            engine.forward_full([1, 2, 3]), logits.data[0], atol=1e-4
        )

    def test_moe_top1(self, tokenizer):
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=16, n_heads=2, n_blocks=1,
            d_ff=16, max_seq=16, n_experts=2, top_k=1,
        )
        engine = InferenceEngine(TransformerLM(config, seed=1).to_store())
        logits = engine.forward_full([4, 5, 6])
        assert np.isfinite(logits).all()

    def test_moe_all_experts_active(self, tokenizer):
        """top_k == n_experts degenerates to a dense mixture."""
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=16, n_heads=2, n_blocks=1,
            d_ff=16, max_seq=16, n_experts=2, top_k=2,
        )
        engine = InferenceEngine(TransformerLM(config, seed=2).to_store())
        from repro.inference import CaptureState

        engine.capture = CaptureState()
        engine.forward_full([4, 5, 6])
        top = engine.capture.expert_selections[(0, 0)]
        engine.capture = None
        assert set(top.flatten()) == {0, 1}
