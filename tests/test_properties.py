"""Cross-module property tests on the inference substrate's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import FaultModel, FaultSite, inject, sample_site
from repro.generation import GenerationConfig, greedy_decode
from repro.inference import InferenceEngine, KVCache
from repro.inference.kvcache import PooledKVCache
from repro.model import ModelConfig, TransformerLM

VOCAB = 40


_PROP_ENGINE: InferenceEngine | None = None


def _prop_engine() -> InferenceEngine:
    """Module-cached engine (hypothesis forbids function-scoped fixtures)."""
    global _PROP_ENGINE
    if _PROP_ENGINE is None:
        config = ModelConfig(
            vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48,
            max_seq=64,
        )
        _PROP_ENGINE = InferenceEngine(TransformerLM(config, seed=13).to_store())
    return _PROP_ENGINE


@pytest.fixture()
def prop_engine() -> InferenceEngine:
    return _prop_engine()


_prompts = st.lists(
    st.integers(min_value=5, max_value=VOCAB - 1), min_size=1, max_size=12
)


@settings(max_examples=25, deadline=None)
@given(_prompts)
def test_property_incremental_equals_full(prompt):
    """KV-cached decoding matches the full recompute for any prompt."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    engine = InferenceEngine(TransformerLM(config, seed=13).to_store())
    session = engine.start_session(prompt)
    stepped = [session.last_logits.copy()]
    for token in [3, 7]:
        stepped.append(session.step(token).copy())
    full = engine.forward_full([*prompt, 3, 7])
    np.testing.assert_allclose(stepped[0], full[len(prompt) - 1], atol=2e-4)
    np.testing.assert_allclose(stepped[2], full[-1], atol=2e-4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_injection_always_restores(seed):
    """Any sampled fault, any model: post-run state is bit-identical."""
    prop_engine = _prop_engine()
    rng = np.random.default_rng(seed)
    fault_model = (FaultModel.MEM_2BIT, FaultModel.COMP_1BIT)[seed % 2]
    site = sample_site(prop_engine, fault_model, rng, max_iterations=4)
    pristine = {
        name: prop_engine.weight_store(name).array.copy()
        for name in ("blocks.0.q_proj", "blocks.1.down_proj", site.layer_name)
    }
    with inject(prop_engine, site):
        greedy_decode(prop_engine, [4, 9, 2, 17], GenerationConfig(
            max_new_tokens=4, eos_id=2,
        ))
    for name, expected in pristine.items():
        np.testing.assert_array_equal(
            prop_engine.weight_store(name).array, expected
        )
    assert len(prop_engine.hooks) == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_site_addresses_valid(seed):
    """Sampled sites always address real storage."""
    prop_engine = _prop_engine()
    rng = np.random.default_rng(seed)
    for fault_model in FaultModel.all():
        site = sample_site(prop_engine, fault_model, rng, max_iterations=8)
        store = prop_engine.weight_store(site.layer_name)
        assert 0 <= site.row < store.shape[0]
        assert 0 <= site.col < store.shape[1]
        assert 0.0 <= site.row_frac < 1.0
        assert all(0 <= b for b in site.bits)


@settings(max_examples=20, deadline=None)
@given(_prompts, st.integers(min_value=1, max_value=3))
def test_property_greedy_prefix_stability(prompt, n_tokens):
    """Greedy decoding of k tokens is a prefix of decoding k+1 tokens."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    engine = InferenceEngine(TransformerLM(config, seed=13).to_store())
    short = greedy_decode(
        engine, prompt, GenerationConfig(max_new_tokens=n_tokens, eos_id=2)
    )
    longer = greedy_decode(
        engine, prompt, GenerationConfig(max_new_tokens=n_tokens + 1, eos_id=2)
    )
    assert longer[: len(short)] == short


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["fp16", "bf16", "int8", "int4"]),
)
def test_property_storage_policies_preserve_argmax_mostly(seed, policy):
    """Lossy storage perturbs logits but keeps them finite and sane."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    store = TransformerLM(config, seed=13).to_store()
    engine = InferenceEngine(store, weight_policy=policy)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(5, VOCAB, size=6).tolist()
    logits = engine.forward_full(prompt)
    assert np.isfinite(logits).all()
    assert logits.shape == (6, VOCAB)


# ----------------------------------------------------------------------------
# KV-cache machinery invariants (the substrate under batching/prefill
# caching — a silent violation here corrupts campaigns undetectably).
# ----------------------------------------------------------------------------

_kv_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "truncate", "snapshot", "restore"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=24,
)


@settings(max_examples=40, deadline=None)
@given(_kv_ops, st.integers(min_value=0, max_value=2**31 - 1))
def test_property_kvcache_tracks_reference_model(ops, seed):
    """Any append/truncate/snapshot/restore interleaving matches a
    trivially correct concatenate-everything reference model."""
    rng = np.random.default_rng(seed)
    cache = KVCache(2, 16, 4)
    ref_k = np.zeros((2, 0, 4), dtype=np.float32)
    ref_v = np.zeros((2, 0, 4), dtype=np.float32)
    snap = snap_ref = None
    for op, arg in ops:
        if op == "append":
            t = arg % 4 + 1
            if cache.length + t > cache.max_seq:
                continue
            k = rng.normal(size=(2, t, 4)).astype(np.float32)
            v = rng.normal(size=(2, t, 4)).astype(np.float32)
            cache.append(k, v)
            ref_k = np.concatenate([ref_k, k], axis=1)
            ref_v = np.concatenate([ref_v, v], axis=1)
        elif op == "truncate":
            length = min(arg, cache.length)
            cache.truncate(length)
            ref_k, ref_v = ref_k[:, :length], ref_v[:, :length]
        elif op == "snapshot":
            snap = cache.snapshot()
            snap_ref = (ref_k.copy(), ref_v.copy())
        elif op == "restore" and snap is not None:
            cache.restore(snap)
            ref_k, ref_v = snap_ref[0].copy(), snap_ref[1].copy()
        assert cache.length == ref_k.shape[1]
        np.testing.assert_array_equal(cache.keys(), ref_k)
        np.testing.assert_array_equal(cache.values(), ref_v)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),  # chunk size (gamma+1)
            st.integers(min_value=0, max_value=5),  # accepted proposals
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_speculative_rollback_roundtrip(rounds, seed):
    """Multi-token append -> truncate -> re-append, the exact sequence
    speculative verification performs each round: the accepted prefix
    is byte-stable across any number of rounds, and rolled-back K/V
    never leak into later reads."""
    rng = np.random.default_rng(seed)
    cache = KVCache(2, 64, 4)
    ref_k = np.zeros((2, 0, 4), dtype=np.float32)
    ref_v = np.zeros((2, 0, 4), dtype=np.float32)
    for chunk_t, accepted in rounds:
        accepted = min(accepted, chunk_t - 1)
        if cache.length + chunk_t > cache.max_seq:
            break
        base = cache.length
        k = rng.normal(size=(2, chunk_t, 4)).astype(np.float32)
        v = rng.normal(size=(2, chunk_t, 4)).astype(np.float32)
        cache.append(k, v)  # verify chunk: pending token + proposals
        cache.truncate(base + 1 + accepted)  # reject the tail
        ref_k = np.concatenate([ref_k, k[:, : 1 + accepted]], axis=1)
        ref_v = np.concatenate([ref_v, v[:, : 1 + accepted]], axis=1)
        assert cache.length == ref_k.shape[1]
        np.testing.assert_array_equal(cache.keys(), ref_k)
        np.testing.assert_array_equal(cache.values(), ref_v)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=99), max_size=30),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_pool_conservation_and_isolation(script, seed):
    """Acquire/release in any order: slot accounting is conserved, a
    fresh slot is always empty, and no held slot's contents are ever
    disturbed by activity in other slots."""
    rng = np.random.default_rng(seed)
    n_slots = 3
    pool = PooledKVCache(
        n_layers=2, n_slots=n_slots, n_heads=2, max_seq=8, head_dim=4
    )
    held: dict[int, np.ndarray] = {}
    for cmd in script:
        if cmd % 2 == 0 and pool.n_free:
            slot = pool.acquire()
            assert slot not in held, "acquired a slot that is still held"
            views = pool.caches(slot)
            assert all(v.length == 0 for v in views)
            marker = rng.normal(size=(2, cmd % 4 + 1, 4)).astype(np.float32)
            for view in views:
                view.append(marker, -marker)
            held[slot] = marker
        elif cmd % 2 == 1 and held:
            slot = sorted(held)[cmd % len(held)]
            pool.release(slot)
            del held[slot]
        assert pool.n_free + len(held) == n_slots
        for slot, marker in held.items():
            for view in pool.caches(slot):
                np.testing.assert_array_equal(view.keys(), marker)
                np.testing.assert_array_equal(view.values(), -marker)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=6),
)
def test_property_pool_copy_slot_is_independent(seed, length):
    """``copy_slot`` duplicates exactly the filled prefix and leaves the
    two slots free of aliasing afterwards."""
    rng = np.random.default_rng(seed)
    pool = PooledKVCache(
        n_layers=2, n_slots=2, n_heads=2, max_seq=8, head_dim=4
    )
    src, dst = pool.acquire(), pool.acquire()
    payload = rng.normal(size=(2, length, 4)).astype(np.float32)
    for view in pool.caches(src):
        view.append(payload, -payload)
    pool.copy_slot(src, dst)
    for a, b in zip(pool.caches(src), pool.caches(dst)):
        assert b.length == a.length == length
        np.testing.assert_array_equal(b.keys(), a.keys())
        assert not np.shares_memory(a.k, b.k)
    # Diverge the copy: the source must not move.
    extra = rng.normal(size=(2, 1, 4)).astype(np.float32)
    for view in pool.caches(dst):
        view.append(extra, extra)
    for view in pool.caches(src):
        assert view.length == length
        np.testing.assert_array_equal(view.keys(), payload)


class TestFaultModelCoverage:
    """Statistical sanity of the uniform site sampler."""

    def test_bits_cover_full_width(self, prop_engine):
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(600):
            site = sample_site(prop_engine, FaultModel.MEM_2BIT, rng)
            seen.update(site.bits)
        assert seen == set(range(32))  # fp32 storage: all 32 positions

    def test_layer_types_roughly_uniform(self, prop_engine):
        from collections import Counter

        rng = np.random.default_rng(1)
        counts = Counter(
            sample_site(prop_engine, FaultModel.MEM_2BIT, rng).layer_type
            for _ in range(1400)
        )
        assert len(counts) == 7
        expected = 1400 / 7
        for layer, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, (layer, count)

    def test_iterations_roughly_uniform(self, prop_engine):
        from collections import Counter

        rng = np.random.default_rng(2)
        counts = Counter(
            sample_site(
                prop_engine, FaultModel.COMP_2BIT, rng, max_iterations=4
            ).iteration
            for _ in range(800)
        )
        assert set(counts) == {0, 1, 2, 3}
        for count in counts.values():
            assert 120 < count < 280
