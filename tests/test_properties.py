"""Cross-module property tests on the inference substrate's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import FaultModel, FaultSite, inject, sample_site
from repro.generation import GenerationConfig, greedy_decode
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM

VOCAB = 40


_PROP_ENGINE: InferenceEngine | None = None


def _prop_engine() -> InferenceEngine:
    """Module-cached engine (hypothesis forbids function-scoped fixtures)."""
    global _PROP_ENGINE
    if _PROP_ENGINE is None:
        config = ModelConfig(
            vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48,
            max_seq=64,
        )
        _PROP_ENGINE = InferenceEngine(TransformerLM(config, seed=13).to_store())
    return _PROP_ENGINE


@pytest.fixture()
def prop_engine() -> InferenceEngine:
    return _prop_engine()


_prompts = st.lists(
    st.integers(min_value=5, max_value=VOCAB - 1), min_size=1, max_size=12
)


@settings(max_examples=25, deadline=None)
@given(_prompts)
def test_property_incremental_equals_full(prompt):
    """KV-cached decoding matches the full recompute for any prompt."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    engine = InferenceEngine(TransformerLM(config, seed=13).to_store())
    session = engine.start_session(prompt)
    stepped = [session.last_logits.copy()]
    for token in [3, 7]:
        stepped.append(session.step(token).copy())
    full = engine.forward_full([*prompt, 3, 7])
    np.testing.assert_allclose(stepped[0], full[len(prompt) - 1], atol=2e-4)
    np.testing.assert_allclose(stepped[2], full[-1], atol=2e-4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_injection_always_restores(seed):
    """Any sampled fault, any model: post-run state is bit-identical."""
    prop_engine = _prop_engine()
    rng = np.random.default_rng(seed)
    fault_model = (FaultModel.MEM_2BIT, FaultModel.COMP_1BIT)[seed % 2]
    site = sample_site(prop_engine, fault_model, rng, max_iterations=4)
    pristine = {
        name: prop_engine.weight_store(name).array.copy()
        for name in ("blocks.0.q_proj", "blocks.1.down_proj", site.layer_name)
    }
    with inject(prop_engine, site):
        greedy_decode(prop_engine, [4, 9, 2, 17], GenerationConfig(
            max_new_tokens=4, eos_id=2,
        ))
    for name, expected in pristine.items():
        np.testing.assert_array_equal(
            prop_engine.weight_store(name).array, expected
        )
    assert len(prop_engine.hooks) == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_site_addresses_valid(seed):
    """Sampled sites always address real storage."""
    prop_engine = _prop_engine()
    rng = np.random.default_rng(seed)
    for fault_model in FaultModel.all():
        site = sample_site(prop_engine, fault_model, rng, max_iterations=8)
        store = prop_engine.weight_store(site.layer_name)
        assert 0 <= site.row < store.shape[0]
        assert 0 <= site.col < store.shape[1]
        assert 0.0 <= site.row_frac < 1.0
        assert all(0 <= b for b in site.bits)


@settings(max_examples=20, deadline=None)
@given(_prompts, st.integers(min_value=1, max_value=3))
def test_property_greedy_prefix_stability(prompt, n_tokens):
    """Greedy decoding of k tokens is a prefix of decoding k+1 tokens."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    engine = InferenceEngine(TransformerLM(config, seed=13).to_store())
    short = greedy_decode(
        engine, prompt, GenerationConfig(max_new_tokens=n_tokens, eos_id=2)
    )
    longer = greedy_decode(
        engine, prompt, GenerationConfig(max_new_tokens=n_tokens + 1, eos_id=2)
    )
    assert longer[: len(short)] == short


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["fp16", "bf16", "int8", "int4"]),
)
def test_property_storage_policies_preserve_argmax_mostly(seed, policy):
    """Lossy storage perturbs logits but keeps them finite and sane."""
    config = ModelConfig(
        vocab_size=VOCAB, d_model=32, n_heads=4, n_blocks=2, d_ff=48, max_seq=64
    )
    store = TransformerLM(config, seed=13).to_store()
    engine = InferenceEngine(store, weight_policy=policy)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(5, VOCAB, size=6).tolist()
    logits = engine.forward_full(prompt)
    assert np.isfinite(logits).all()
    assert logits.shape == (6, VOCAB)


class TestFaultModelCoverage:
    """Statistical sanity of the uniform site sampler."""

    def test_bits_cover_full_width(self, prop_engine):
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(600):
            site = sample_site(prop_engine, FaultModel.MEM_2BIT, rng)
            seen.update(site.bits)
        assert seen == set(range(32))  # fp32 storage: all 32 positions

    def test_layer_types_roughly_uniform(self, prop_engine):
        from collections import Counter

        rng = np.random.default_rng(1)
        counts = Counter(
            sample_site(prop_engine, FaultModel.MEM_2BIT, rng).layer_type
            for _ in range(1400)
        )
        assert len(counts) == 7
        expected = 1400 / 7
        for layer, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, (layer, count)

    def test_iterations_roughly_uniform(self, prop_engine):
        from collections import Counter

        rng = np.random.default_rng(2)
        counts = Counter(
            sample_site(
                prop_engine, FaultModel.COMP_2BIT, rng, max_iterations=4
            ).iteration
            for _ in range(800)
        )
        assert set(counts) == {0, 1, 2, 3}
        for count in counts.values():
            assert 120 < count < 280
