"""Tests for the fault-tolerance mechanisms (repro.mitigation)."""

import numpy as np
import pytest

from repro.fi import FaultModel, FaultSite, MemoryFaultInjector, inject
from repro.mitigation import (
    LogitAnomalyDetector,
    RangeRestrictor,
    SelectiveProtection,
    WeightGuard,
    output_structure_flags,
    router_layers,
)

PROMPT = [3, 17, 8, 25, 4, 11, 30, 2]


def _big_mem_site(layer="blocks.0.up_proj"):
    # Flip the two top exponent bits of an fp32 weight: guaranteed blowup.
    return FaultSite(FaultModel.MEM_2BIT, layer, 4, 6, bits=(30, 29))


class TestRangeRestrictor:
    def _calibrated(self, engine):
        guard = RangeRestrictor(margin=0.1)
        guard.calibrate(engine, [PROMPT, PROMPT[:5]])
        return guard

    def test_requires_calibration(self, untrained_engine):
        with pytest.raises(RuntimeError):
            RangeRestrictor().install(untrained_engine)
        with pytest.raises(ValueError):
            RangeRestrictor().calibrate(untrained_engine, [])

    def test_no_clipping_on_clean_inputs(self, untrained_engine):
        guard = self._calibrated(untrained_engine)
        guard.install(untrained_engine)
        try:
            untrained_engine.forward_full(PROMPT)
        finally:
            guard.uninstall()
        assert guard.clip_events == 0

    def test_contains_memory_fault_blowup(self, untrained_engine):
        baseline = untrained_engine.forward_full(PROMPT)
        site = _big_mem_site()
        with MemoryFaultInjector(untrained_engine, site):
            unprotected = untrained_engine.forward_full(PROMPT)
        guard = self._calibrated(untrained_engine)
        guard.install(untrained_engine)
        try:
            with MemoryFaultInjector(untrained_engine, site):
                protected = untrained_engine.forward_full(PROMPT)
        finally:
            guard.uninstall()
        assert guard.clip_events > 0
        err_unprotected = np.abs(np.nan_to_num(unprotected) - baseline).max()
        err_protected = np.abs(np.nan_to_num(protected) - baseline).max()
        assert err_protected < err_unprotected

    def test_uninstall_removes_hooks(self, untrained_engine):
        guard = self._calibrated(untrained_engine)
        guard.install(untrained_engine)
        assert guard.installed
        guard.uninstall()
        assert not guard.installed
        assert len(untrained_engine.hooks) == 0

    def test_double_install_rejected(self, untrained_engine):
        guard = self._calibrated(untrained_engine)
        guard.install(untrained_engine)
        try:
            with pytest.raises(RuntimeError):
                guard.install(untrained_engine)
        finally:
            guard.uninstall()


class TestWeightGuard:
    def test_clean_model_scans_clean(self, untrained_engine):
        guard = WeightGuard()
        guard.profile(untrained_engine)
        assert guard.scan(untrained_engine) == []

    def test_detects_and_scrubs_blowup(self, untrained_engine):
        guard = WeightGuard(headroom=4.0)
        guard.profile(untrained_engine)
        site = _big_mem_site()
        store = untrained_engine.weight_store(site.layer_name)
        with inject(untrained_engine, site):
            found = guard.scan(untrained_engine)
            assert len(found) == 1
            anomaly = found[0]
            assert (anomaly.layer_name, anomaly.row, anomaly.col) == (
                site.layer_name, site.row, site.col,
            )
            repaired = guard.scrub(untrained_engine)
            assert len(repaired) == 1
            assert store.array[site.row, site.col] == 0.0
            assert guard.scan(untrained_engine) == []

    def test_small_flip_not_flagged(self, untrained_engine):
        """Mantissa flips stay in-envelope — detection targets blowups."""
        guard = WeightGuard()
        guard.profile(untrained_engine)
        site = FaultSite(
            FaultModel.MEM_2BIT, "blocks.0.up_proj", 4, 6, bits=(0, 1)
        )
        with inject(untrained_engine, site):
            assert guard.scan(untrained_engine) == []

    def test_scan_requires_profile(self, untrained_engine):
        with pytest.raises(RuntimeError):
            WeightGuard().scan(untrained_engine)


class TestSelectiveProtection:
    def test_router_layer_discovery(self, moe_engine, untrained_engine):
        assert len(router_layers(moe_engine)) == moe_engine.config.n_blocks
        assert router_layers(untrained_engine) == []

    def test_restores_corrupted_router(self, moe_engine):
        protection = SelectiveProtection(moe_engine, router_layers(moe_engine))
        layer = router_layers(moe_engine)[0]
        store = moe_engine.weight_store(layer)
        pristine = store.array.copy()
        store.flip_element_bits(0, 1, [30])
        fixed = protection.verify_and_restore()
        assert fixed == 1
        np.testing.assert_array_equal(store.array, pristine)
        # Second pass: nothing left to fix.
        assert protection.verify_and_restore() == 0
        assert protection.corrections == 1

    def test_overhead_accounting(self, moe_engine):
        protection = SelectiveProtection(moe_engine, router_layers(moe_engine))
        expected = sum(
            moe_engine.weight_store(n).array.nbytes
            for n in router_layers(moe_engine)
        )
        assert protection.overhead_bytes == expected

    def test_guarded_callable(self, moe_engine):
        protection = SelectiveProtection(moe_engine, router_layers(moe_engine))
        assert protection.guarded(lambda: 42) == 42

    def test_requires_layers(self, untrained_engine):
        with pytest.raises(ValueError):
            SelectiveProtection(untrained_engine, [])


class TestDetectors:
    def test_clean_logits_pass(self):
        detector = LogitAnomalyDetector()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert not detector.check(rng.normal(0, 3, size=100).astype(np.float32))
        assert not detector.triggered

    def test_nan_flagged(self):
        detector = LogitAnomalyDetector()
        logits = np.zeros(50, np.float32)
        logits[3] = np.nan
        assert detector.check(logits)
        assert detector.reasons == ["non-finite"]

    def test_uniform_entropy_flagged(self):
        detector = LogitAnomalyDetector()
        assert detector.check(np.zeros(1000, np.float32))  # exactly uniform
        assert detector.reasons == ["entropy"]

    def test_reset(self):
        detector = LogitAnomalyDetector()
        detector.check(np.full(10, np.inf, np.float32))
        detector.reset()
        assert not detector.triggered and detector.total_steps == 0

    def test_structure_flags(self):
        assert output_structure_flags("<pad> <pad> <pad> <pad>")
        assert not output_structure_flags("the answer is 7 .")
