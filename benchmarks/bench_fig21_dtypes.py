"""Figure 21: FP16 vs FP32 vs BF16 storage-format resilience."""

import dataclasses
import os

import numpy as np

from repro.harness.experiments import fig21_dtypes


def test_bench_fig21(benchmark, ctx, emit):
    # Resolving the FP16 < FP32 < BF16 vulnerability ordering needs a
    # larger sample than the per-cell default.
    boosted = dataclasses.replace(
        ctx, n_trials=int(os.environ.get("REPRO_BENCH_BIT_TRIALS", 90))
    )
    result = benchmark.pedantic(
        fig21_dtypes, args=(boosted,), rounds=1, iterations=1
    )
    emit(result)

    def mean_norm(dtype: str) -> float:
        vals = [
            r["normalized"]
            for r in result.rows
            if r["dtype"] == dtype and np.isfinite(r["normalized"])
        ]
        return float(np.mean(vals))

    # Observation #11: the format with the smallest representable range
    # (FP16, 5 exponent bits) is most resilient; BF16 least.
    assert mean_norm("FP16") >= mean_norm("BF16") - 0.02
