"""Figure 8: SDC breakdown (subtle vs distorted) on GSM8k."""

import dataclasses
import os

import numpy as np

from repro.harness.experiments import fig08_sdc_breakdown


def test_bench_fig08(benchmark, ctx, emit):
    # Breakdown rates need more trials than the default cell budget.
    boosted = dataclasses.replace(
        ctx, n_trials=int(os.environ.get("REPRO_BENCH_BIT_TRIALS", 90))
    )
    result = benchmark.pedantic(
        fig08_sdc_breakdown, args=(boosted,), rounds=1, iterations=1
    )
    emit(result)
    mem = [r for r in result.rows if r["fault"] == "2bits-mem"]
    comp = [r for r in result.rows if r["fault"] != "2bits-mem"]
    # Paper: distorted outputs are driven by memory faults (13.28% vs
    # 0.89-1.21%); computational faults almost never distort.  Allow one
    # trial of noise at bench scale.
    noise = 1.0 / boosted.n_trials
    assert np.mean([r["distorted"] for r in mem]) >= np.mean(
        [r["distorted"] for r in comp]
    ) - noise
