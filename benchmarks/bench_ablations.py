"""Ablation benches for the design decisions called out in DESIGN.md §5.

1. activation-format — computational faults corrupt activations in the
   engine's activation format; flipping the format must reproduce the
   FP16 < FP32 < BF16 vulnerability ordering independently of weight
   storage (validates the storage-vs-compute split, decision #2).
2. router top-k — top-1 routing exposes every affected token to a
   single (possibly faulty) expert; top-2 dilutes it (decision #4).
3. beam length normalization — the length penalty is part of why beam
   search can abandon a corrupted path (decision #3).
4. statistical-FI sample count — CI width must shrink ~1/sqrt(n),
   justifying the campaign sizes (decision #5).
"""

import dataclasses

import numpy as np

from repro.fi import FaultModel, FICampaign
from repro.harness.results import ExperimentResult
from repro.inference import InferenceEngine
from repro.model import ParamStore
from repro.tasks import standardized_subset
from repro.zoo import load_model


def _campaign(ctx, engine, task_name, fault_model, num_beams=1, seed=None):
    task = ctx.task(task_name)
    return FICampaign(
        engine=engine,
        tokenizer=ctx.tokenizer,
        task_name=task_name,
        metrics=task.metrics,
        examples=standardized_subset(task, ctx.n_examples),
        fault_model=fault_model,
        seed=ctx.seed if seed is None else seed,
        generation=ctx.generation(task, num_beams),
    )


def test_bench_ablation_activation_format(benchmark, ctx, emit):
    store = load_model("qwenlike-base", verbose=False)

    def run():
        result = ExperimentResult(
            "ablation-activation-format",
            "Computational-fault resilience vs activation storage format",
        )
        for fmt in ("fp16", "fp32", "bf16"):
            engine = InferenceEngine(store, weight_policy="fp32")
            engine.activation_format = fmt
            cell = _campaign(ctx, engine, "wmt16", FaultModel.COMP_2BIT).run(
                ctx.n_trials
            )
            result.add(
                activation_format=fmt.upper(),
                normalized=cell.normalized["bleu"].ratio,
                sdc_rate=cell.sdc_rate,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    by_fmt = {r["activation_format"]: r["normalized"] for r in result.rows}
    assert by_fmt["FP16"] >= by_fmt["BF16"] - 0.05


def test_bench_ablation_router_topk(benchmark, ctx, emit):
    base = load_model("moelike-base", verbose=False)

    def run():
        result = ExperimentResult(
            "ablation-router-topk",
            "MoE resilience vs routing top-k (2bits-mem, translation)",
        )
        for top_k in (1, 2):
            config = dataclasses.replace(base.config, top_k=top_k)
            store = ParamStore(config, dict(base.items()))
            engine = InferenceEngine(store)
            cell = _campaign(ctx, engine, "wmt16", FaultModel.MEM_2BIT).run(
                ctx.n_trials
            )
            result.add(
                top_k=top_k,
                baseline_bleu=cell.baseline["bleu"],
                normalized=cell.normalized["bleu"].ratio,
                sdc_rate=cell.sdc_rate,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 2


def test_bench_ablation_beam_length_penalty(benchmark, ctx, emit):
    store = load_model("alma-base", verbose=False)

    def run():
        import dataclasses as dc

        result = ExperimentResult(
            "ablation-beam-length-penalty",
            "Beam-search resilience with vs without length normalization",
        )
        engine = InferenceEngine(store)
        for penalty in (0.0, 1.0):
            campaign = _campaign(ctx, engine, "wmt16", FaultModel.COMP_2BIT,
                                 num_beams=4)
            campaign.generation = dc.replace(
                campaign.generation, length_penalty=penalty
            )
            cell = campaign.run(ctx.n_trials)
            result.add(
                length_penalty=penalty,
                normalized=cell.normalized["bleu"].ratio,
                baseline_bleu=cell.baseline["bleu"],
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 2


def test_bench_ablation_trial_count_ci(benchmark, ctx, emit):
    store = load_model("qwenlike-base", verbose=False)

    def run():
        result = ExperimentResult(
            "ablation-trial-count",
            "Statistical-FI CI width vs number of trials",
        )
        # GSM8k under bf16 memory faults has enough SDC mass for the
        # CI width to be meaningfully nonzero at small trial counts.
        engine = InferenceEngine(store, weight_policy="bf16")
        for n_trials in (24, 48, 96, 192):
            cell = _campaign(ctx, engine, "gsm8k", FaultModel.MEM_2BIT).run(
                n_trials
            )
            ci = cell.normalized["accuracy"]
            result.add(
                n_trials=n_trials,
                normalized=ci.ratio,
                ci_width=(ci.upper - ci.lower),
                sdc_rate=cell.sdc_rate,
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    widths = [r["ci_width"] for r in result.rows if np.isfinite(r["ci_width"])]
    if len(widths) == 4 and all(w > 0 for w in widths):
        assert widths[-1] < widths[0], "CI must narrow with more trials"
