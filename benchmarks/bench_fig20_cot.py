"""Figure 20: Chain-of-Thought vs direct answering under faults."""

import numpy as np

from repro.harness.experiments import fig20_chain_of_thought


def test_bench_fig20(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig20_chain_of_thought, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # Observation #10 shape: with computational faults confined to the
    # reasoning segment, CoT accuracy stays near the fault-free level.
    cot_comp = [
        r["normalized"]
        for r in result.rows
        if r["mode"] == "cot" and r["fault"] == "2bits-comp"
        and np.isfinite(r["normalized"])
    ]
    if cot_comp:
        assert np.mean(cot_comp) > 0.7
