"""Figure 19: resilience vs runtime across beam counts."""

from repro.harness.experiments import fig19_beam_tradeoff


def test_bench_fig19(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig19_beam_tradeoff, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    by_beams = {r["num_beams"]: r for r in result.rows}
    # Runtime grows with beam count (the trade-off's cost side).
    assert (
        by_beams[max(by_beams)]["runtime_per_trial_ms"]
        > by_beams[1]["runtime_per_trial_ms"]
    )
