"""Serving-loop load benchmark: offered load vs throughput and SLOs.

Drives the multi-tenant streaming :class:`repro.serve.InferenceServer`
with the open-loop Poisson load generator: thousands of synthetic
concurrent users submitting prompt shapes drawn from the paper's four
generative workloads (gsm8k / wmt16 / xlsum / squadv2).  Three phases:

1. **Equivalence gate** — every distinct prompt is served concurrently
   and compared token-for-token against a serial ``greedy_decode``
   reference; the script exits non-zero on any divergence, so timing
   never happens on wrong outputs.
2. **Serial baseline** — one-request-at-a-time greedy decoding of the
   same workload (the pre-serving library-call posture): the
   tokens/sec floor the server must beat.
3. **Offered-load sweep** — Poisson arrivals at multiples of the
   serial request rate (0.5x .. 8x); each point reports completed /
   shed counts, served tokens/sec and p50/p99 TTFT, end-to-end latency
   and TPOT from per-request handle timings.

The committed full-run artifact must show served throughput at
saturation >= 2x the serial baseline (asserted here and by
``scripts/check_bench.py``).  Writes ``BENCH_serve.json`` under
``artifacts/results/`` and copies it to the repo root.  Standalone so
CI can run the 2-second smoke burst::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace

from repro.generation.decode import GenerationConfig, greedy_decode
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import build_manifest
from repro.serve import InferenceServer, TenantConfig, run_load
from repro.serve.loadgen import PromptSpec, equivalence_gate, mixed_task_prompts

SEED = 20260807
# eos outside the vocab: every request decodes its full budget, so
# token counts (and therefore throughput) are deterministic.
NO_EOS = -1
LOAD_MULTIPLES = (0.5, 1.0, 2.0, 4.0, 8.0)
SMOKE_MULTIPLES = (1.0, 4.0)


def _prompts(smoke: bool) -> list[PromptSpec]:
    return mixed_task_prompts(per_task=2 if smoke else 6)


def _engine(prompts: list[PromptSpec], smoke: bool) -> InferenceEngine:
    from repro.zoo.build import default_tokenizer

    need = max(len(spec.ids) + spec.max_new for spec in prompts) + 8
    config = ModelConfig(
        vocab_size=len(default_tokenizer()),
        d_model=32 if smoke else 64,
        n_heads=4,
        n_blocks=2 if smoke else 3,
        d_ff=48 if smoke else 128,
        max_seq=need,
    )
    return InferenceEngine(TransformerLM(config, seed=11).to_store())


def bench_serial(
    engine: InferenceEngine,
    config: GenerationConfig,
    prompts: list[PromptSpec],
    smoke: bool,
) -> dict:
    """One-request-at-a-time greedy decoding: the pre-serving posture."""

    def sweep() -> int:
        tokens = 0
        for spec in prompts:
            out = greedy_decode(
                engine,
                list(spec.ids),
                replace(config, max_new_tokens=spec.max_new),
                strategy="serial",
            )
            tokens += len(out)
        return tokens

    rounds = 1 if smoke else 2
    best_wall = float("inf")
    tokens = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        tokens = sweep()
        best_wall = min(best_wall, time.perf_counter() - t0)
    return {
        "n_requests": len(prompts),
        "tokens": tokens,
        "wall_s": best_wall,
        "tokens_per_sec": tokens / best_wall,
        "requests_per_sec": len(prompts) / best_wall,
    }


def bench_sweep(
    engine: InferenceEngine,
    config: GenerationConfig,
    prompts: list[PromptSpec],
    serial_rps: float,
    smoke: bool,
    max_batch: int,
    n_users: int,
) -> list[dict]:
    """Open-loop Poisson sweep at multiples of the serial request rate.

    Each point gets a fresh server (fresh pool, empty queues) so load
    points never contaminate each other's latency tails.
    """
    duration = 1.0 if smoke else 6.0
    points = []
    for multiple in SMOKE_MULTIPLES if smoke else LOAD_MULTIPLES:
        offered = serial_rps * multiple
        server = InferenceServer(
            engine,
            config,
            max_batch=max_batch,
            tenants=[TenantConfig("loadgen", max_queue=10_000)],
        )
        with server:
            report = run_load(
                server,
                prompts,
                offered_rps=offered,
                duration_s=duration,
                seed=SEED,
                tenant="loadgen",
                n_users=n_users,
            )
        point = report.to_dict()
        point["load_multiple"] = multiple
        points.append(point)
        print(
            f"  {multiple:4.1f}x ({offered:7.2f} rps):"
            f" {report.completed:4d} done {report.rejected:3d} shed"
            f" {report.throughput_tps:8.1f} tok/s"
            f"  ttft p50/p99 {report.ttft_ms['p50']:6.1f}/"
            f"{report.ttft_ms['p99']:6.1f} ms"
            f"  e2e p50/p99 {report.latency_ms['p50']:6.1f}/"
            f"{report.latency_ms['p99']:6.1f} ms"
        )
    return points


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args(argv)

    prompts = _prompts(args.smoke)
    engine = _engine(prompts, args.smoke)
    config = GenerationConfig(
        max_new_tokens=max(spec.max_new for spec in prompts), eos_id=NO_EOS
    )
    max_batch = 4 if args.smoke else 8
    n_users = 200 if args.smoke else 2000

    checked = equivalence_gate(engine, config, prompts, max_batch=max_batch)
    print(f"equivalence gate: {checked} served streams token-identical"
          f" to serial greedy_decode")

    serial = bench_serial(engine, config, prompts, args.smoke)
    print(
        f"serial baseline: {serial['tokens_per_sec']:.1f} tok/s"
        f" ({serial['requests_per_sec']:.2f} rps,"
        f" {serial['n_requests']} requests)"
    )
    sweep = bench_sweep(
        engine,
        config,
        prompts,
        serial["requests_per_sec"],
        args.smoke,
        max_batch,
        n_users,
    )
    max_tps = max(point["throughput_tps"] for point in sweep)
    speedup = max_tps / serial["tokens_per_sec"]
    print(f"saturation: {max_tps:.1f} tok/s = {speedup:.2f}x serial")
    if not args.smoke and speedup < 2.0:
        raise SystemExit(
            f"served throughput at saturation only {speedup:.2f}x the"
            f" serial baseline (need >= 2x)"
        )

    payload = {
        "bench_id": "serve",
        "title": "Streaming server under open-loop Poisson load",
        "smoke": args.smoke,
        "equivalence": {"checked": checked, "identical": True},
        "serial": serial,
        "sweep": sweep,
        "overall": {
            "max_throughput_tps": max_tps,
            "serial_tokens_per_sec": serial["tokens_per_sec"],
            "speedup_vs_serial": speedup,
            "max_batch": max_batch,
            "n_prompts": len(prompts),
            "n_users": n_users,
            "smoke": args.smoke,
        },
        "manifest": build_manifest(
            seed=SEED,
            config={"bench": "serve", "smoke": args.smoke},
            command="bench:serve",
        ),
    }

    from conftest import write_bench_json

    out, root_copy = write_bench_json("serve", payload, out=args.out)
    print(f"wrote {out} (+ {root_copy})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
