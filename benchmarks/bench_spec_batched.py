"""Composed batched-speculative decoding benchmark.

``BENCH_spec.json`` documents the motivating conflict: single-sequence
draft-and-verify beats serial (~1.7x) but *loses* to continuous
batching (~0.68x), so the two fast paths were an either/or.  This bench
measures the composition — :class:`repro.generation.BatchedSpeculativeDecoder`
proposes with the draft for all live rows at once and verifies every
row's chunk in grouped batched target forwards — against batched-alone
at the same batch widths, over the same trained target/draft pair and
mixed generative-task prompts as the speculation bench (both are
imported from ``bench_speculative``).

Before timing, composed outputs are asserted token-identical to the
serial greedy reference on every prompt at every (depth, batch width)
tested; any mismatch exits non-zero, so the CI smoke job doubles as an
equivalence gate for the composed scheduler.

Floors (full runs only): composed throughput >= 1.15x batched-alone at
its best batch width >= 4, never below 1.0x batched-alone at any
B >= 4 point, and > 2x the serial reference overall — the
multiplicative win the composition exists for.  (The vs-batched edge
narrows as width grows — at B=8 the batched step is already
dispatch-amortized, so fewer-but-bigger verify forwards buy less.)

Writes ``BENCH_spec_batched.json`` under ``artifacts/results/`` and
copies it to the repo root::

    PYTHONPATH=src python benchmarks/bench_spec_batched.py --smoke
"""

from __future__ import annotations

import argparse
import time

from bench_speculative import (
    EQUIV_DEPTHS,
    NO_EOS,
    SEED,
    _build_pair,
    _task_prompts,
    _timed,
)

from repro.generation import (
    BatchedDecoder,
    BatchedSpeculativeDecoder,
    GenerationConfig,
    greedy_decode,
)
from repro.obs import build_manifest, telemetry


def _accept_stats(decoder, prompts) -> dict:
    """Decode once with telemetry on; read the accept-rate metrics."""
    tel = telemetry()
    tel.reset()
    tel.enable()
    try:
        decoder.decode_many(prompts)
        snap = tel.metrics.snapshot()
    finally:
        tel.reset()
        tel.disable()
    accept_lens = snap["histograms"].get("decode.spec_accept_len", [])
    accepted = float(sum(accept_lens))
    rejected = float(snap["counters"].get("decode.spec_rejected", 0.0))
    proposed = accepted + rejected
    return {
        "rounds": int(snap["counters"].get("decode.spec_rounds", 0)),
        "proposed": int(proposed),
        "accepted": int(accepted),
        "accept_rate": accepted / proposed if proposed else 0.0,
        "mean_accept_len": accepted / len(accept_lens) if accept_lens else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--depth", type=int, default=4,
        help="speculation depth for the timed runs",
    )
    args = parser.parse_args(argv)

    target, draft, tok, world = _build_pair(args.smoke)
    by_task = _task_prompts(world, tok, args.smoke)
    # One mixed workload across all four generative tasks — the batch
    # is heterogeneous on purpose, like the serving traffic mix.
    prompts = [p for name in sorted(by_task) for p in by_task[name]]
    gen = GenerationConfig(max_new_tokens=32, eos_id=NO_EOS)
    batch_sizes = (1, 4) if args.smoke else (1, 4, 8)

    serial = [greedy_decode(target, p, gen, strategy="serial") for p in prompts]
    n_tokens = sum(len(ids) for ids in serial)

    # -- pre-timing equivalence gate: every depth x batch width ------------
    checked = 0
    for depth in EQUIV_DEPTHS:
        for width in batch_sizes:
            decoder = BatchedSpeculativeDecoder(
                target, draft, gen, speculation_depth=depth, max_batch=width
            )
            got = decoder.decode_many(prompts)
            if got != serial:
                raise SystemExit(
                    f"composed decode (depth {depth}, batch {width})"
                    " diverged from the serial greedy reference"
                )
            checked += len(prompts)
    print(
        f"equivalence gate: {checked} streams token-identical to serial"
        f" (depths {list(EQUIV_DEPTHS)}, batch widths {list(batch_sizes)})"
    )

    # -- timing ------------------------------------------------------------
    reps = 1 if args.smoke else 2
    wall_serial = _timed(
        lambda: [greedy_decode(target, p, gen, strategy="serial")
                 for p in prompts],
        reps,
    )
    total = reps * n_tokens
    sweep = []
    for width in batch_sizes:
        batched = BatchedDecoder(target, gen, max_batch=width)
        composed = BatchedSpeculativeDecoder(
            target, draft, gen, speculation_depth=args.depth, max_batch=width
        )
        wall_batched = _timed(lambda: batched.decode_many(prompts), reps)
        wall_composed = _timed(lambda: composed.decode_many(prompts), reps)
        point = {
            "batch": width,
            "tokens_per_sec_batched": total / wall_batched,
            "tokens_per_sec_composed": total / wall_composed,
            "wall_s_batched": wall_batched,
            "wall_s_composed": wall_composed,
            "speedup_composed_vs_batched": wall_batched / wall_composed,
            "speedup_composed_vs_serial": wall_serial / wall_composed,
        }
        sweep.append(point)
        print(
            f"B={width}: batched {point['tokens_per_sec_batched']:7.1f}"
            f" -> composed {point['tokens_per_sec_composed']:7.1f} tok/s"
            f" ({point['speedup_composed_vs_batched']:.2f}x vs batched,"
            f" {point['speedup_composed_vs_serial']:.2f}x vs serial)"
        )

    stats = _accept_stats(
        BatchedSpeculativeDecoder(
            target, draft, gen,
            speculation_depth=args.depth, max_batch=max(batch_sizes),
        ),
        prompts,
    )
    best = max(sweep, key=lambda p: p["tokens_per_sec_composed"])
    wide = [p for p in sweep if p["batch"] >= 4]
    peak = max(
        wide or sweep, key=lambda p: p["speedup_composed_vs_batched"]
    )
    overall = {
        "speculation_depth": args.depth,
        "equivalence_depths": list(EQUIV_DEPTHS),
        "batch_sizes": list(batch_sizes),
        "n_prompts": len(prompts),
        "tokens_decoded": n_tokens,
        "accept_rate": stats["accept_rate"],
        "mean_accept_len": stats["mean_accept_len"],
        "wall_s_serial": wall_serial,
        "tokens_per_sec_serial": total / wall_serial,
        "best_batch": best["batch"],
        "speedup_vs_serial": wall_serial / best["wall_s_composed"],
        "speedup_vs_batched_best": best["speedup_composed_vs_batched"],
        "peak_vs_batched_batch": peak["batch"],
        "speedup_vs_batched_peak": peak["speedup_composed_vs_batched"],
    }
    print(
        f"overall: {overall['speedup_vs_serial']:.2f}x vs serial at"
        f" B={best['batch']},"
        f" {overall['speedup_vs_batched_best']:.2f}x vs batched-alone"
        f" (peak {overall['speedup_vs_batched_peak']:.2f}x at"
        f" B={peak['batch']}), accept {stats['accept_rate']:.2f}"
    )
    if stats["accept_rate"] <= 0.0:
        raise SystemExit("composed speculation accepted zero draft tokens")
    if not args.smoke:
        for point in wide:
            if point["speedup_composed_vs_batched"] < 1.0:
                raise SystemExit(
                    f"composed {point['speedup_composed_vs_batched']:.2f}x"
                    f" vs batched-alone at B={point['batch']} loses to"
                    " batched-alone (floor 1.0x at every B >= 4)"
                )
        if overall["speedup_vs_batched_peak"] < 1.15:
            raise SystemExit(
                f"composed peak {overall['speedup_vs_batched_peak']:.2f}x"
                f" vs batched-alone (B={peak['batch']}) is below the"
                " 1.15x acceptance floor"
            )
        if overall["speedup_vs_serial"] <= 2.0:
            raise SystemExit(
                f"composed speedup {overall['speedup_vs_serial']:.2f}x vs"
                " serial is below the 2x acceptance floor"
            )

    payload = {
        "bench_id": "spec_batched",
        "title": "Batched speculative decoding: composed vs batched-alone",
        "smoke": args.smoke,
        "equivalence": {
            "identical": True,
            "checked": checked,
            "depths": list(EQUIV_DEPTHS),
            "batch_sizes": list(batch_sizes),
        },
        "sweep": sweep,
        "overall": overall,
        "manifest": build_manifest(
            seed=SEED,
            config={
                "bench": "spec_batched",
                "smoke": args.smoke,
                "depth": args.depth,
            },
            command="bench:spec_batched",
        ),
    }

    from conftest import write_bench_json

    out, root_copy = write_bench_json("spec_batched", payload, out=args.out)
    print(f"wrote {out} (+ {root_copy})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
