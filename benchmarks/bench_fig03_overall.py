"""Figure 3: normalized performance over every task/model/fault cell.

This is the headline measurement; Figures 4 and 11 aggregate it, so the
bench emits all three from a single campaign sweep.
"""

import numpy as np

from repro.harness.experiments import fig03_overall, fig04_fault_models, fig11_per_task


def test_bench_fig03_fig04_fig11(benchmark, ctx, emit):
    overall = benchmark.pedantic(
        fig03_overall, args=(ctx,), rounds=1, iterations=1
    )
    emit(overall)
    fig04 = emit(fig04_fault_models(ctx, overall))
    fig11 = emit(fig11_per_task(ctx, overall))

    # Shape checks (paper Observations #1 and #2).
    by_fault = {row["fault"]: row["mean_normalized"] for row in fig04.rows}
    assert by_fault["2bits-mem"] <= min(
        by_fault["1bit-comp"], by_fault["2bits-comp"]
    ) + 0.02, "memory faults should degrade at least as much as computational"

    values = [
        row["normalized"] for row in overall.rows if np.isfinite(row["normalized"])
    ]
    assert values, "campaigns must produce normalized performance values"
    assert float(np.mean(values)) > 0.7, "average degradation should be modest"
