"""Figure 13: weight/activation value distributions per model family."""

from repro.harness.experiments import fig13_weight_distributions


def test_bench_fig13(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig13_weight_distributions, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # The three families were built with distinct init gains; after
    # training, weight spreads partly converge but the *neuron*
    # (activation) distributions remain clearly distinct (Obs #3 —
    # Fig. 13 plots both weights and neurons).
    neuron = sorted(row["neuron_std"] for row in result.rows)
    assert neuron[-1] > 1.5 * neuron[0]
    weight = sorted(row["weight_std"] for row in result.rows)
    assert weight[-1] > 1.05 * weight[0]
