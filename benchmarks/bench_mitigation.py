"""Extension benches: the protection mechanisms the paper prescribes.

Not a paper figure — these quantify the prescriptions in the paper's
conclusions on the same campaign machinery: Ranger-style range
restriction against memory faults, golden-copy router protection
against gate faults (Observation #6), and distorted-output detection
coverage.
"""

import numpy as np

from repro.fi import FaultModel, FICampaign
from repro.harness.results import ExperimentResult
from repro.inference import InferenceEngine
from repro.mitigation import RangeRestrictor, SelectiveProtection, router_layers
from repro.tasks import standardized_subset
from repro.zoo import load_model


def _campaign(ctx, engine, task_name, fault_model, **kw):
    task = ctx.task(task_name)
    return FICampaign(
        engine=engine,
        tokenizer=ctx.tokenizer,
        task_name=task_name,
        metrics=task.metrics,
        examples=standardized_subset(task, ctx.n_examples),
        fault_model=fault_model,
        seed=ctx.seed,
        generation=ctx.generation(task),
        **kw,
    )


def test_bench_mitigation_range_restriction(benchmark, ctx, emit):
    store = load_model("qwenlike-base", verbose=False)

    def run():
        result = ExperimentResult(
            "mitigation-ranger",
            "Range restriction vs unprotected under 2bits-mem (bf16)",
        )
        calibration = [
            ctx.tokenizer.encode(ex.prompt) for ex in ctx.examples("wmt16", 6)
        ]
        for protected in (False, True):
            engine = InferenceEngine(store, weight_policy="bf16")
            guard = None
            if protected:
                guard = RangeRestrictor(margin=0.25)
                guard.calibrate(engine, calibration)
                guard.install(engine)
            cell = _campaign(ctx, engine, "wmt16", FaultModel.MEM_2BIT).run(
                ctx.n_trials
            )
            if guard is not None:
                guard.uninstall()
            result.add(
                variant="ranger" if protected else "unprotected",
                normalized_bleu=cell.normalized["bleu"].ratio,
                sdc_rate=cell.sdc_rate,
                distorted=cell.sdc_breakdown()["distorted"],
                clip_events=(guard.clip_events if guard else 0),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    by_variant = {r["variant"]: r for r in result.rows}
    # Range restriction must not hurt, and should cut distorted outputs.
    assert (
        by_variant["ranger"]["distorted"]
        <= by_variant["unprotected"]["distorted"] + 1.0 / ctx.n_trials
    )


def test_bench_mitigation_router_protection(benchmark, ctx, emit):
    store = load_model("moelike-base", verbose=False)

    def router_only(name: str) -> bool:
        return name.endswith("router")

    def run():
        result = ExperimentResult(
            "mitigation-router",
            "Golden-copy router protection vs unprotected (gate-only faults)",
        )
        for protected in (False, True):
            engine = InferenceEngine(store, weight_policy="bf16")
            campaign = _campaign(
                ctx, engine, "wmt16", FaultModel.MEM_2BIT,
                layer_filter=router_only,
            )
            if protected:
                protection = SelectiveProtection(engine, router_layers(engine))
                original = campaign._eval_gen

                def guarded_eval(ex, _orig=original, _p=protection):
                    _p.verify_and_restore()
                    return _orig(ex)

                campaign._eval_gen = guarded_eval
            cell = campaign.run(ctx.n_trials)
            result.add(
                variant="protected" if protected else "unprotected",
                normalized_bleu=cell.normalized["bleu"].ratio,
                changed_outputs=float(np.mean([t.changed for t in cell.trials])),
                overhead_bytes=(
                    protection.overhead_bytes if protected else 0
                ),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    by_variant = {r["variant"]: r for r in result.rows}
    # With verify/restore before every inference, gate faults are
    # repaired before they can act: no output may change.
    assert by_variant["protected"]["changed_outputs"] == 0.0
    assert by_variant["protected"]["normalized_bleu"] >= 0.999


def test_bench_mitigation_detector_coverage(benchmark, ctx, emit):
    store = load_model("qwenlike-base", verbose=False)

    def run():
        result = ExperimentResult(
            "mitigation-detector",
            "LogitAnomalyDetector coverage by SDC type (gsm8k, 2bits-mem)",
        )
        from repro.mitigation import output_structure_flags

        engine = InferenceEngine(store, weight_policy="bf16")
        cell = _campaign(ctx, engine, "gsm8k", FaultModel.MEM_2BIT).run(
            ctx.n_trials * 2
        )
        counts = {"masked": [0, 0], "sdc-subtle": [0, 0], "sdc-distorted": [0, 0]}
        for trial in cell.trials:
            flagged = output_structure_flags(trial.prediction)
            bucket = counts[trial.outcome.value]
            bucket[0] += int(flagged)
            bucket[1] += 1
        for outcome, (hits, total) in counts.items():
            result.add(
                outcome=outcome,
                flagged=hits,
                total=total,
                coverage=hits / total if total else float("nan"),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    rows = {r["outcome"]: r for r in result.rows}
    # Structural detection catches distorted outputs...
    if rows["sdc-distorted"]["total"]:
        assert rows["sdc-distorted"]["coverage"] >= 0.5
    # ...but masked (clean) runs raise (almost) no false alarms.
    if rows["masked"]["total"]:
        assert rows["masked"]["coverage"] <= 0.1
