"""Figure 5: memory-fault propagation (column -> whole next tensor)."""

from repro.harness.experiments import fig05_memory_propagation


def test_bench_fig05(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig05_memory_propagation, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    injected, downstream = result.rows
    # Column-shaped corruption in the injected layer...
    assert injected["corrupted_columns"] == 1
    assert injected["target_column_fraction"] == 1.0
    # ...blanketing the next layer's tensor.
    assert downstream["corrupted_fraction"] > 0.9
