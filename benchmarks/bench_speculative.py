"""Speculative-decoding micro-benchmark: draft-and-verify vs. serial.

Trains a target/draft model pair in-process on the mixed synthetic
corpus (same world, tokenizer and recipe as the zoo), then measures
greedy decode throughput on real generative-task prompts (GSM8k, WMT16,
XLSum, SQuADv2) three ways, against the same weights in one process:

* the serial reference loop (one target forward per token);
* :class:`repro.generation.SpeculativeDecoder` — the draft proposes
  ``--depth`` tokens per round, the target verifies them in one chunked
  forward, rejects roll back via ``KVCache.truncate``;
* PR 3's :class:`repro.generation.BatchedDecoder` (continuous batching
  across the prompt set) for cross-optimization context.

Before timing, speculative outputs at depths 1, 2 and 4 are asserted
token-identical to the serial reference on every prompt; the script
exits non-zero on any mismatch, so CI runs double as an equivalence
gate.  Per-task accept rates come from the ``decode.spec_accept_len``/
``decode.spec_rejected`` telemetry the decoder emits.

Writes ``BENCH_spec.json`` under ``artifacts/results/`` and copies it
to the repo root.  Standalone (no pytest-benchmark) so CI can run it in
``--smoke`` mode (small pair, short training, equivalence + nonzero
accept rate only; the >= 1.5x throughput floor is asserted on full
runs)::

    PYTHONPATH=src python benchmarks/bench_speculative.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.generation import (
    BatchedDecoder,
    GenerationConfig,
    SpeculativeDecoder,
    greedy_decode,
)
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import build_manifest, telemetry
from repro.tasks import World, all_tasks
from repro.training.data import (
    build_mixed_corpus,
    build_tokenizer,
    corpus_to_stream,
)
from repro.training.trainer import TrainConfig, train_lm

SEED = 20260807
GEN_TASKS = ("gsm8k", "wmt16", "xlsum", "squadv2")
MAX_SEQ = 192
EQUIV_DEPTHS = (1, 2, 4)
# eos outside the sampled-token range: throughput runs never stop early
# (same convention as the other throughput benches), so every prompt
# decodes the full budget and prefill cost amortizes uniformly.
NO_EOS = -1


def _train_engine(
    label: str,
    config: ModelConfig,
    seed: int,
    stream: np.ndarray,
    steps: int,
) -> InferenceEngine:
    model = TransformerLM(config, seed=seed)
    t0 = time.perf_counter()
    result = train_lm(
        model,
        stream,
        TrainConfig(steps=steps, batch_size=16, seq_len=64, lr=3e-3,
                    warmup_steps=max(20, steps // 20), seed=seed + 7),
    )
    print(
        f"[{label}] trained {steps} steps,"
        f" loss {result.smoothed_final():.3f},"
        f" {time.perf_counter() - t0:.1f}s"
    )
    return InferenceEngine(model.to_store())


def _build_pair(smoke: bool) -> tuple[InferenceEngine, InferenceEngine, object, World]:
    """Target + draft engines trained on the same mixed corpus."""
    world = World(seed=2025)
    tok = build_tokenizer(world)
    rng = np.random.default_rng([31337, 11])
    docs = build_mixed_corpus(
        all_tasks(world), rng, 1500 if smoke else 4000
    )
    stream = corpus_to_stream(docs, tok)
    if smoke:
        target_cfg = ModelConfig(
            vocab_size=len(tok), d_model=48, n_heads=4, n_blocks=3,
            d_ff=96, max_seq=MAX_SEQ,
        )
        target_steps, draft_steps = 320, 200
    else:
        # Depth matters more than width here: per-forward cost at tiny
        # scale is dominated by per-layer dispatch, so a 12-block
        # target against a 1-block draft yields the ~15x cost ratio
        # speculation needs (measured: ~2.1ms vs ~0.13ms per
        # single-token forward).
        target_cfg = ModelConfig(
            vocab_size=len(tok), d_model=128, n_heads=8, n_blocks=12,
            d_ff=256, max_seq=MAX_SEQ,
        )
        target_steps, draft_steps = 1400, 2000
    draft_cfg = ModelConfig(
        vocab_size=len(tok), d_model=48, n_heads=4, n_blocks=1,
        d_ff=96, max_seq=MAX_SEQ,
    )
    target = _train_engine("target", target_cfg, 11, stream, target_steps)
    draft = _train_engine("draft", draft_cfg, 11, stream, draft_steps)
    return target, draft, tok, world


def _task_prompts(world, tok, smoke: bool) -> dict[str, list[list[int]]]:
    """Real task prompts, clipped to leave decode headroom in the cache."""
    n = 4 if smoke else 8
    by_name = {t.name: t for t in all_tasks(world)}
    prompts: dict[str, list[list[int]]] = {}
    for i, name in enumerate(GEN_TASKS):
        task = by_name[name]
        rng = np.random.default_rng([SEED, i])
        examples = task.examples(rng, 3 * n)
        ids = [tok.encode(ex.prompt) for ex in examples]
        ids = [p for p in ids if len(p) + 40 <= MAX_SEQ][:n]
        if len(ids) < n:
            raise SystemExit(f"not enough short prompts for task {name}")
        prompts[name] = ids
    return prompts


def _timed(fn, reps: int) -> float:
    """Best-effort wall seconds for ``reps`` calls (min over 3 rounds)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _accept_stats(spec, prompts) -> dict:
    """Decode once with telemetry on; read the accept-rate metrics."""
    tel = telemetry()
    tel.reset()
    tel.enable()
    try:
        for p in prompts:
            spec.decode_one(p)
        snap = tel.metrics.snapshot()
    finally:
        tel.reset()
        tel.disable()
    accept_lens = snap["histograms"].get("decode.spec_accept_len", [])
    accepted = float(sum(accept_lens))
    rejected = float(snap["counters"].get("decode.spec_rejected", 0.0))
    proposed = accepted + rejected
    return {
        "rounds": int(snap["counters"].get("decode.spec_rounds", 0)),
        "proposed": int(proposed),
        "accepted": int(accepted),
        "accept_rate": accepted / proposed if proposed else 0.0,
        "mean_accept_len": accepted / len(accept_lens) if accept_lens else 0.0,
    }


def bench_task(
    name: str,
    prompts: list[list[int]],
    target: InferenceEngine,
    draft: InferenceEngine,
    gen: GenerationConfig,
    depth: int,
    smoke: bool,
) -> dict:
    spec = SpeculativeDecoder(target, draft, gen, speculation_depth=depth)
    serial = [greedy_decode(target, p, gen, strategy="serial") for p in prompts]
    for d in EQUIV_DEPTHS:
        sd = SpeculativeDecoder(target, draft, gen, speculation_depth=d)
        got = [sd.decode_one(p) for p in prompts]
        if got != serial:
            raise SystemExit(
                f"speculative decode (depth {d}) diverged from serial"
                f" reference on task {name}"
            )
    batched = BatchedDecoder(target, gen, max_batch=len(prompts))

    stats = _accept_stats(spec, prompts)
    n_tokens = sum(len(ids) for ids in serial)
    reps = 1 if smoke else 2
    wall_serial = _timed(
        lambda: [greedy_decode(target, p, gen, strategy="serial")
                 for p in prompts],
        reps,
    )
    wall_spec = _timed(lambda: [spec.decode_one(p) for p in prompts], reps)
    wall_batched = _timed(lambda: batched.decode_many(prompts), reps)
    total = reps * n_tokens
    return {
        "n_prompts": len(prompts),
        "tokens_decoded": n_tokens,
        "accept_rate": stats["accept_rate"],
        "mean_accept_len": stats["mean_accept_len"],
        "verify_rounds": stats["rounds"],
        "proposed": stats["proposed"],
        "accepted": stats["accepted"],
        "tokens_per_sec_serial": total / wall_serial,
        "tokens_per_sec_speculative": total / wall_spec,
        "tokens_per_sec_batched": total / wall_batched,
        "wall_s_serial": wall_serial,
        "wall_s_speculative": wall_spec,
        "wall_s_batched": wall_batched,
        "speedup_vs_serial": wall_serial / wall_spec,
        "speedup_vs_batched": wall_batched / wall_spec,
        "outputs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--depth", type=int, default=4,
        help="speculation depth for the timed runs",
    )
    args = parser.parse_args(argv)

    target, draft, tok, world = _build_pair(args.smoke)
    prompts = _task_prompts(world, tok, args.smoke)
    gen = GenerationConfig(max_new_tokens=32, eos_id=NO_EOS)

    tasks: dict[str, dict] = {}
    for name in GEN_TASKS:
        tasks[name] = bench_task(
            name, prompts[name], target, draft, gen, args.depth, args.smoke
        )
        row = tasks[name]
        print(
            f"{name:8s} accept {row['accept_rate']:.2f}"
            f" | {row['tokens_per_sec_serial']:7.1f} ->"
            f" {row['tokens_per_sec_speculative']:7.1f} tok/s"
            f" ({row['speedup_vs_serial']:.2f}x vs serial,"
            f" {row['speedup_vs_batched']:.2f}x vs batched)"
        )

    wall_serial = sum(t["wall_s_serial"] for t in tasks.values())
    wall_spec = sum(t["wall_s_speculative"] for t in tasks.values())
    wall_batched = sum(t["wall_s_batched"] for t in tasks.values())
    proposed = sum(t["proposed"] for t in tasks.values())
    accept_overall = (
        sum(t["accepted"] for t in tasks.values()) / proposed
        if proposed else 0.0
    )
    overall = {
        "speculation_depth": args.depth,
        "equivalence_depths": list(EQUIV_DEPTHS),
        "accept_rate": accept_overall,
        "wall_s_serial": wall_serial,
        "wall_s_speculative": wall_spec,
        "wall_s_batched": wall_batched,
        "speedup_vs_serial": wall_serial / wall_spec,
        "speedup_vs_batched": wall_batched / wall_spec,
    }
    print(
        f"overall: {overall['speedup_vs_serial']:.2f}x vs serial,"
        f" {overall['speedup_vs_batched']:.2f}x vs batched,"
        f" accept {accept_overall:.2f}"
    )
    if accept_overall <= 0.0:
        raise SystemExit("speculation accepted zero draft tokens")
    if not args.smoke and overall["speedup_vs_serial"] < 1.5:
        raise SystemExit(
            f"speculative speedup {overall['speedup_vs_serial']:.2f}x"
            " below the 1.5x acceptance floor"
        )

    payload = {
        "bench_id": "spec",
        "title": "Speculative decoding: draft-and-verify vs serial greedy",
        "smoke": args.smoke,
        "tasks": tasks,
        "overall": overall,
        "manifest": build_manifest(
            seed=SEED,
            config={
                "bench": "spec",
                "smoke": args.smoke,
                "depth": args.depth,
            },
            command="bench:speculative",
        ),
    }

    from conftest import write_bench_json

    out, root_copy = write_bench_json("spec", payload, out=args.out)
    print(f"wrote {out} (+ {root_copy})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
