"""Campaign scale-out benchmark: shared-arena pool vs. serial.

Builds a deterministic model in-process, then runs the same FI
campaign (MMLU multiple-choice over the standardized subset) three
ways for every fault model:

* serially (``n_workers=0``) — the bit-reproducibility reference;
* through the pre-forked persistent pool at 2 and 4 workers, timing a
  *warm* pool (one warm-up ``run()`` spins it up and faults in code
  pages, then the timed run reuses the live workers);
* interrupted and resumed into the live pool (checkpoint after half
  the trials, ``resume()`` the rest).

Every leg is asserted bit-identical to serial via
:func:`repro.fi.assert_records_equal`; the script exits non-zero on
any divergence, so CI runs double as an equivalence gate.

Memory accounting reads USS (``Private_Clean + Private_Dirty`` from
``/proc/<pid>/smaps_rollup``) for each pooled worker before and after
the weight-fault leg: the delta is the copy-on-write cost of fault
trials, which must stay a small fraction of a full model copy because
workers attach to the read-only arena and privatize only the targeted
tensor.

Throughput floors are gated on ``host_cores`` (``os.cpu_count()``):
a 4x-worker speedup is unmeasurable on a 1-2 core box, so the >= 3x
floor is asserted only on full runs with >= 4 cores, and the smoke
>= 1x floor only with >= 2 cores.  Equivalence and the CoW memory
bound are asserted everywhere they are measurable.

Writes ``BENCH_scaleout.json`` under ``artifacts/results/`` and
copies it to the repo root::

    PYTHONPATH=src python benchmarks/bench_scaleout.py --smoke
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

from repro.fi import FaultModel, FICampaign, assert_records_equal
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import build_manifest
from repro.tasks import MMLUTask, World, standardized_subset
from repro.training.data import build_tokenizer

SEED = 20260807
SPEEDUP_FLOOR_FULL = 3.0   # at 4 workers, full run, host_cores >= 4
SPEEDUP_FLOOR_SMOKE = 1.0  # at 2 workers, smoke run, host_cores >= 2
COW_RSS_FRACTION = 0.20    # incremental worker USS vs. a full model copy


def _build_store(smoke: bool):
    """Deterministic untrained store: FI mechanics (injection, scoring,
    scheduling) are identical to a trained model's, and skipping
    training keeps the bench about the execution engine."""
    world = World(seed=2025)
    tokenizer = build_tokenizer(world)
    if smoke:
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=32, n_heads=4, n_blocks=2,
            d_ff=48, max_seq=160,
        )
    else:
        # Large enough that a full per-worker weight copy would dwarf
        # interpreter noise in USS, small enough for 1-core CI.
        config = ModelConfig(
            vocab_size=len(tokenizer), d_model=192, n_heads=8, n_blocks=8,
            d_ff=384, max_seq=160,
        )
    store = TransformerLM(config, seed=5).to_store()
    return store, tokenizer, world


def make_campaign(store, tokenizer, world, fault_model) -> FICampaign:
    task = MMLUTask(world)
    return FICampaign(
        engine=InferenceEngine(store),
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 3),
        fault_model=fault_model,
        seed=9,
    )


def _uss_bytes(pid: int) -> int | None:
    """Unique set size: private pages actually charged to ``pid``."""
    try:
        text = Path(f"/proc/{pid}/smaps_rollup").read_text()
    except OSError:
        return None
    uss = 0
    seen = False
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            uss += int(line.split()[1]) * 1024
            seen = True
    return uss if seen else None


def _pool_uss(campaign: FICampaign) -> dict[int, int]:
    pool = campaign._pool
    if pool is None:
        return {}
    out = {}
    for pid in pool.worker_pids():
        uss = _uss_bytes(pid)
        if uss is not None:
            out[pid] = uss
    return out


def _timed_run(campaign: FICampaign, n_trials: int, n_workers: int):
    t0 = time.perf_counter()
    result = campaign.run(n_trials, n_workers=n_workers)
    wall = time.perf_counter() - t0
    return result, wall


def bench_fault_model(
    store, tokenizer, world, fault_model, n_trials: int,
    worker_counts: list[int], measure_uss: bool,
) -> dict:
    serial_campaign = make_campaign(store, tokenizer, world, fault_model)
    serial, wall_serial = _timed_run(serial_campaign, n_trials, 0)
    row = {
        "n_trials": n_trials,
        "wall_s_serial": wall_serial,
        "trials_per_sec_serial": n_trials / wall_serial,
        "records_equal": True,
        "resume_equal": True,
    }

    for workers in worker_counts:
        campaign = make_campaign(store, tokenizer, world, fault_model)
        try:
            # Warm the pool (and, when measuring memory, the workers'
            # steady state: prefill-session caches, allocator arenas)
            # so the timed run sees live workers and the USS delta
            # isolates what *trial execution* adds — the CoW cost.
            campaign.run(n_trials if measure_uss else 2, n_workers=workers)
            uss_before = _pool_uss(campaign) if measure_uss else {}
            pooled, wall = _timed_run(campaign, n_trials, workers)
            uss_after = _pool_uss(campaign) if measure_uss else {}
            arena_bytes = campaign._arena.nbytes if campaign._arena else 0
        finally:
            campaign.close_pool()
        assert_records_equal(
            pooled.trials, serial.trials, f"pool{workers}", "serial"
        )
        cell = {
            "wall_s": wall,
            "trials_per_sec": n_trials / wall,
            "speedup_vs_serial": wall_serial / wall,
            "arena_bytes": arena_bytes,
        }
        if measure_uss and uss_before and uss_after:
            deltas = [
                uss_after[pid] - uss_before[pid]
                for pid in uss_after
                if pid in uss_before
            ]
            cell["worker_uss_bytes"] = max(uss_after.values())
            cell["worker_uss_delta_bytes"] = max(deltas) if deltas else 0
        row[f"workers_{workers}"] = cell

    # Kill-and-resume into the persistent pool: checkpoint after half
    # the trials, resume the remainder on the same (live) workers.
    resume_workers = worker_counts[0]
    campaign = make_campaign(store, tokenizer, world, fault_model)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-ck-") as tmp:
            checkpoint = Path(tmp) / "campaign.jsonl"
            campaign.run(
                n_trials // 2, n_workers=resume_workers, checkpoint=checkpoint
            )
            resumed = campaign.resume(
                checkpoint, n_trials, n_workers=resume_workers
            )
    finally:
        campaign.close_pool()
    assert_records_equal(
        resumed.trials, serial.trials, "resumed", "serial"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--trials", type=int, default=None,
        help="trials per campaign (default 8 smoke / 24 full)",
    )
    args = parser.parse_args(argv)

    host_cores = os.cpu_count() or 1
    n_trials = args.trials or (8 if args.smoke else 24)
    worker_counts = [2] if args.smoke else [2, 4]
    store, tokenizer, world = _build_store(args.smoke)
    model_copy_bytes = sum(
        array.nbytes for _name, array in store.items()
    )
    print(
        f"host_cores={host_cores}  trials={n_trials}"
        f"  workers={worker_counts}"
        f"  model copy {model_copy_bytes / 1e6:.1f} MB"
    )

    fault_models: dict[str, dict] = {}
    for fm in FaultModel.all():
        # CoW cost is only visible on the weight-fault model; measuring
        # USS there keeps the smaps reads off the timed hot path of the
        # compute-fault legs.
        measure_uss = fm.is_memory
        row = bench_fault_model(
            store, tokenizer, world, fm, n_trials, worker_counts,
            measure_uss,
        )
        fault_models[fm.value] = row
        fastest = max(
            (row[f"workers_{w}"]["speedup_vs_serial"] for w in worker_counts),
        )
        print(
            f"{fm.value:10s} serial {row['trials_per_sec_serial']:6.2f}"
            f" trials/s | best pooled speedup {fastest:.2f}x"
            f" | records + resume bit-identical"
        )

    arena_bytes = max(
        row[f"workers_{worker_counts[0]}"]["arena_bytes"]
        for row in fault_models.values()
    )
    top_workers = worker_counts[-1]
    speedups = [
        row[f"workers_{top_workers}"]["speedup_vs_serial"]
        for row in fault_models.values()
    ]
    best_speedup = max(speedups)
    uss_deltas = [
        row[f"workers_{w}"].get("worker_uss_delta_bytes")
        for row in fault_models.values()
        for w in worker_counts
        if row[f"workers_{w}"].get("worker_uss_delta_bytes") is not None
    ]
    cow_delta = max(uss_deltas) if uss_deltas else None

    enforce_full = not args.smoke and host_cores >= 4
    enforce_smoke = args.smoke and host_cores >= 2
    # The CoW bound needs the model to dwarf per-trial interpreter heap
    # churn (~100 KB) — the smoke model is deliberately tiny, so the
    # bound is asserted on full runs only (and always reported).
    enforce_cow = cow_delta is not None and not args.smoke
    overall = {
        "host_cores": host_cores,
        "arena_bytes": arena_bytes,
        "model_copy_bytes": model_copy_bytes,
        "best_speedup": best_speedup,
        "top_workers": top_workers,
        "cow_worker_uss_delta_bytes": cow_delta,
        "cow_rss_fraction_limit": COW_RSS_FRACTION,
        "cow_limit_enforced": enforce_cow,
        "speedup_floor": (
            SPEEDUP_FLOOR_SMOKE if args.smoke else SPEEDUP_FLOOR_FULL
        ),
        "speedup_floor_enforced": enforce_full or enforce_smoke,
        "records_bit_identical": True,
    }
    print(
        f"overall: {best_speedup:.2f}x at {top_workers} workers"
        f" (floor {'enforced' if overall['speedup_floor_enforced'] else 'skipped'}:"
        f" {host_cores} cores)"
        + (
            f", CoW delta {cow_delta / 1e3:.0f} KB"
            f" vs model copy {model_copy_bytes / 1e6:.1f} MB"
            if cow_delta is not None else ""
        )
    )

    if enforce_full and best_speedup < SPEEDUP_FLOOR_FULL:
        raise SystemExit(
            f"pooled speedup {best_speedup:.2f}x at {top_workers} workers"
            f" below the {SPEEDUP_FLOOR_FULL:g}x acceptance floor"
        )
    if enforce_smoke and best_speedup < SPEEDUP_FLOOR_SMOKE:
        raise SystemExit(
            f"pooled speedup {best_speedup:.2f}x below the"
            f" {SPEEDUP_FLOOR_SMOKE:g}x smoke floor"
        )
    if enforce_cow and cow_delta > COW_RSS_FRACTION * model_copy_bytes:
        raise SystemExit(
            f"per-worker incremental USS {cow_delta / 1e6:.2f} MB exceeds"
            f" {COW_RSS_FRACTION:.0%} of a full model copy"
            f" ({model_copy_bytes / 1e6:.2f} MB) — CoW is leaking whole-model"
            " copies into the workers"
        )

    payload = {
        "bench_id": "scaleout",
        "title": "Campaign scale-out: shared-arena pool vs serial",
        "smoke": args.smoke,
        "fault_models": fault_models,
        "overall": overall,
        "manifest": build_manifest(
            seed=SEED,
            config={
                "bench": "scaleout",
                "smoke": args.smoke,
                "trials": n_trials,
                "workers": worker_counts,
            },
            command="bench:scaleout",
        ),
    }

    from conftest import write_bench_json

    out, root_copy = write_bench_json("scaleout", payload, out=args.out)
    print(f"wrote {out} (+ {root_copy})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
