"""Figure 14: MoE vs dense resilience by task type."""

import numpy as np

from repro.harness.experiments import fig14_moe_vs_dense


def test_bench_fig14(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig14_moe_vs_dense, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    assert len(result.rows) == 8  # 4 tasks x {moe, dense}
    normalized = [r["normalized"] for r in result.rows]
    assert all(np.isnan(v) or v >= 0 for v in normalized)
