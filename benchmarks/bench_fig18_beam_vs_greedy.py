"""Figure 18: beam search vs greedy under computational faults."""

import numpy as np

from repro.harness.experiments import fig18_beam_vs_greedy


def test_bench_fig18(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig18_beam_vs_greedy, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # Observation #9 shape: averaged over the evaluated cells, beam
    # search should not be less resilient than greedy.
    greedy = [
        r["normalized"] for r in result.rows
        if r["strategy"] == "greedy" and np.isfinite(r["normalized"])
    ]
    beam = [
        r["normalized"] for r in result.rows
        if r["strategy"] == "beam" and np.isfinite(r["normalized"])
    ]
    assert np.mean(beam) >= np.mean(greedy) - 0.05
