"""Table 2: floating-point format layouts and ranges."""

from repro.harness.experiments import table2_formats


def test_bench_table2(benchmark, ctx, emit):
    result = benchmark.pedantic(table2_formats, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    by_name = {row["format"]: row for row in result.rows}
    assert by_name["FP16"]["max_finite"] == 65504.0
    assert by_name["BF16"]["exp_bits"] == by_name["FP32"]["exp_bits"] == 8
