"""Figure 10: distorted outputs come only from top exponent bits."""

import os

from repro.harness.experiments import fig10_bit_positions_distorted


def test_bench_fig10(benchmark, ctx, emit):
    n_trials = int(os.environ.get("REPRO_BENCH_BIT_TRIALS", 90))
    result = benchmark.pedantic(
        fig10_bit_positions_distorted,
        kwargs={"ctx": ctx, "n_trials": n_trials},
        rounds=1,
        iterations=1,
    )
    emit(result)
    # Paper: the proportion is 0 for mantissa bits — low-bit flips can
    # never distort output structure.  BF16 mantissa = bits 0..6.
    low_bits = [r for r in result.rows if r["highest_bit"] < 7]
    assert all(r["count"] == 0 for r in low_bits)
