"""Shared fixtures for the benchmark harness.

Each bench reproduces one paper table/figure over the trained zoo
models (built on first use and cached under ``artifacts/``).  Results
are printed and archived under ``artifacts/results/`` so EXPERIMENTS.md
can cite them.

Scale knobs: ``REPRO_BENCH_TRIALS`` / ``REPRO_BENCH_EXAMPLES`` override
the bench-friendly defaults (the paper's own scale is 100 examples and
500-3000 trials per cell).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentContext, ExperimentResult, format_table
from repro.zoo import artifacts_dir


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        n_examples=int(os.environ.get("REPRO_BENCH_EXAMPLES", 8)),
        n_trials=int(os.environ.get("REPRO_BENCH_TRIALS", 36)),
        seed=20251116,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = artifacts_dir() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a result table and archive it under artifacts/results/."""

    def _emit(result: ExperimentResult) -> ExperimentResult:
        text = format_table(result)
        print("\n" + text)
        (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
        return result

    return _emit
