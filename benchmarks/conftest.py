"""Shared fixtures for the benchmark harness.

Each bench reproduces one paper table/figure over the trained zoo
models (built on first use and cached under ``artifacts/``).  Results
are printed and archived under ``artifacts/results/`` so EXPERIMENTS.md
can cite them.

Scale knobs: ``REPRO_BENCH_TRIALS`` / ``REPRO_BENCH_EXAMPLES`` override
the bench-friendly defaults (the paper's own scale is 100 examples and
500-3000 trials per cell).
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.harness import ExperimentContext, ExperimentResult, format_table
from repro.obs import MetricsRegistry, build_manifest
from repro.zoo import artifacts_dir

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(
    bench_id: str, payload: dict, out: str | Path | None = None
) -> tuple[Path, Path]:
    """Archive a standalone bench's JSON payload, plus a repo-root copy.

    The canonical artifact lands at ``artifacts/results/BENCH_<id>.json``
    (or ``out`` when given); a copy named ``BENCH_<id>.json`` is kept at
    the repo root so the headline numbers ship with the tree.  Returns
    ``(out_path, root_copy_path)``.  Shared by the standalone benches
    (``bench_engine_throughput``/``bench_decode_throughput``/
    ``bench_speculative``), which previously each carried their own
    copy of this logic.
    """
    out = Path(
        out or REPO_ROOT / "artifacts" / "results" / f"BENCH_{bench_id}.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    out.write_text(text)
    root_copy = REPO_ROOT / f"BENCH_{bench_id}.json"
    root_copy.write_text(text)
    return out, root_copy


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        n_examples=int(os.environ.get("REPRO_BENCH_EXAMPLES", 8)),
        n_trials=int(os.environ.get("REPRO_BENCH_TRIALS", 36)),
        seed=20251116,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = artifacts_dir() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir, ctx):
    """Print a result table and archive it under artifacts/results/.

    Besides the human-readable ``<id>.txt``, every emit writes a
    machine-readable ``BENCH_<id>.json`` (trial counts, wall time since
    the previous emit, normalized-performance quantiles, a metrics
    snapshot and the run manifest) so the perf trajectory across PRs is
    diffable.
    """
    state = {"last": time.perf_counter()}

    def _emit(result: ExperimentResult) -> ExperimentResult:
        now = time.perf_counter()
        wall_s = now - state["last"]
        state["last"] = now
        text = format_table(result)
        print("\n" + text)
        (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")

        registry = MetricsRegistry()
        registry.counter("bench.rows").add(len(result.rows))
        registry.histogram("bench.wall_s").observe(wall_s)
        for row in result.rows:
            value = row.get("normalized")
            if isinstance(value, (int, float)) and math.isfinite(value):
                registry.histogram("bench.normalized").observe(float(value))
        payload = {
            "bench_id": result.experiment_id,
            "title": result.title,
            "wall_s": wall_s,
            "n_rows": len(result.rows),
            "trials_per_cell": ctx.n_trials,
            "examples_per_cell": ctx.n_examples,
            "normalized": registry.histogram("bench.normalized").summary(),
            "metrics": registry.snapshot(),
            "manifest": build_manifest(
                seed=ctx.seed,
                config={
                    "bench": result.experiment_id,
                    "trials": ctx.n_trials,
                    "examples": ctx.n_examples,
                },
                command=f"bench:{result.experiment_id}",
            ),
        }
        (results_dir / f"BENCH_{result.experiment_id}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )
        return result

    return _emit
