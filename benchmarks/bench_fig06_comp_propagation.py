"""Figure 6: computational-fault propagation (single row, contained)."""

from repro.harness.experiments import fig06_computational_propagation


def test_bench_fig06(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig06_computational_propagation, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    injected = result.rows[0]
    next_layer = result.rows[1]
    assert injected["corrupted_rows"] == 1
    assert next_layer["corrupted_rows"] == 1  # still one token
    # Containment: far below the memory fault's near-total corruption.
    assert next_layer["corrupted_fraction"] < 0.5
