"""Continuous-batched decode micro-benchmark.

Measures, against the same weights and in the same process:

* greedy decode throughput — the serial reference loop (one forward per
  sequence per token) versus :class:`repro.generation.BatchedDecoder`
  stepping all prompts as one batched forward per token over a pooled
  KV cache;
* beam search — per-beam serial sessions with ``Session.fork`` deep
  copies versus the k-beams-as-batch-rows rewrite with copy-on-fork
  inside the pool.

Before timing, the batched outputs are asserted identical to the serial
ones (token-for-token); the script exits non-zero on any mismatch, so
CI runs double as an equivalence gate.

Writes ``BENCH_decode.json`` under ``artifacts/results/`` and copies it
to the repo root.  Standalone (no pytest-benchmark) so CI can run it in
``--smoke`` mode::

    PYTHONPATH=src python benchmarks/bench_decode_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.generation import (
    BatchedDecoder,
    GenerationConfig,
    beam_search_decode,
    greedy_decode,
)
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import build_manifest

SEED = 20260807
# eos outside the sampled-token range: throughput runs never stop early.
NO_EOS = -1


def _engine(smoke: bool) -> InferenceEngine:
    config = ModelConfig(
        vocab_size=256,
        d_model=64 if smoke else 96,
        n_heads=4 if smoke else 6,
        n_blocks=3 if smoke else 4,
        d_ff=128 if smoke else 192,
        max_seq=192,
    )
    return InferenceEngine(TransformerLM(config, seed=11).to_store())


def _prompts(n: int) -> list[list[int]]:
    rng = np.random.default_rng(SEED)
    # Varied lengths so retirement is ragged and slots actually refill.
    return [
        [int(t) for t in rng.integers(3, 250, size=int(rng.integers(8, 24)))]
        for _ in range(n)
    ]


def _timed(fn, reps: int) -> float:
    """Best-effort wall seconds for ``reps`` calls (min over 3 rounds)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_greedy(engine: InferenceEngine, smoke: bool) -> dict:
    n_prompts = 3 if smoke else 8
    prompts = _prompts(n_prompts)
    new_tokens = 12 if smoke else 32
    config = GenerationConfig(max_new_tokens=new_tokens, eos_id=NO_EOS)
    decoder = BatchedDecoder(engine, config, max_batch=n_prompts)

    serial = [greedy_decode(engine, p, config, strategy="serial") for p in prompts]
    batched = decoder.decode_many(prompts)
    if batched != serial:
        raise SystemExit("batched greedy decode diverged from serial reference")

    reps = 1 if smoke else 2
    wall_serial = _timed(
        lambda: [
            greedy_decode(engine, p, config, strategy="serial") for p in prompts
        ],
        reps,
    )
    wall_batched = _timed(lambda: decoder.decode_many(prompts), reps)
    total = reps * n_prompts * new_tokens
    return {
        "n_prompts": n_prompts,
        "new_tokens": new_tokens,
        "tokens_per_sec_serial": total / wall_serial,
        "tokens_per_sec_batched": total / wall_batched,
        "wall_s_serial": wall_serial,
        "wall_s_batched": wall_batched,
        "speedup": wall_serial / wall_batched,
        "outputs_identical": True,
    }


def bench_beam(engine: InferenceEngine, smoke: bool) -> dict:
    prompt = _prompts(1)[0]
    new_tokens = 8 if smoke else 16
    config = GenerationConfig(
        max_new_tokens=new_tokens, eos_id=NO_EOS, num_beams=4
    )
    decoder = BatchedDecoder(engine, config)

    serial = beam_search_decode(engine, prompt, config, strategy="serial")
    batched = decoder.beam_decode(prompt)
    if batched != serial:
        raise SystemExit("batched beam search diverged from serial reference")

    reps = 1 if smoke else 2
    wall_serial = _timed(
        lambda: beam_search_decode(engine, prompt, config, strategy="serial"),
        reps,
    )
    wall_batched = _timed(lambda: decoder.beam_decode(prompt), reps)
    return {
        "num_beams": config.num_beams,
        "new_tokens": new_tokens,
        "wall_s_serial": wall_serial,
        "wall_s_batched": wall_batched,
        "speedup": wall_serial / wall_batched,
        "outputs_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args(argv)

    engine = _engine(args.smoke)
    greedy = bench_greedy(engine, args.smoke)
    beam = bench_beam(engine, args.smoke)

    payload = {
        "bench_id": "decode",
        "title": "Continuous-batched decoding over a pooled KV cache",
        "smoke": args.smoke,
        "greedy": greedy,
        "beam": beam,
        "manifest": build_manifest(
            seed=SEED,
            config={"bench": "decode", "smoke": args.smoke},
            command="bench:decode_throughput",
        ),
    }

    from conftest import write_bench_json

    out, root_copy = write_bench_json("decode", payload, out=args.out)
    print(
        f"greedy: {greedy['speedup']:.2f}x"
        f" ({greedy['tokens_per_sec_serial']:.1f} ->"
        f" {greedy['tokens_per_sec_batched']:.1f} tokens/sec,"
        f" batch={greedy['n_prompts']})"
    )
    print(f"beam: {beam['speedup']:.2f}x (k={beam['num_beams']})")
    print(f"wrote {out} (+ {root_copy})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
