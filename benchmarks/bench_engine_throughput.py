"""Engine-throughput micro-benchmark: the perf trajectory's first baseline.

Measures, in one process and against the same weights:

* raw greedy-decode throughput (tokens/sec);
* the MC-campaign micro-benchmark — 4-option scoring and generative
  trials with iteration >= 1 computational faults — with this PR's
  optimizations (shared-prefix batched option scoring, trial-level
  prefill caching) versus the unoptimized reference path, measured in
  the same run so the speedup is apples-to-apples.

Writes ``BENCH_engine.json`` under ``artifacts/results/`` (override
with ``--out``).  Unlike the figure benches this is a standalone script
(no pytest-benchmark dependency) so CI can run it in ``--smoke`` mode::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.fi import ComputationalFaultInjector, FaultModel, FaultSite
from repro.generation import GenerationConfig, choose_option, generate_ids
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import build_manifest

SEED = 20260807
# eos outside the sampled-token range: throughput runs never stop early.
NO_EOS = -1


def _engine(smoke: bool) -> InferenceEngine:
    config = ModelConfig(
        vocab_size=256,
        d_model=64 if smoke else 96,
        n_heads=4 if smoke else 6,
        n_blocks=3 if smoke else 4,
        d_ff=128 if smoke else 192,
        max_seq=192,
    )
    return InferenceEngine(TransformerLM(config, seed=11).to_store())


def _timed(fn, reps: int) -> float:
    """Best-effort wall seconds for ``reps`` calls (min over 3 rounds)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_decode(engine: InferenceEngine, smoke: bool) -> dict:
    rng = np.random.default_rng(SEED)
    prompt = [int(t) for t in rng.integers(3, 250, size=16)]
    new_tokens = 16 if smoke else 32
    config = GenerationConfig(max_new_tokens=new_tokens, eos_id=NO_EOS)
    reps = 2 if smoke else 4
    wall = _timed(lambda: generate_ids(engine, prompt, config), reps)
    return {
        "prompt_tokens": len(prompt),
        "new_tokens": new_tokens,
        "tokens_per_sec": reps * new_tokens / wall,
    }


def bench_mc_scoring(engine: InferenceEngine, smoke: bool) -> dict:
    """4-option MC scoring: shared-prefix batched vs. per-option full."""
    rng = np.random.default_rng(SEED + 1)
    prompt = [int(t) for t in rng.integers(3, 250, size=96)]
    options = [[int(t) for t in rng.integers(3, 250, size=2)] for _ in range(4)]
    reps = 4 if smoke else 12

    def run(strategy: str) -> None:
        choose_option(engine, prompt, options, strategy=strategy)

    wall_ref = _timed(lambda: run("full"), reps)
    wall_opt = _timed(lambda: run("auto"), reps)
    return {
        "prompt_tokens": len(prompt),
        "n_options": len(options),
        "option_tokens": len(options[0]),
        "trials_per_sec_reference": reps / wall_ref,
        "trials_per_sec_optimized": reps / wall_opt,
        "wall_s_reference": wall_ref,
        "wall_s_optimized": wall_opt,
        "speedup": wall_ref / wall_opt,
    }


def bench_prefill_cached_trials(engine: InferenceEngine, smoke: bool) -> dict:
    """Generative FI trials with iteration >= 1 computational faults.

    The fault-free iteration-0 forward of every such trial is identical
    to the baseline's, so the optimized path clones one cached prefill
    instead of re-running the prompt.  Fault sites cycle deterministically
    over layers/iterations >= 1 — exactly the trial class the cache serves.
    """
    rng = np.random.default_rng(SEED + 2)
    prompt = [int(t) for t in rng.integers(3, 250, size=128)]
    config = GenerationConfig(max_new_tokens=4, eos_id=NO_EOS)
    layers = engine.linear_layer_names()
    n_trials = 6 if smoke else 16
    sites = [
        FaultSite(
            fault_model=FaultModel.COMP_2BIT,
            layer_name=layers[i % len(layers)],
            row=0,
            col=i % 7,
            bits=(1 + i % 8, 12 + i % 8),
            iteration=1 + i % config.max_new_tokens if config.max_new_tokens > 1 else 1,
            row_frac=0.5,
        )
        for i in range(n_trials)
    ]

    def run_reference() -> None:
        for site in sites:
            with ComputationalFaultInjector(engine, site):
                generate_ids(engine, prompt, config)

    base = engine.start_session(prompt)

    def run_optimized() -> None:
        for site in sites:
            with ComputationalFaultInjector(engine, site):
                generate_ids(engine, prompt, config, session=base.fork())

    wall_ref = _timed(run_reference, 1)
    wall_opt = _timed(run_optimized, 1)
    return {
        "prompt_tokens": len(prompt),
        "new_tokens": config.max_new_tokens,
        "n_trials": n_trials,
        "trials_per_sec_reference": n_trials / wall_ref,
        "trials_per_sec_optimized": n_trials / wall_opt,
        "wall_s_reference": wall_ref,
        "wall_s_optimized": wall_opt,
        "speedup": wall_ref / wall_opt,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args(argv)

    engine = _engine(args.smoke)
    decode = bench_decode(engine, args.smoke)
    mc = bench_mc_scoring(engine, args.smoke)
    trials = bench_prefill_cached_trials(engine, args.smoke)
    wall_ref = mc["wall_s_reference"] + trials["wall_s_reference"]
    wall_opt = mc["wall_s_optimized"] + trials["wall_s_optimized"]

    payload = {
        "bench_id": "engine",
        "title": "Engine throughput: batched option scoring + prefill caching",
        "smoke": args.smoke,
        "decode": decode,
        "mc_option_scoring": mc,
        "prefill_cached_trials": trials,
        "mc_campaign_microbench": {
            "description": (
                "4-option MC scoring + generative trials with"
                " iteration>=1 computational faults; optimized vs."
                " unoptimized path timed in the same run"
            ),
            "wall_s_reference": wall_ref,
            "wall_s_optimized": wall_opt,
            "speedup": wall_ref / wall_opt,
        },
        "manifest": build_manifest(
            seed=SEED,
            config={"bench": "engine", "smoke": args.smoke},
            command="bench:engine_throughput",
        ),
    }

    from conftest import write_bench_json

    out, _ = write_bench_json("engine", payload, out=args.out)
    print(f"decode: {decode['tokens_per_sec']:.1f} tokens/sec")
    print(
        f"mc option scoring: {mc['speedup']:.2f}x"
        f" ({mc['trials_per_sec_reference']:.1f} ->"
        f" {mc['trials_per_sec_optimized']:.1f} trials/sec)"
    )
    print(
        f"prefill-cached trials: {trials['speedup']:.2f}x"
        f" ({trials['trials_per_sec_reference']:.1f} ->"
        f" {trials['trials_per_sec_optimized']:.1f} trials/sec)"
    )
    print(
        "mc-campaign micro-benchmark:"
        f" {payload['mc_campaign_microbench']['speedup']:.2f}x"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
