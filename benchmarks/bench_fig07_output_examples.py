"""Figures 7/12: concrete subtle-wrong and distorted output examples."""

from repro.harness.experiments import fig07_output_examples


def test_bench_fig07(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig07_output_examples, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # At least one SDC example should surface from a memory campaign.
    assert len(result.rows) >= 1
    for row in result.rows:
        assert row["kind"] in ("sdc-subtle", "sdc-distorted")
