"""Runtime microbenchmarks of the inference substrate itself.

These use pytest-benchmark's statistical timing (multiple rounds) to
track the engine's raw speed: prefill throughput, incremental decode
latency, option scoring, and fault-injection overhead.  They guard
against performance regressions in the substrate that the campaign
experiments run on.
"""

import numpy as np
import pytest

from repro.fi import FaultModel, FaultSite, MemoryFaultInjector
from repro.generation import GenerationConfig, generate_ids
from repro.inference import InferenceEngine
from repro.zoo import default_tokenizer, load_model


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(load_model("qwenlike-base", verbose=False))


@pytest.fixture(scope="module")
def tokenizer():
    return default_tokenizer()


def test_bench_prefill(benchmark, engine, tokenizer):
    prompt = tokenizer.encode(
        "context : alice lives in paris . bob works as a baker . question :"
        " where does alice live ? answer :"
    )
    logits = benchmark(engine.forward_full, prompt)
    assert logits.shape[0] == len(prompt)


def test_bench_decode_16_tokens(benchmark, engine, tokenizer):
    prompt = tokenizer.encode("translate : de kato visas un hundo =")
    config = GenerationConfig(max_new_tokens=16, eos_id=tokenizer.vocab.eos_id)

    out = benchmark(generate_ids, engine, prompt, config)
    assert isinstance(out, list)


def test_bench_beam4_decode(benchmark, engine, tokenizer):
    prompt = tokenizer.encode("translate : de kato visas un hundo =")
    config = GenerationConfig(
        max_new_tokens=12, num_beams=4, eos_id=tokenizer.vocab.eos_id
    )
    out = benchmark(generate_ids, engine, prompt, config)
    assert isinstance(out, list)


def test_bench_memory_injection_overhead(benchmark, engine):
    """Flip + restore must be microseconds — campaigns do it per trial."""
    site = FaultSite(
        FaultModel.MEM_2BIT, "blocks.0.up_proj", 3, 5, bits=(30, 2)
    )

    def flip_restore():
        with MemoryFaultInjector(engine, site):
            pass

    benchmark(flip_restore)
    # The engine is pristine afterwards.
    assert np.isfinite(engine.weight_store("blocks.0.up_proj").array).all()
