"""Figure 15: memory faults restricted to MoE gate (router) layers."""

from repro.harness.experiments import fig15_gate_faults


def test_bench_fig15(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig15_gate_faults, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    # Router faults frequently flip expert selections (paper: 78.6%) -
    # require a clearly nonzero rate; exact value depends on substrate.
    assert row["selection_changed_rate"] > 0.2
    # Quality degrades only mildly (paper: ~2%).
    assert row["bleu_normalized"] > 0.5
