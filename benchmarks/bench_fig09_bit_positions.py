"""Figure 9: subtle-SDC proportion by highest flipped bit position."""

import os

from repro.harness.experiments import fig09_bit_positions_subtle


def test_bench_fig09(benchmark, ctx, emit):
    n_trials = int(os.environ.get("REPRO_BENCH_BIT_TRIALS", 90))
    result = benchmark.pedantic(
        fig09_bit_positions_subtle,
        kwargs={"ctx": ctx, "n_trials": n_trials},
        rounds=1,
        iterations=1,
    )
    emit(result)
    # SDC-producing bits should skew high: the weighted-mean bit of
    # subtle SDCs exceeds the middle of the fp32 bit range rarely hit
    # by low mantissa bits.
    weighted = [
        (row["highest_bit"], row["count"]) for row in result.rows if row["count"]
    ]
    if weighted:
        mean_bit = sum(b * c for b, c in weighted) / sum(c for _, c in weighted)
        assert mean_bit > 10.0
