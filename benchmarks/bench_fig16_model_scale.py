"""Figure 16: resilience across the qwenlike scale sweep."""

import numpy as np

from repro.harness.experiments import fig16_model_scale


def test_bench_fig16(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig16_model_scale, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # Obs #7: model scale is not a major resilience factor — the
    # normalized performance spread across sizes stays bounded and
    # shows no monotone trend.
    values = [r["normalized"] for r in result.rows if np.isfinite(r["normalized"])]
    assert values
    per_size: dict[int, list[float]] = {}
    for row in result.rows:
        if np.isfinite(row["normalized"]):
            per_size.setdefault(row["d_model"], []).append(row["normalized"])
    means = [np.mean(v) for _, v in sorted(per_size.items())]
    diffs = np.diff(means)
    assert not (all(d > 0.02 for d in diffs) or all(d < -0.02 for d in diffs)), (
        "scale sweep should not show a strictly monotone resilience trend"
    )
