"""Figure 17: GPTQ-quantized variants vs BF16 under memory faults."""

import numpy as np

from repro.harness.experiments import fig17_quantization


def test_bench_fig17(benchmark, ctx, emit):
    result = benchmark.pedantic(
        fig17_quantization, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)

    def mean_norm(variant: str) -> float:
        vals = [
            r["normalized"]
            for r in result.rows
            if r["variant"] == variant and np.isfinite(r["normalized"])
        ]
        return float(np.mean(vals))

    # Observation #8: quantized storage is *more* resilient than BF16
    # because an integer-code flip cannot produce 2^128-scale values.
    assert mean_norm("GPTQ-8bit") >= mean_norm("BF16") - 0.02
    assert mean_norm("GPTQ-4bit") >= mean_norm("BF16") - 0.02
