"""Table 1: the workload roster (tasks x datasets x metrics x models)."""

from repro.harness.experiments import table1_workloads


def test_bench_table1(benchmark, ctx, emit):
    result = benchmark.pedantic(table1_workloads, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 9
    kinds = {row["kind"] for row in result.rows}
    assert kinds == {"multiple_choice", "generative"}
