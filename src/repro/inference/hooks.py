"""Forward-hook mechanism mirroring ``torch.nn.Module`` hooks.

The paper injects computational faults through PyTorch forward hooks:
"the hook function modifies the output tensor and the modified version
is used in the following data path."  Our engine calls every registered
hook with the freshly computed output of the named linear layer; a hook
may return a replacement array (or mutate in place and return None).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["HookContext", "HookFn", "HookManager"]


@dataclass(frozen=True)
class HookContext:
    """Where and when a layer output was produced.

    ``iteration`` counts token-generation iterations: the prompt
    prefill is iteration 0 and each subsequently generated token
    increments it — the granularity at which the paper samples
    computational-fault timing.

    The hooked output is normally ``(t, features)``.  Under the
    engine's batched forward (shared-prefix option scoring) it carries
    a leading batch axis — ``(B, t, features)`` — with one slice per
    scored option/hypothesis; batched forwards are only taken when
    ``InferenceEngine.fi_active()`` is false, so fault-injection hooks
    never observe batched tensors unless registered mid-flight.

    Under the engine's *batched decode step*
    (:meth:`InferenceEngine.forward_step_batch`) hooks are instead
    applied once per batch row, each invocation receiving that row's
    ``(1, features)`` slice — exactly the serial single-token shape —
    with ``batch_row`` set to the row index and ``iteration`` to the
    row's own generation-iteration count.  ``batch_row`` is ``None`` on
    every unbatched forward, so a hook that targets one sequence of a
    batch can filter on it (the continuous-batching FI gate).
    """

    block: int
    layer: str
    iteration: int
    full_name: str
    batch_row: int | None = None


HookFn = Callable[[np.ndarray, HookContext], "np.ndarray | None"]


class HookManager:
    """Registry of output hooks keyed by full layer name."""

    def __init__(self) -> None:
        self._hooks: dict[str, list[HookFn]] = {}
        self._unscoped = 0
        self._perturbing = 0

    def register(
        self,
        layer_name: str,
        fn: HookFn,
        row_scoped: bool = False,
        observer: bool = False,
    ) -> Callable[[], None]:
        """Attach ``fn`` to a layer; returns a detach handle.

        ``row_scoped=True`` declares that the hook confines its effect
        to the single tensor slice it is handed — per-row application
        under a batched decode step then perturbs exactly one sequence.
        Batched decoding stays enabled under armed fault machinery only
        while *every* registered hook makes this promise
        (:meth:`all_row_scoped`); an unscoped hook forces the serial
        fallback.

        ``observer=True`` makes the stronger promise that the hook
        never alters the tensor at all (no mutation, always returns
        ``None``) — a pure probe such as layer timing.  Fast paths
        that reshuffle the iteration → forward mapping (speculative
        decoding) stay enabled only while every hook is an observer
        (:meth:`all_observers`); anything that perturbs outputs keys
        on which forward it fires in, so it forces the exact serial
        loop.
        """
        self._hooks.setdefault(layer_name, []).append(fn)
        if not row_scoped:
            self._unscoped += 1
        if not observer:
            self._perturbing += 1
        removed = False

        def remove() -> None:
            nonlocal removed
            callbacks = self._hooks.get(layer_name, [])
            if fn in callbacks:
                callbacks.remove(fn)
                if not callbacks:
                    del self._hooks[layer_name]
                if not removed:
                    if not row_scoped:
                        self._unscoped -= 1
                    if not observer:
                        self._perturbing -= 1
                removed = True

        return remove

    def clear(self) -> None:
        self._hooks.clear()
        self._unscoped = 0
        self._perturbing = 0

    def all_row_scoped(self) -> bool:
        """True when every registered hook declared row-scoped effects."""
        return self._unscoped == 0

    def all_observers(self) -> bool:
        """True when every registered hook declared itself a pure probe."""
        return self._perturbing == 0

    def __len__(self) -> int:
        return sum(len(v) for v in self._hooks.values())

    def has(self, layer_name: str) -> bool:
        return layer_name in self._hooks

    def apply(self, output: np.ndarray, ctx: HookContext) -> np.ndarray:
        """Run all hooks for ``ctx.full_name`` over ``output`` in order."""
        for fn in self._hooks.get(ctx.full_name, ()):  # fast path: empty
            replacement = fn(output, ctx)
            if replacement is not None:
                output = replacement
        return output
