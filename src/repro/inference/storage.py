"""Weight-storage policies: how parameters live in (faultable) memory.

The paper's memory fault model flips bits in a weight *as stored*:
BF16/FP16/FP32 bit patterns for the dtype study (Fig. 21) and integer
codes for the GPTQ-quantized study (Fig. 17).  A storage policy owns
the stored representation, exposes a float32 ``array`` for compute
(GPU-style wide accumulation), and implements bit flips on the stored
form with exact restoration — campaigns flip the same bits back after
every run so each trial starts from a pristine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.numerics.formats import (
    FloatFormat,
    flip_bits,
    from_bits,
    get_format,
    to_bits,
)
from repro.numerics.quantized import QuantizedMatrix, quantize_matrix

__all__ = [
    "RestoreToken",
    "WeightStore",
    "FloatWeightStore",
    "QuantizedWeightStore",
    "make_weight_store",
]


@dataclass(frozen=True)
class RestoreToken:
    """Opaque receipt for undoing a weight corruption."""

    row: int
    col: int
    stored_value: object  # raw bit pattern (float store) or code (quantized)
    compute_value: float


class WeightStore(Protocol):
    """Protocol implemented by every storage policy."""

    @property
    def array(self) -> np.ndarray:
        """Float32 view used by compute (already dequantized/rounded)."""

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def n_storage_bits(self) -> int:
        """Bit width of one stored element (fault-site address space)."""

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken: ...

    def restore(self, token: RestoreToken) -> None: ...


class FloatWeightStore:
    """Weights stored as FP32/FP16/BF16 bit patterns.

    The compute array holds the format-rounded float32 values; flips
    act on the stored integer patterns and update the compute array in
    place, so downstream matmuls see the corruption with no copies.
    """

    def __init__(self, weight: np.ndarray, fmt: str | FloatFormat = "fp32") -> None:
        self.fmt = get_format(fmt)
        self._bits = to_bits(np.asarray(weight, np.float32), self.fmt)
        self._array = from_bits(self._bits, self.fmt)

    @property
    def array(self) -> np.ndarray:
        return self._array

    @property
    def shape(self) -> tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    @property
    def n_storage_bits(self) -> int:
        return self.fmt.bits

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken:
        old_bits = self._bits[row, col]
        token = RestoreToken(row, col, old_bits, float(self._array[row, col]))
        new_bits = flip_bits(
            np.asarray(old_bits)[None], positions, self.fmt
        )[0]
        self._bits[row, col] = new_bits
        self._array[row, col] = from_bits(np.asarray(new_bits)[None], self.fmt)[0]
        return token

    def restore(self, token: RestoreToken) -> None:
        self._bits[token.row, token.col] = token.stored_value
        self._array[token.row, token.col] = token.compute_value


class QuantizedWeightStore:
    """Weights stored as GPTQ-style group-quantized integer codes."""

    def __init__(
        self, weight: np.ndarray, nbits: int, group_size: int = 32
    ) -> None:
        self.quantized: QuantizedMatrix = quantize_matrix(
            weight, nbits=nbits, group_size=group_size
        )
        self._array = self.quantized.dequantize()

    @property
    def array(self) -> np.ndarray:
        return self._array

    @property
    def shape(self) -> tuple[int, int]:
        return self.quantized.shape

    @property
    def n_storage_bits(self) -> int:
        return self.quantized.nbits

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken:
        token = RestoreToken(row, col, None, float(self._array[row, col]))
        old_code = self.quantized.flip_code_bits(row, col, positions)
        token = RestoreToken(row, col, old_code, token.compute_value)
        self._array[row, col] = self.quantized.dequantize_element(row, col)
        return token

    def restore(self, token: RestoreToken) -> None:
        self.quantized.set_code(token.row, token.col, int(token.stored_value))
        self._array[token.row, token.col] = token.compute_value


def make_weight_store(weight: np.ndarray, policy: str) -> WeightStore:
    """Build a storage policy by name.

    ``policy`` is one of ``fp32``, ``fp16``, ``bf16``, ``int8``,
    ``int4`` (the paper's BF16 baseline plus its GPTQ-8bit / GPTQ-4bit
    variants and the dtype-study formats).
    """
    policy = policy.lower()
    if policy in ("fp32", "fp16", "bf16"):
        return FloatWeightStore(weight, policy)
    if policy == "int8":
        return QuantizedWeightStore(weight, nbits=8)
    if policy == "int4":
        return QuantizedWeightStore(weight, nbits=4)
    raise KeyError(f"unknown storage policy {policy!r}")
