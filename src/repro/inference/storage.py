"""Weight-storage policies: how parameters live in (faultable) memory.

The paper's memory fault model flips bits in a weight *as stored*:
BF16/FP16/FP32 bit patterns for the dtype study (Fig. 21) and integer
codes for the GPTQ-quantized study (Fig. 17).  A storage policy owns
the stored representation, exposes a float32 ``array`` for compute
(GPU-style wide accumulation), and implements bit flips on the stored
form with exact restoration — campaigns flip the same bits back after
every run so each trial starts from a pristine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.numerics.formats import (
    FloatFormat,
    flip_bits,
    from_bits,
    get_format,
    to_bits,
)
from repro.numerics.quantized import QuantizedMatrix, quantize_matrix

__all__ = [
    "RestoreToken",
    "WeightStore",
    "FloatWeightStore",
    "QuantizedWeightStore",
    "make_weight_store",
    "attach_weight_store",
]


@dataclass(frozen=True)
class RestoreToken:
    """Opaque receipt for undoing a weight corruption."""

    row: int
    col: int
    stored_value: object  # raw bit pattern (float store) or code (quantized)
    compute_value: float


class WeightStore(Protocol):
    """Protocol implemented by every storage policy."""

    @property
    def array(self) -> np.ndarray:
        """Float32 view used by compute (already dequantized/rounded)."""

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def n_storage_bits(self) -> int:
        """Bit width of one stored element (fault-site address space)."""

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken: ...

    def restore(self, token: RestoreToken) -> None: ...

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """``(planes, meta)`` sufficient to reattach without recompute.

        Planes are the raw storage arrays (shareable read-only across
        processes); ``meta`` is the JSON-able recipe
        :func:`attach_weight_store` rebuilds the policy from.
        """

    def release_private(self) -> bool:
        """Drop a CoW-private copy once it is bit-identical to the
        shared planes again (i.e. after fault restoration), rebinding
        to the shared views.  Returns whether a release happened."""


class FloatWeightStore:
    """Weights stored as FP32/FP16/BF16 bit patterns.

    The compute array holds the format-rounded float32 values; flips
    act on the stored integer patterns and update the compute array in
    place, so downstream matmuls see the corruption with no copies.
    """

    def __init__(self, weight: np.ndarray, fmt: str | FloatFormat = "fp32") -> None:
        self.fmt = get_format(fmt)
        self._bits = to_bits(np.asarray(weight, np.float32), self.fmt)
        self._array = from_bits(self._bits, self.fmt)
        self._shared_planes: dict[str, np.ndarray] | None = None

    @property
    def array(self) -> np.ndarray:
        return self._array

    @property
    def shape(self) -> tuple[int, int]:
        return self._array.shape  # type: ignore[return-value]

    @property
    def n_storage_bits(self) -> int:
        return self.fmt.bits

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """Shareable planes: fp32 stores need only the compute array
        (the stored bits are a reinterpreting view of the same bytes);
        fp16/bf16 keep distinct bit and compute planes."""
        meta = {"kind": "float", "fmt": self.fmt.name}
        if self.fmt.bits == 32:
            planes = {"array": self._array}
        else:
            planes = {"bits": self._bits, "array": self._array}
        meta["planes"] = sorted(planes)
        return planes, meta

    @staticmethod
    def attach(planes: dict[str, np.ndarray], meta: dict) -> "FloatWeightStore":
        """Rebuild over exported planes without copying or re-encoding.

        The attached planes are typically read-only mmap views shared
        with other processes; the first bit flip copies them (see
        :meth:`_ensure_writable`), so corruption stays private to the
        flipping process while pristine tensors stay shared.
        """
        store = FloatWeightStore.__new__(FloatWeightStore)
        store.fmt = get_format(meta["fmt"])
        store._array = planes["array"]
        store._bits = (
            planes["bits"]
            if "bits" in planes
            else store._array.view(np.uint32)
        )
        store._shared_planes = dict(planes)
        return store

    def _ensure_writable(self) -> None:
        """Copy-on-write: privatize shared planes before the first flip.

        Stores attached to a read-only arena (or built directly over
        ``ParamStore.open_shared`` views) clone *only this tensor* the
        moment a weight fault targets it — sibling processes and the
        arena itself keep the pristine bytes.
        """
        if not self._array.flags.writeable:
            self._array = self._array.copy()
            if self.fmt.bits == 32:
                # fp32: stored bits are the compute array's own bytes;
                # re-view the private copy to keep them aliased.
                self._bits = self._array.view(np.uint32)
        if not self._bits.flags.writeable:
            self._bits = self._bits.copy()

    def release_private(self) -> bool:
        """Rebind to the shared-arena planes once the private copy is
        pristine again.  Without this, a long campaign would privatize
        every tensor a weight fault ever touched and a worker's RSS
        would creep toward a full model copy; with it, steady-state
        private memory is bounded by the one in-flight tensor.  The
        bit-exact comparison makes the release unconditionally safe:
        while any corruption is live the planes differ and nothing is
        released."""
        shared = self._shared_planes
        if shared is None or not self._array.flags.writeable:
            return False
        shared_array = shared["array"]
        shared_bits = shared.get("bits")
        if shared_bits is None:  # fp32: bits alias the compute bytes
            shared_bits = shared_array.view(np.uint32)
        # Compare bit patterns, not floats: exact, and NaN-proof.
        if not np.array_equal(self._bits, shared_bits):
            return False
        if self.fmt.bits != 32 and not np.array_equal(
            self._array.view(np.uint32), shared_array.view(np.uint32)
        ):
            return False
        self._array = shared_array
        self._bits = shared_bits
        return True

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken:
        self._ensure_writable()
        old_bits = self._bits[row, col]
        token = RestoreToken(row, col, old_bits, float(self._array[row, col]))
        new_bits = flip_bits(
            np.asarray(old_bits)[None], positions, self.fmt
        )[0]
        self._bits[row, col] = new_bits
        self._array[row, col] = from_bits(np.asarray(new_bits)[None], self.fmt)[0]
        return token

    def restore(self, token: RestoreToken) -> None:
        self._bits[token.row, token.col] = token.stored_value
        self._array[token.row, token.col] = token.compute_value


class QuantizedWeightStore:
    """Weights stored as GPTQ-style group-quantized integer codes."""

    def __init__(
        self, weight: np.ndarray, nbits: int, group_size: int = 32
    ) -> None:
        self.quantized: QuantizedMatrix = quantize_matrix(
            weight, nbits=nbits, group_size=group_size
        )
        self._array = self.quantized.dequantize()
        self._shared_planes: dict[str, np.ndarray] | None = None

    @property
    def array(self) -> np.ndarray:
        return self._array

    @property
    def shape(self) -> tuple[int, int]:
        return self.quantized.shape

    @property
    def n_storage_bits(self) -> int:
        return self.quantized.nbits

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        planes = {
            "codes": self.quantized.codes,
            "scales": self.quantized.scales,
            "array": self._array,
        }
        meta = {
            "kind": "quant",
            "nbits": self.quantized.nbits,
            "group_size": self.quantized.group_size,
            "planes": sorted(planes),
        }
        return planes, meta

    @staticmethod
    def attach(
        planes: dict[str, np.ndarray], meta: dict
    ) -> "QuantizedWeightStore":
        """Rebuild over exported planes — the exact codes and scales,
        not a requantization of the dequantized array."""
        store = QuantizedWeightStore.__new__(QuantizedWeightStore)
        store.quantized = QuantizedMatrix(
            codes=planes["codes"],
            scales=planes["scales"],
            nbits=int(meta["nbits"]),
            group_size=int(meta["group_size"]),
        )
        store._array = planes["array"]
        store._shared_planes = dict(planes)
        return store

    def _ensure_writable(self) -> None:
        """Copy-on-write for shared-arena attachment: flips write the
        codes and the compute array, so privatize those two planes on
        the first fault.  Scales are never written and stay shared."""
        q = self.quantized
        if not q.codes.flags.writeable:
            self.quantized = QuantizedMatrix(
                codes=q.codes.copy(),
                scales=q.scales,
                nbits=q.nbits,
                group_size=q.group_size,
            )
        if not self._array.flags.writeable:
            self._array = self._array.copy()

    def release_private(self) -> bool:
        """See :meth:`FloatWeightStore.release_private`.  All-or-nothing:
        codes *and* compute array must both match the shared planes, so
        a nested still-corrupted fault (which could leave one plane
        pristine, e.g. a zero-scale group dequantizing identically for
        any code) never gets a read-only plane under its restore."""
        shared = self._shared_planes
        q = self.quantized
        if shared is None or not (
            q.codes.flags.writeable or self._array.flags.writeable
        ):
            return False
        if not np.array_equal(q.codes, shared["codes"]):
            return False
        if not np.array_equal(
            self._array.view(np.uint32), shared["array"].view(np.uint32)
        ):
            return False
        self.quantized = QuantizedMatrix(
            codes=shared["codes"],
            scales=q.scales,
            nbits=q.nbits,
            group_size=q.group_size,
        )
        self._array = shared["array"]
        return True

    def flip_element_bits(
        self, row: int, col: int, positions: list[int]
    ) -> RestoreToken:
        self._ensure_writable()
        token = RestoreToken(row, col, None, float(self._array[row, col]))
        old_code = self.quantized.flip_code_bits(row, col, positions)
        token = RestoreToken(row, col, old_code, token.compute_value)
        self._array[row, col] = self.quantized.dequantize_element(row, col)
        return token

    def restore(self, token: RestoreToken) -> None:
        self.quantized.set_code(token.row, token.col, int(token.stored_value))
        self._array[token.row, token.col] = token.compute_value


def make_weight_store(weight: np.ndarray, policy: str) -> WeightStore:
    """Build a storage policy by name.

    ``policy`` is one of ``fp32``, ``fp16``, ``bf16``, ``int8``,
    ``int4`` (the paper's BF16 baseline plus its GPTQ-8bit / GPTQ-4bit
    variants and the dtype-study formats).
    """
    policy = policy.lower()
    if policy in ("fp32", "fp16", "bf16"):
        return FloatWeightStore(weight, policy)
    if policy == "int8":
        return QuantizedWeightStore(weight, nbits=8)
    if policy == "int4":
        return QuantizedWeightStore(weight, nbits=4)
    raise KeyError(f"unknown storage policy {policy!r}")


def attach_weight_store(
    planes: dict[str, np.ndarray], meta: dict
) -> WeightStore:
    """Rebuild a storage policy over planes exported by ``export_state``.

    Unlike :func:`make_weight_store`, nothing is re-encoded: the policy
    adopts the planes as-is (typically read-only shared-arena views),
    so the attached store is bit-identical to the exporting one.
    """
    kind = meta.get("kind")
    if kind == "float":
        return FloatWeightStore.attach(planes, meta)
    if kind == "quant":
        return QuantizedWeightStore.attach(planes, meta)
    raise KeyError(f"unknown weight-store kind {kind!r}")
