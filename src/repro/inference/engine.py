"""Fast NumPy inference engine with hooks, KV cache and storage policies.

This is the system under test for every fault-injection experiment:
a vectorised, allocation-light forward pass over a trained
:class:`~repro.model.params.ParamStore`, exposing

* **weight stores** — per-linear-layer storage policies whose stored
  bits can be flipped (memory faults, Figs 5/17/21);
* **forward hooks** — interception of each linear layer's output
  tensor (computational faults, Fig. 6);
* **activation capture** — per-layer output snapshots for the
  propagation-trace experiments (Figs 5/6) and MoE expert-selection
  records (Fig. 15);
* **sessions** — incremental decoding with a KV cache and a
  generation-iteration counter, so faults can be timed to a specific
  token-generation iteration exactly as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.autograd.functional import rms_norm_np, silu_np, softmax_np
from repro.inference.hooks import HookContext, HookManager
from repro.inference.kvcache import KVCache, PooledKVCache
from repro.inference.storage import (
    WeightStore,
    attach_weight_store,
    make_weight_store,
)
from repro.model.config import ModelConfig
from repro.model.params import ParamStore, open_arena, write_arena
from repro.model.transformer import rope_tables
from repro.obs.runtime import telemetry as _telemetry

__all__ = ["InferenceEngine", "Session", "CaptureState"]


@dataclass
class CaptureState:
    """Recorded layer outputs and expert selections for one forward."""

    layer_outputs: dict[str, np.ndarray] = field(default_factory=dict)
    expert_selections: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    """Maps ``(iteration, block)`` -> ``(tokens, top_k)`` expert indices."""


class InferenceEngine:
    """Decoder-only transformer forward pass over faultable weights."""

    def __init__(
        self,
        store: ParamStore,
        weight_policy: str = "fp32",
        activation_format: str | None = None,
    ) -> None:
        """
        Parameters
        ----------
        store:
            Trained parameters (shared naming scheme with the trainer).
        weight_policy:
            Storage policy for the FI-targetable linear layers:
            ``fp32``/``fp16``/``bf16``/``int8``/``int4``.
        activation_format:
            Float format that computational faults corrupt activations
            in.  Defaults to the weight policy when it is a float
            format, else ``fp32``.  (Injection helpers read this; the
            engine itself always computes in float32.)
        """
        self.config: ModelConfig = store.config
        self.weight_policy = weight_policy
        if activation_format is None:
            activation_format = (
                weight_policy if weight_policy in ("fp32", "fp16", "bf16") else "fp32"
            )
        self.activation_format = activation_format
        self.hooks = HookManager()
        self.capture: CaptureState | None = None
        self.weight_fault_depth = 0
        """Count of currently armed weight (memory) faults.  Maintained
        by :class:`~repro.fi.injector.MemoryFaultInjector` so fast-path
        optimizations can tell whether the stored weights are pristine."""
        self.kv_fault = None
        """Armed :class:`~repro.fi.injector.KVFaultInjector` (or None).
        The attention paths call ``kv_fault.on_append(block, cache,
        iteration)`` after each cache append so the fault can latch into
        live K/V state."""
        self.acc_fault = None
        """Armed :class:`~repro.fi.injector.AccumulatorFaultInjector`
        (or None).  :meth:`_linear` calls ``acc_fault.maybe_strike`` on
        every GEMM while armed."""

        # FI-targetable linear layers go behind storage policies; the
        # rest (norm gains, embeddings, lm_head) stay plain float32,
        # matching the paper's restriction of faults to block linears.
        self._stores: dict[str, WeightStore] = {}
        self._plain: dict[str, np.ndarray] = {}
        faultable = set(store.linear_layer_names())
        for name, array in store.items():
            base = name[: -len(".weight")] if name.endswith(".weight") else name
            if base in faultable:
                self._stores[base] = make_weight_store(array, weight_policy)
            else:
                self._plain[name] = np.ascontiguousarray(array, dtype=np.float32)

        self._cos, self._sin = rope_tables(
            self.config.head_dim, self.config.max_seq, self.config.rope_theta
        )

    # -- shared (memory-mapped) weight planes -----------------------------------

    def export_shared(self, directory: str | Path) -> Path:
        """Write every weight plane into a read-only mmap arena.

        Unlike exporting a :class:`ParamStore` (raw float32 parameters),
        this captures the engine's *policy-encoded* state — stored bit
        patterns for float policies, integer codes and group scales for
        quantized ones, plus the dequantized/rounded compute arrays —
        so :meth:`open_shared` attaches without re-encoding anything and
        is bit-identical to this engine by construction.
        """
        arrays: dict[str, np.ndarray] = {}
        store_meta: dict[str, dict] = {}
        for name, ws in self._stores.items():
            planes, meta = ws.export_state()
            store_meta[name] = meta
            for plane, array in planes.items():
                arrays[f"store:{name}:{plane}"] = array
        for name, array in self._plain.items():
            arrays[f"plain:{name}"] = array
        return write_arena(
            directory,
            arrays,
            meta={
                "kind": "engine",
                "config": self.config.to_json(),
                "weight_policy": self.weight_policy,
                "activation_format": self.activation_format,
                "stores": store_meta,
            },
        )

    @staticmethod
    def open_shared(directory: str | Path) -> "InferenceEngine":
        """Attach an engine to an arena written by :meth:`export_shared`.

        All weight planes are zero-copy read-only views into the shared
        mapping; only the (tiny, deterministic) RoPE tables are
        recomputed.  Weight-fault trials privatize the targeted tensor
        on first flip (storage-policy copy-on-write) — the arena and
        every sibling attachment stay pristine.
        """
        arrays, meta = open_arena(directory)
        if meta.get("kind") != "engine":
            raise ValueError(
                f"{directory} is not an engine arena"
                f" (kind={meta.get('kind')!r})"
            )
        engine = InferenceEngine.__new__(InferenceEngine)
        engine.config = ModelConfig.from_json(meta["config"])
        engine.weight_policy = meta["weight_policy"]
        engine.activation_format = meta["activation_format"]
        engine.hooks = HookManager()
        engine.capture = None
        engine.weight_fault_depth = 0
        engine.kv_fault = None
        engine.acc_fault = None
        engine._stores = {
            name: attach_weight_store(
                {
                    plane: arrays[f"store:{name}:{plane}"]
                    for plane in smeta["planes"]
                },
                smeta,
            )
            for name, smeta in meta["stores"].items()
        }
        engine._plain = {
            key[len("plain:"):]: array
            for key, array in arrays.items()
            if key.startswith("plain:")
        }
        engine._cos, engine._sin = rope_tables(
            engine.config.head_dim,
            engine.config.max_seq,
            engine.config.rope_theta,
        )
        return engine

    # -- weight access ---------------------------------------------------------

    def weight_store(self, layer_name: str) -> WeightStore:
        """The storage policy behind a faultable linear layer."""
        try:
            return self._stores[layer_name]
        except KeyError as exc:
            raise KeyError(
                f"{layer_name!r} is not a fault-targetable linear layer;"
                f" known: {sorted(self._stores)[:4]}..."
            ) from exc

    def linear_layer_names(self) -> list[str]:
        return list(self._stores)

    def _w(self, layer_name: str) -> np.ndarray:
        return self._stores[layer_name].array

    # -- fault-injection introspection ------------------------------------------

    def fi_active(self) -> bool:
        """Whether any fault machinery could perturb the next forward.

        True when forward hooks are registered (computational-fault
        injectors, Ranger-style detectors, timing probes) or a memory
        fault is armed (:attr:`weight_fault_depth` > 0,
        :attr:`kv_fault`, :attr:`acc_fault`).  Redundant-compute
        optimizations (shared-prefix option scoring, trial prefill
        caching) must check this and fall back to the exact unshared
        path so injected corruption propagates exactly as it would have
        without the optimization.
        """
        return (
            len(self.hooks) > 0
            or self.weight_fault_depth > 0
            or self.kv_fault is not None
            or self.acc_fault is not None
        )

    # -- forward ----------------------------------------------------------------

    def _linear(
        self,
        x: np.ndarray,
        layer_name: str,
        iteration=None,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """``x @ W`` for ``(t, D)`` or batched ``(B, t, D)`` input.

        Batched input is flattened to one ``(B*t, D)`` GEMM so all batch
        elements amortize a single large matmul (and one dispatch)
        instead of ``B`` stacked ones.

        ``iteration``/``rows`` identify *when* this GEMM runs (scalar
        generation iteration, or the per-row iteration array plus
        batch-row ids under the batched decode step) so an armed
        accumulator fault can strike its sampled reduction mid-GEMM.
        """
        w = self._w(layer_name)
        flat = x if x.ndim == 2 else x.reshape(-1, x.shape[-1])
        out = flat @ w
        if self.acc_fault is not None:
            self.acc_fault.maybe_strike(out, flat, w, layer_name, iteration, rows)
        if x.ndim == 2:
            return out
        return out.reshape(*x.shape[:-1], w.shape[1])

    def _emit(
        self,
        output: np.ndarray,
        block: int,
        layer: str,
        iteration,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Capture + hook a layer output.

        ``rows`` is ``None`` for every single-sequence forward.  Under
        the batched decode step it carries the batch-row index of each
        leading-axis slice of ``output`` (and ``iteration`` is the
        aligned per-row iteration array): hooks then run once per row
        on that row's ``(1, features)`` view — the exact serial shape —
        with :attr:`HookContext.batch_row` identifying the sequence, so
        a row-scoped fault strikes exactly one sequence of the batch.
        """
        full = f"blocks.{block}.{layer}"
        if self.hooks.has(full):
            if rows is None:
                output = self.hooks.apply(
                    output, HookContext(block, layer, iteration, full)
                )
            else:
                for i, row in enumerate(rows):
                    view = output[i : i + 1]
                    result = self.hooks.apply(
                        view,
                        HookContext(
                            block,
                            layer,
                            int(iteration[i]),
                            full,
                            batch_row=int(row),
                        ),
                    )
                    if result is not view:
                        output[i : i + 1] = result
        if self.capture is not None:
            # Captured after hooks so propagation traces see injected
            # computational faults in the injected layer's own output.
            self.capture.layer_outputs[full] = output.copy()
        return output

    def _attention(
        self,
        x: np.ndarray,
        block: int,
        cache: KVCache,
        start_pos: int,
        iteration: int,
        allowed: np.ndarray | None,
    ) -> np.ndarray:
        """Causal attention for one block.

        ``x`` is ``(t, D)`` for the incremental/prefill path (new K/V
        are appended to ``cache``) or ``(B, t, D)`` for the batched
        path, where every batch element attends to the *shared*,
        read-only prefix in ``cache`` plus its own chunk — the cache is
        not advanced.  ``allowed`` is the causal mask precomputed once
        per forward (``None`` when ``t == 1``): over all positions for
        the 2D path, over the chunk only for the batched path (the
        prefix is fully visible).
        """
        cfg = self.config
        prefix = f"blocks.{block}."
        batched = x.ndim == 3
        t = x.shape[-2]
        heads, hd = cfg.n_heads, cfg.head_dim

        q = self._emit(
            self._linear(x, prefix + "q_proj", iteration), block, "q_proj", iteration
        )
        k = self._emit(
            self._linear(x, prefix + "k_proj", iteration), block, "k_proj", iteration
        )
        v = self._emit(
            self._linear(x, prefix + "v_proj", iteration), block, "v_proj", iteration
        )

        # (..., t, D) -> (..., heads, t, hd)
        split = (*x.shape[:-1], heads, hd)
        q = q.reshape(split).swapaxes(-3, -2)
        k = k.reshape(split).swapaxes(-3, -2)
        v = v.reshape(split).swapaxes(-3, -2)

        cos = self._cos[start_pos : start_pos + t]
        sin = self._sin[start_pos : start_pos + t]

        def rot(a: np.ndarray) -> np.ndarray:
            half = hd // 2
            rotated = np.concatenate([-a[..., half:], a[..., :half]], axis=-1)
            return a * cos + rotated * sin

        q, k = rot(q), rot(k)
        scale = np.float32(hd**-0.5)
        if not batched:
            cache.append(k, v)
            if self.kv_fault is not None:
                self.kv_fault.on_append(block, cache, iteration)
            keys, values = cache.keys(), cache.values()
            scores = (q @ keys.swapaxes(-1, -2)) * scale
            if allowed is not None:
                scores = np.where(allowed[None], scores, np.float32(-1e9))
            attn = softmax_np(scores, axis=-1)
            ctx = (attn @ values).transpose(1, 0, 2).reshape(t, cfg.d_model)
        else:
            pk, pv = cache.keys(), cache.values()  # (heads, P, hd), shared
            scores_prefix = (q @ pk.swapaxes(-1, -2)) * scale  # (B, heads, t, P)
            scores_self = (q @ k.swapaxes(-1, -2)) * scale  # (B, heads, t, t)
            if allowed is not None:
                scores_self = np.where(
                    allowed[None, None], scores_self, np.float32(-1e9)
                )
            scores = np.concatenate([scores_prefix, scores_self], axis=-1)
            attn = softmax_np(scores, axis=-1)
            p = cache.length
            ctx = attn[..., :p] @ pv + attn[..., p:] @ v
            ctx = ctx.swapaxes(-3, -2).reshape(x.shape[0], t, cfg.d_model)
        return self._emit(
            self._linear(ctx, prefix + "out_proj", iteration),
            block,
            "out_proj",
            iteration,
        )

    def _mlp(
        self,
        h: np.ndarray,
        block: int,
        iteration,
        expert: int | None = None,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        prefix = f"blocks.{block}."
        tag = "" if expert is None else f"experts.{expert}."
        gate = self._emit(
            self._linear(h, prefix + tag + "gate_proj", iteration, rows),
            block,
            tag + "gate_proj",
            iteration,
            rows,
        )
        up = self._emit(
            self._linear(h, prefix + tag + "up_proj", iteration, rows),
            block,
            tag + "up_proj",
            iteration,
            rows,
        )
        out = silu_np(gate) * up
        return self._emit(
            self._linear(out, prefix + tag + "down_proj", iteration, rows),
            block,
            tag + "down_proj",
            iteration,
            rows,
        )

    def _moe(
        self,
        h: np.ndarray,
        block: int,
        iteration,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        cfg = self.config
        if h.ndim == 3:
            # Expert routing is token-wise, so the batched path flattens
            # the leading axes (expert-selection capture then records
            # (B*t, top_k) rows, batch-major).
            batch, t, d = h.shape
            return self._moe(h.reshape(batch * t, d), block, iteration).reshape(
                batch, t, d
            )
        prefix = f"blocks.{block}."
        router_logits = self._emit(
            self._linear(h, prefix + "router", iteration, rows),
            block,
            "router",
            iteration,
            rows,
        )
        t = h.shape[0]
        k = cfg.top_k
        top = np.argpartition(router_logits, -k, axis=-1)[:, -k:]
        # Order selected experts by descending logit for stable records.
        order = np.argsort(
            np.take_along_axis(router_logits, top, axis=-1), axis=-1
        )[:, ::-1]
        top = np.take_along_axis(top, order, axis=-1)
        if self.capture is not None:
            self.capture.expert_selections[(iteration, block)] = top.copy()
        gates = softmax_np(
            np.take_along_axis(router_logits, top, axis=-1), axis=-1
        )
        out = np.zeros_like(h)
        for e in range(cfg.n_experts):
            slot_mask = top == e  # (t, k)
            sel = np.nonzero(slot_mask.any(axis=-1))[0]
            if sel.size == 0:
                continue
            expert_out = self._mlp(
                h[sel],
                block,
                iteration if rows is None else iteration[sel],
                expert=e,
                rows=None if rows is None else rows[sel],
            )
            weight = (gates[sel] * slot_mask[sel]).sum(axis=-1, keepdims=True)
            out[sel] += expert_out * weight
        return out

    def forward(
        self,
        tokens: np.ndarray | list[int],
        caches: list[KVCache],
        start_pos: int,
        iteration: int,
    ) -> np.ndarray:
        """Run ``tokens`` (a chunk) through the model, filling ``caches``.

        Returns logits of shape ``(len(tokens), vocab)``.

        ``tokens`` may also be a rectangular batch of shape ``(B, t)``:
        every batch row is then scored against the *shared* prefix
        already in ``caches`` (one large matmul per linear layer instead
        of ``B`` small ones), the caches are left untouched, and logits
        come back as ``(B, t, vocab)``.  Hooks and capture observe the
        batched ``(B, t, ...)`` tensors in that mode — callers that need
        exact single-sequence fault semantics must check
        :meth:`fi_active` first and use the unbatched path.
        """
        ids = np.asarray(tokens, dtype=np.int64)
        if ids.ndim not in (1, 2):
            raise ValueError(f"tokens must be 1-D or rectangular 2-D, got {ids.shape}")
        # Corrupted weights legitimately overflow float32 (an MSB
        # exponent flip scales a value by ~2^128); inf/nan propagation
        # *is* the studied behaviour, so silence the warnings.
        tel = _telemetry()
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if not tel.active:
                return self._forward_impl(ids, caches, start_pos, iteration)
            t0 = time.perf_counter()
            tel.marks["forward_start"] = t0
            out = self._forward_impl(ids, caches, start_pos, iteration)
            metrics = tel.metrics
            metrics.histogram("engine.forward_ms").observe(
                (time.perf_counter() - t0) * 1e3
            )
            metrics.counter("engine.forward_calls").add()
            metrics.counter("engine.tokens").add(ids.size)
            if caches:
                metrics.gauge("engine.kv_occupancy").set(
                    caches[0].length / caches[0].max_seq
                )
            return out

    def _forward_impl(
        self,
        ids: np.ndarray,
        caches: list[KVCache],
        start_pos: int,
        iteration: int,
    ) -> np.ndarray:
        cfg = self.config
        x = self._plain["embed.weight"][ids]
        t = ids.shape[-1]
        # The causal mask only depends on (start_pos, t), so build it
        # once per forward instead of once per block.  Batched chunks
        # mask within the chunk only — the shared prefix is fully
        # visible to every row.
        allowed: np.ndarray | None = None
        if t > 1:
            new = np.arange(t)
            if ids.ndim == 1:
                pos = np.arange(start_pos + t)
                allowed = pos[None, :] <= (start_pos + new)[:, None]
            else:
                allowed = new[None, :] <= new[:, None]
        for b in range(cfg.n_blocks):
            prefix = f"blocks.{b}."
            h = rms_norm_np(
                x, self._plain[prefix + "attn_norm.weight"], cfg.norm_eps
            )
            x = x + self._attention(h, b, caches[b], start_pos, iteration, allowed)
            h = rms_norm_np(x, self._plain[prefix + "mlp_norm.weight"], cfg.norm_eps)
            if cfg.is_moe:
                x = x + self._moe(h, b, iteration)
            else:
                x = x + self._mlp(h, b, iteration)
        x = rms_norm_np(x, self._plain["final_norm.weight"], cfg.norm_eps)
        if x.ndim == 2:
            return x @ self._plain["lm_head.weight"]
        head = self._plain["lm_head.weight"]
        return (x.reshape(-1, x.shape[-1]) @ head).reshape(*x.shape[:-1], -1)

    def forward_step_batch(
        self,
        tokens: np.ndarray | list[int],
        row_caches: list[list[KVCache]],
        positions: np.ndarray | list[int],
        iterations: np.ndarray | list[int],
    ) -> np.ndarray:
        """One single-token decode step for ``B`` independent sequences.

        Unlike the shared-prefix batched :meth:`forward`, every batch
        row here owns its caches (``row_caches[i]`` is that row's
        per-block list — typically :class:`PooledKVCache` slot views)
        and its K/V **is appended**; per-row positions and iteration
        counts may be ragged, which is what continuous batching needs.
        The linear layers run as single flattened ``(B, D)`` GEMMs while
        the attention core runs per row against that row's own cache —
        for ``B == 1`` every operation matches the serial
        ``Session.step`` path shape-for-shape, so results are
        bit-identical and fault hooks observe identical tensors.

        Hooks are applied per row (see :meth:`_emit`); activation
        capture is not supported on this path — use the serial forward.
        Returns logits of shape ``(B, vocab)``.
        """
        ids = np.asarray(tokens, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"tokens must be a 1-D batch of ids, got {ids.shape}")
        if self.capture is not None:
            raise RuntimeError(
                "forward_step_batch does not support activation capture;"
                " use the serial per-sequence path"
            )
        if len(row_caches) != ids.shape[0]:
            raise ValueError(
                f"{ids.shape[0]} tokens but {len(row_caches)} cache rows"
            )
        pos = np.asarray(positions, dtype=np.int64)
        its = np.asarray(iterations, dtype=np.int64)
        tel = _telemetry()
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if not tel.active:
                return self._step_batch_impl(ids, row_caches, pos, its)
            t0 = time.perf_counter()
            out = self._step_batch_impl(ids, row_caches, pos, its)
            metrics = tel.metrics
            metrics.histogram("engine.forward_ms").observe(
                (time.perf_counter() - t0) * 1e3
            )
            metrics.counter("engine.forward_calls").add()
            metrics.counter("engine.tokens").add(ids.size)
            return out

    def _step_batch_impl(
        self,
        ids: np.ndarray,
        row_caches: list[list[KVCache]],
        positions: np.ndarray,
        iterations: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        rows = np.arange(ids.shape[0])
        x = self._plain["embed.weight"][ids]  # (B, D)
        cos = self._cos[positions][:, None, :]  # (B, 1, hd)
        sin = self._sin[positions][:, None, :]
        for b in range(cfg.n_blocks):
            prefix = f"blocks.{b}."
            h = rms_norm_np(
                x, self._plain[prefix + "attn_norm.weight"], cfg.norm_eps
            )
            x = x + self._attention_step(
                h, b, row_caches, cos, sin, iterations, rows
            )
            h = rms_norm_np(x, self._plain[prefix + "mlp_norm.weight"], cfg.norm_eps)
            if cfg.is_moe:
                x = x + self._moe(h, b, iterations, rows=rows)
            else:
                x = x + self._mlp(h, b, iterations, rows=rows)
        x = rms_norm_np(x, self._plain["final_norm.weight"], cfg.norm_eps)
        return x @ self._plain["lm_head.weight"]

    def _attention_step(
        self,
        x: np.ndarray,
        block: int,
        row_caches: list[list[KVCache]],
        cos: np.ndarray,
        sin: np.ndarray,
        iterations: np.ndarray,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Attention for one batched decode step: shared projections,
        per-row cache append + score/softmax/context (rows are ragged —
        each attends to its own cache's filled prefix plus itself)."""
        cfg = self.config
        prefix = f"blocks.{block}."
        heads, hd = cfg.n_heads, cfg.head_dim
        batch = x.shape[0]

        q = self._emit(
            self._linear(x, prefix + "q_proj", iterations, rows),
            block,
            "q_proj",
            iterations,
            rows,
        )
        k = self._emit(
            self._linear(x, prefix + "k_proj", iterations, rows),
            block,
            "k_proj",
            iterations,
            rows,
        )
        v = self._emit(
            self._linear(x, prefix + "v_proj", iterations, rows),
            block,
            "v_proj",
            iterations,
            rows,
        )
        q = q.reshape(batch, heads, hd)
        k = k.reshape(batch, heads, hd)
        v = v.reshape(batch, heads, hd)
        half = hd // 2

        def rot(a: np.ndarray) -> np.ndarray:
            rotated = np.concatenate([-a[..., half:], a[..., :half]], axis=-1)
            return a * cos + rotated * sin

        q, k = rot(q), rot(k)
        scale = np.float32(hd**-0.5)
        ctx = np.empty((batch, cfg.d_model), dtype=np.float32)
        for i in range(batch):
            cache = row_caches[i][block]
            cache.append(k[i][:, None, :], v[i][:, None, :])
            if self.kv_fault is not None:
                self.kv_fault.on_append(block, cache, int(iterations[i]))
            keys, values = cache.keys(), cache.values()
            scores = (q[i][:, None, :] @ keys.swapaxes(-1, -2)) * scale
            attn = softmax_np(scores, axis=-1)
            ctx[i] = (attn @ values).transpose(1, 0, 2).reshape(cfg.d_model)
        return self._emit(
            self._linear(ctx, prefix + "out_proj", iterations, rows),
            block,
            "out_proj",
            iterations,
            rows,
        )

    def forward_chunk_batch(
        self,
        tokens: np.ndarray | list[list[int]],
        row_caches: list[list[KVCache]],
        positions: np.ndarray | list[int],
        iterations: np.ndarray | list[int],
    ) -> np.ndarray:
        """Multi-token decode chunks for ``B`` independent sequences.

        The missing quadrant between :meth:`forward` and
        :meth:`forward_step_batch`: ``tokens`` is a rectangular
        ``(B, t)`` chunk batch and every row **appends to its own
        caches** (``row_caches[i]``, typically pooled slot views)
        starting at its own ``positions[i]``.  The shared-prefix 2-D
        :meth:`forward` mode scores against one read-only cache and
        :meth:`forward_step_batch` is single-token; batched speculative
        verification needs both raggedness *and* chunk width, which is
        exactly this.

        Linear layers run as single flattened ``(B*t, D)`` GEMMs; RoPE
        tables are gathered per row from the ragged positions; the
        attention core runs per row against that row's own cache
        (which, after the append, holds prefix + chunk) under the
        standard causal mask.  For ``B == 1`` every operation is
        shape-identical to the 1-D chunked :meth:`forward`, so logits
        are bit-identical to the serial speculative verify path.

        ``iterations[i]`` tags row ``i``'s chunk with its generation
        iteration (the round's first emitted-token index, matching the
        serial speculative decoder's scalar tag); an armed KV fault
        receives per-row ``on_append`` callbacks against per-row
        caches, so slot-pinned injectors latch exactly as they would on
        that row's serial decode.  Hooks observe per-row
        ``(1, t, features)`` views (only *observer* hooks are admitted
        here by the FI gates); activation capture is rejected and an
        armed accumulator fault never strikes on this path — the
        composed-decode gate matrix routes capture/acc/non-observer
        machinery to the batched or serial paths instead.

        Returns logits of shape ``(B, t, vocab)``.
        """
        ids = np.asarray(tokens, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(
                f"tokens must be a rectangular (B, t) batch, got {ids.shape}"
            )
        if self.capture is not None:
            raise RuntimeError(
                "forward_chunk_batch does not support activation capture;"
                " use the serial per-sequence path"
            )
        if self.acc_fault is not None:
            raise RuntimeError(
                "forward_chunk_batch cannot honor an armed accumulator"
                " fault (per-row strike mapping is single-token); the"
                " decode gate matrix must route acc faults to the"
                " batched or serial paths"
            )
        if len(row_caches) != ids.shape[0]:
            raise ValueError(
                f"{ids.shape[0]} chunk rows but {len(row_caches)} cache rows"
            )
        pos = np.asarray(positions, dtype=np.int64)
        its = np.asarray(iterations, dtype=np.int64)
        tel = _telemetry()
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if not tel.active:
                return self._chunk_batch_impl(ids, row_caches, pos, its)
            t0 = time.perf_counter()
            out = self._chunk_batch_impl(ids, row_caches, pos, its)
            metrics = tel.metrics
            metrics.histogram("engine.forward_ms").observe(
                (time.perf_counter() - t0) * 1e3
            )
            metrics.counter("engine.forward_calls").add()
            metrics.counter("engine.tokens").add(ids.size)
            return out

    def _chunk_batch_impl(
        self,
        ids: np.ndarray,
        row_caches: list[list[KVCache]],
        positions: np.ndarray,
        iterations: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        batch, t = ids.shape
        rows = np.arange(batch)
        offs = np.arange(t)
        x = self._plain["embed.weight"][ids]  # (B, t, D)
        # Per-row RoPE gather: row i rotates positions[i] .. positions[i]+t-1.
        gather = positions[:, None] + offs[None, :]
        cos = self._cos[gather][:, None, :, :]  # (B, 1, t, hd)
        sin = self._sin[gather][:, None, :, :]
        # Ragged prefix lengths make the causal masks per-row: the
        # prefix is fully visible, the chunk is causal within itself —
        # the same mask the 1-D chunked forward builds from start_pos.
        masks: list[np.ndarray | None]
        if t > 1:
            masks = [
                np.arange(int(p) + t)[None, :] <= (int(p) + offs)[:, None]
                for p in positions
            ]
        else:
            masks = [None] * batch
        for b in range(cfg.n_blocks):
            prefix = f"blocks.{b}."
            h = rms_norm_np(
                x, self._plain[prefix + "attn_norm.weight"], cfg.norm_eps
            )
            x = x + self._attention_chunk(
                h, b, row_caches, cos, sin, masks, iterations, rows
            )
            h = rms_norm_np(x, self._plain[prefix + "mlp_norm.weight"], cfg.norm_eps)
            if cfg.is_moe:
                x = x + self._moe(h, b, iterations, rows=rows)
            else:
                x = x + self._mlp(h, b, iterations, rows=rows)
        x = rms_norm_np(x, self._plain["final_norm.weight"], cfg.norm_eps)
        head = self._plain["lm_head.weight"]
        return (x.reshape(-1, x.shape[-1]) @ head).reshape(batch, t, -1)

    def _attention_chunk(
        self,
        x: np.ndarray,
        block: int,
        row_caches: list[list[KVCache]],
        cos: np.ndarray,
        sin: np.ndarray,
        masks: "list[np.ndarray | None]",
        iterations: np.ndarray,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Attention for one batched multi-token chunk: shared
        projections, per-row cache append + masked score/softmax/context
        (rows are ragged — each attends to its own cache's filled prefix
        plus its own chunk)."""
        cfg = self.config
        prefix = f"blocks.{block}."
        heads, hd = cfg.n_heads, cfg.head_dim
        batch, t, _ = x.shape

        q = self._emit(
            self._linear(x, prefix + "q_proj"), block, "q_proj", iterations, rows
        )
        k = self._emit(
            self._linear(x, prefix + "k_proj"), block, "k_proj", iterations, rows
        )
        v = self._emit(
            self._linear(x, prefix + "v_proj"), block, "v_proj", iterations, rows
        )
        split = (batch, t, heads, hd)
        q = q.reshape(split).swapaxes(1, 2)  # (B, heads, t, hd)
        k = k.reshape(split).swapaxes(1, 2)
        v = v.reshape(split).swapaxes(1, 2)
        half = hd // 2

        def rot(a: np.ndarray) -> np.ndarray:
            rotated = np.concatenate([-a[..., half:], a[..., :half]], axis=-1)
            return a * cos + rotated * sin

        q, k = rot(q), rot(k)
        scale = np.float32(hd**-0.5)
        ctx = np.empty((batch, t, cfg.d_model), dtype=np.float32)
        for i in range(batch):
            cache = row_caches[i][block]
            cache.append(k[i], v[i])
            if self.kv_fault is not None:
                self.kv_fault.on_append(block, cache, int(iterations[i]))
            keys, values = cache.keys(), cache.values()
            scores = (q[i] @ keys.swapaxes(-1, -2)) * scale
            if masks[i] is not None:
                scores = np.where(masks[i][None], scores, np.float32(-1e9))
            attn = softmax_np(scores, axis=-1)
            ctx[i] = (attn @ values).transpose(1, 0, 2).reshape(t, cfg.d_model)
        return self._emit(
            self._linear(ctx, prefix + "out_proj"),
            block,
            "out_proj",
            iterations,
            rows,
        )

    def new_caches(self) -> list[KVCache]:
        cfg = self.config
        return [
            KVCache(cfg.n_heads, cfg.max_seq, cfg.head_dim)
            for _ in range(cfg.n_blocks)
        ]

    def new_pool(self, n_slots: int) -> PooledKVCache:
        """A block-allocated KV arena sized for this model (one slot per
        concurrently decoding sequence)."""
        cfg = self.config
        return PooledKVCache(
            cfg.n_blocks, n_slots, cfg.n_heads, cfg.max_seq, cfg.head_dim
        )

    def forward_full(self, tokens: np.ndarray | list[int]) -> np.ndarray:
        """Single full-sequence forward (option scoring / prefill-only).

        This is generation iteration 0.
        """
        return self.forward(tokens, self.new_caches(), start_pos=0, iteration=0)

    def start_session(self, prompt: list[int]) -> "Session":
        """Prefill a prompt and return an incremental decoding session."""
        return Session(self, prompt)


class Session:
    """Incremental decoding state: KV caches + iteration counter."""

    def __init__(self, engine: InferenceEngine, prompt: list[int]) -> None:
        if not prompt:
            raise ValueError("prompt must contain at least one token")
        self.engine = engine
        self.caches = engine.new_caches()
        self.iteration = 0
        logits = engine.forward(prompt, self.caches, start_pos=0, iteration=0)
        self.last_logits: np.ndarray = logits[-1]
        self.position = len(prompt)

    def step(self, token: int) -> np.ndarray:
        """Feed one generated token; returns logits for the next one."""
        self.iteration += 1
        logits = self.engine.forward(
            [token], self.caches, start_pos=self.position, iteration=self.iteration
        )
        self.position += 1
        self.last_logits = logits[-1]
        return self.last_logits

    def fork(self) -> "Session":
        """Clone the session (caches deep-copied) for beam search."""
        clone = Session.__new__(Session)
        clone.engine = self.engine
        clone.caches = [c.clone() for c in self.caches]
        clone.iteration = self.iteration
        clone.position = self.position
        clone.last_logits = self.last_logits.copy()
        return clone
