"""Fast NumPy inference: engine, KV cache, hooks, storage policies."""

from repro.inference.engine import CaptureState, InferenceEngine, Session
from repro.inference.hooks import HookContext, HookFn, HookManager
from repro.inference.kvcache import KVCache, PooledKVCache
from repro.inference.storage import (
    FloatWeightStore,
    QuantizedWeightStore,
    RestoreToken,
    WeightStore,
    make_weight_store,
)

__all__ = [
    "CaptureState",
    "FloatWeightStore",
    "HookContext",
    "HookFn",
    "HookManager",
    "InferenceEngine",
    "KVCache",
    "PooledKVCache",
    "QuantizedWeightStore",
    "RestoreToken",
    "Session",
    "WeightStore",
    "make_weight_store",
]
