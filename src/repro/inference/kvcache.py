"""Per-block key/value cache for incremental decoding."""

from __future__ import annotations

import numpy as np

__all__ = ["KVCache"]


class KVCache:
    """Pre-allocated rolling K/V store for one transformer block.

    Shapes are ``(n_heads, max_seq, head_dim)``; ``length`` tracks the
    filled prefix.  Appending is an in-place slice write (no copies, no
    reallocation), following the buffer-reuse guidance for numerical
    Python.
    """

    def __init__(self, n_heads: int, max_seq: int, head_dim: int) -> None:
        self.k = np.zeros((n_heads, max_seq, head_dim), dtype=np.float32)
        self.v = np.zeros((n_heads, max_seq, head_dim), dtype=np.float32)
        self.length = 0

    @property
    def max_seq(self) -> int:
        return self.k.shape[1]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``(n_heads, t, head_dim)`` keys/values for new tokens."""
        t = k_new.shape[1]
        if self.length + t > self.max_seq:
            raise ValueError(
                f"KV cache overflow: {self.length} + {t} > {self.max_seq}"
            )
        self.k[:, self.length : self.length + t] = k_new
        self.v[:, self.length : self.length + t] = v_new
        self.length += t

    def keys(self) -> np.ndarray:
        """View of the filled keys, shape ``(n_heads, length, head_dim)``."""
        return self.k[:, : self.length]

    def values(self) -> np.ndarray:
        """View of the filled values, shape ``(n_heads, length, head_dim)``."""
        return self.v[:, : self.length]

    def truncate(self, length: int) -> None:
        """Roll back to a shorter prefix (used by beam search forks and
        prefix-shared option scoring, which appends option tokens and
        truncates back instead of copying the cache)."""
        if not 0 <= length <= self.length:
            raise ValueError(f"cannot truncate cache of {self.length} to {length}")
        self.length = length

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Copy of the filled prefix only: ``(keys, values, length)``.

        Much cheaper than :meth:`clone` when ``length << max_seq`` —
        the backing buffers are not duplicated; :meth:`restore` writes
        the prefix back into the existing buffers.
        """
        return self.keys().copy(), self.values().copy(), self.length

    def restore(self, snap: tuple[np.ndarray, np.ndarray, int]) -> None:
        """Rewind to a :meth:`snapshot`, reusing the existing buffers."""
        k, v, length = snap
        if length > self.max_seq:
            raise ValueError(
                f"snapshot length {length} exceeds cache capacity {self.max_seq}"
            )
        self.k[:, :length] = k
        self.v[:, :length] = v
        self.length = length

    def clone(self) -> "KVCache":
        """Deep copy (beam search keeps one cache per hypothesis)."""
        out = KVCache(self.k.shape[0], self.max_seq, self.k.shape[2])
        out.k[:, : self.length] = self.keys()
        out.v[:, : self.length] = self.values()
        out.length = self.length
        return out
