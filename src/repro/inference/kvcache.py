"""Per-block key/value caches for incremental decoding.

:class:`KVCache` is the single-sequence building block: one
pre-allocated ``(n_heads, max_seq, head_dim)`` buffer pair per
transformer block.  :class:`PooledKVCache` scales it to continuous
batching: one block-allocated arena per layer holds the K/V of many
concurrent sequences as slot rows, and hands out zero-copy
:class:`KVCache`-compatible views — so admitting, retiring and
re-admitting sequences never allocates, and forking a beam is a
bounded prefix copy inside the arena instead of a fresh full-size
allocation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KVCache", "PooledKVCache"]


class KVCache:
    """Pre-allocated rolling K/V store for one transformer block.

    Shapes are ``(n_heads, max_seq, head_dim)``; ``length`` tracks the
    filled prefix.  Appending is an in-place slice write (no copies, no
    reallocation), following the buffer-reuse guidance for numerical
    Python.
    """

    #: Truncation watchers (class-level default keeps instances free of
    #: per-object state until someone actually watches).  A fault
    #: injector armed on this cache registers itself so that rollbacks —
    #: rejected speculation rounds, beam forks — can undo a strike that
    #: landed beyond the surviving prefix (see ``KVFaultInjector``).
    watchers: tuple = ()

    def __init__(self, n_heads: int, max_seq: int, head_dim: int) -> None:
        self.k = np.zeros((n_heads, max_seq, head_dim), dtype=np.float32)
        self.v = np.zeros((n_heads, max_seq, head_dim), dtype=np.float32)
        self.length = 0

    def watch(self, watcher) -> None:
        """Register a truncation watcher (``on_truncate(cache, length)``)."""
        self.watchers = self.watchers + (watcher,)

    def unwatch(self, watcher) -> None:
        self.watchers = tuple(w for w in self.watchers if w is not watcher)

    @property
    def max_seq(self) -> int:
        return self.k.shape[1]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``(n_heads, t, head_dim)`` keys/values for new tokens."""
        t = k_new.shape[1]
        if self.length + t > self.max_seq:
            raise ValueError(
                f"KV cache overflow: {self.length} + {t} > {self.max_seq}"
            )
        self.k[:, self.length : self.length + t] = k_new
        self.v[:, self.length : self.length + t] = v_new
        self.length += t

    def keys(self) -> np.ndarray:
        """View of the filled keys, shape ``(n_heads, length, head_dim)``."""
        return self.k[:, : self.length]

    def values(self) -> np.ndarray:
        """View of the filled values, shape ``(n_heads, length, head_dim)``."""
        return self.v[:, : self.length]

    def truncate(self, length: int) -> None:
        """Roll back to a shorter prefix (used by beam search forks and
        prefix-shared option scoring, which appends option tokens and
        truncates back instead of copying the cache)."""
        if not 0 <= length <= self.length:
            raise ValueError(f"cannot truncate cache of {self.length} to {length}")
        for watcher in self.watchers:
            watcher.on_truncate(self, length)
        self.length = length

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Copy of the filled prefix only: ``(keys, values, length)``.

        Much cheaper than :meth:`clone` when ``length << max_seq`` —
        the backing buffers are not duplicated; :meth:`restore` writes
        the prefix back into the existing buffers.
        """
        return self.keys().copy(), self.values().copy(), self.length

    def restore(self, snap: tuple[np.ndarray, np.ndarray, int]) -> None:
        """Rewind to a :meth:`snapshot`, reusing the existing buffers.

        In-place prefix write — never reallocates ``k``/``v`` (which
        would detach pooled :class:`_SlotView` rows from their arena),
        so speculation rollback and beam inner loops can restore per
        round at slice-copy cost.  The snapshot must fit the buffers:
        same head/dim geometry, ``length <= max_seq``.
        """
        k, v, length = snap
        if length > self.max_seq:
            raise ValueError(
                f"snapshot length {length} exceeds cache capacity {self.max_seq}"
            )
        if k.shape[0] != self.k.shape[0] or k.shape[2] != self.k.shape[2]:
            raise ValueError(
                f"snapshot geometry {k.shape} does not match cache buffers"
                f" {self.k.shape}"
            )
        # A restore is a rewind too: a fault that fired beyond the
        # restored prefix must be rolled back just like under truncate.
        for watcher in self.watchers:
            watcher.on_truncate(self, length)
        self.k[:, :length] = k
        self.v[:, :length] = v
        self.length = length

    def clone(self) -> "KVCache":
        """Deep copy (beam search keeps one cache per hypothesis)."""
        out = KVCache(self.k.shape[0], self.max_seq, self.k.shape[2])
        out.k[:, : self.length] = self.keys()
        out.v[:, : self.length] = self.values()
        out.length = self.length
        return out


class _SlotView(KVCache):
    """:class:`KVCache` interface over one slot row of a pooled arena.

    ``k``/``v`` are ``(n_heads, max_seq, head_dim)`` views into the
    owning :class:`PooledKVCache`'s arena, so every append/truncate
    writes the shared storage in place; only ``length`` is per-view
    state.  All inherited methods work unchanged.
    """

    def __init__(self, k: np.ndarray, v: np.ndarray) -> None:
        self.k = k
        self.v = v
        self.length = 0


class PooledKVCache:
    """Block-allocated K/V arena shared by up to ``n_slots`` sequences.

    Layout is one ``(n_slots, n_heads, max_seq, head_dim)`` array pair
    per transformer block.  A sequence acquires a slot, receives the
    per-block row views for it (each a :class:`KVCache`-compatible
    object backed by arena memory), decodes, and releases the slot for
    the next pending sequence — the continuous-batching scheduler's
    refills therefore cost zero allocations.  Stale K/V beyond a view's
    ``length`` is never read (attention consumes ``keys()``/``values()``
    prefixes only), so slots are handed out without clearing.
    """

    def __init__(
        self, n_layers: int, n_slots: int, n_heads: int, max_seq: int, head_dim: int
    ) -> None:
        if n_slots < 1:
            raise ValueError("pool needs at least one slot")
        self.n_slots = n_slots
        self._k = [
            np.zeros((n_slots, n_heads, max_seq, head_dim), dtype=np.float32)
            for _ in range(n_layers)
        ]
        self._v = [
            np.zeros((n_slots, n_heads, max_seq, head_dim), dtype=np.float32)
            for _ in range(n_layers)
        ]
        self._views = [
            [_SlotView(self._k[layer][slot], self._v[layer][slot])
             for layer in range(n_layers)]
            for slot in range(n_slots)
        ]
        # Stack of free slot ids; reversed so slot 0 is acquired first
        # (deterministic admission order for the scheduler).
        self._free = list(range(n_slots - 1, -1, -1))

    @property
    def n_free(self) -> int:
        return len(self._free)

    def acquire(self) -> int:
        """Claim a free slot (views reset to empty); raises when full."""
        if not self._free:
            raise ValueError(f"KV pool exhausted: all {self.n_slots} slots in use")
        slot = self._free.pop()
        for view in self._views[slot]:
            view.length = 0
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list."""
        if slot in self._free:
            raise ValueError(f"slot {slot} is already free")
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        self._free.append(slot)

    def caches(self, slot: int) -> list[KVCache]:
        """Per-block cache views for ``slot`` (zero-copy, arena-backed)."""
        return list(self._views[slot])

    def copy_slot(self, src: int, dst: int) -> None:
        """Snapshot-style copy-on-fork: copy ``src``'s filled prefix into
        ``dst``.  Only ``length`` rows move — the bounded-prefix analogue
        of :meth:`KVCache.snapshot`/``restore`` inside the arena, and the
        replacement for per-beam full-cache clones."""
        for layer, (k, v) in enumerate(zip(self._k, self._v)):
            length = self._views[src][layer].length
            k[dst, :, :length] = k[src, :, :length]
            v[dst, :, :length] = v[src, :, :length]
            self._views[dst][layer].length = length

    def load(self, slot: int, caches: list[KVCache]) -> None:
        """Copy external per-block caches (e.g. an adopted prefilled
        session's) into ``slot``."""
        for layer, cache in enumerate(caches):
            self._k[layer][slot, :, : cache.length] = cache.keys()
            self._v[layer][slot, :, : cache.length] = cache.values()
            self._views[slot][layer].length = cache.length
