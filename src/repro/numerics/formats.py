"""Bit-exact floating-point format layer.

The paper's fault models act on the *stored representation* of weights
and activations: flipping bit ``k`` of an FP16 value has a very
different effect than flipping bit ``k`` of a BF16 value, because the
formats allocate sign/exponent/mantissa bits differently (paper
Table 2, Observation #11).  This module provides

* a :class:`FloatFormat` registry describing each format's bit layout,
* vectorised encode/decode between ``float`` arrays and integer bit
  patterns, and
* vectorised bit-flip operations on values *as stored in a format*.

All arithmetic elsewhere in the library is carried out in ``float32``
(or wider); formats only govern how values are stored and how faults
corrupt them.  This matches GPU inference, where tensor-core
accumulation is wider than the storage type, and preserves the property
the paper measures: the representable range of the storage format
determines the worst-case deviation a bit flip can cause.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "FORMATS",
    "get_format",
    "to_bits",
    "from_bits",
    "round_to_format",
    "flip_bits",
    "flip_value_bits",
    "bit_roles",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of an IEEE-754-style binary floating point format.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"fp16"``.
    bits:
        Total storage width in bits.
    exp_bits:
        Number of exponent bits.
    man_bits:
        Number of explicit mantissa (fraction) bits.
    """

    name: str
    bits: int
    exp_bits: int
    man_bits: int

    def __post_init__(self) -> None:
        if self.bits != 1 + self.exp_bits + self.man_bits:
            raise ValueError(
                f"{self.name}: bits ({self.bits}) != 1 + exp ({self.exp_bits})"
                f" + mantissa ({self.man_bits})"
            )

    @property
    def bias(self) -> int:
        """Exponent bias (2^(e-1) - 1)."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def sign_bit(self) -> int:
        """Bit index of the sign bit (the MSB)."""
        return self.bits - 1

    @property
    def exponent_bit_range(self) -> range:
        """Bit indices (LSB-first) occupied by the exponent field."""
        return range(self.man_bits, self.man_bits + self.exp_bits)

    @property
    def mantissa_bit_range(self) -> range:
        """Bit indices (LSB-first) occupied by the mantissa field."""
        return range(0, self.man_bits)

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        max_exp = (1 << self.exp_bits) - 2 - self.bias
        frac = 2.0 - 2.0 ** (-self.man_bits)
        return frac * 2.0**max_exp

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)

    @property
    def uint_dtype(self) -> np.dtype:
        """NumPy unsigned integer dtype wide enough to hold a pattern."""
        if self.bits <= 16:
            return np.dtype(np.uint16)
        if self.bits <= 32:
            return np.dtype(np.uint32)
        return np.dtype(np.uint64)


FP16 = FloatFormat("fp16", 16, 5, 10)
BF16 = FloatFormat("bf16", 16, 8, 7)
FP32 = FloatFormat("fp32", 32, 8, 23)

FORMATS: dict[str, FloatFormat] = {f.name: f for f in (FP16, BF16, FP32)}


def get_format(name: str | FloatFormat) -> FloatFormat:
    """Look a format up by name, passing instances through unchanged."""
    if isinstance(name, FloatFormat):
        return name
    try:
        return FORMATS[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown float format {name!r}; known: {sorted(FORMATS)}"
        ) from exc


def _as_f32(x: np.ndarray | float) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def to_bits(x: np.ndarray | float, fmt: str | FloatFormat) -> np.ndarray:
    """Encode values into the integer bit patterns of ``fmt``.

    Rounding uses round-to-nearest-even, matching IEEE-754 default and
    what a GPU cast instruction produces.
    """
    fmt = get_format(fmt)
    x32 = _as_f32(x)
    if fmt is FP32:
        return x32.view(np.uint32)
    if fmt is FP16:
        return x32.astype(np.float16).view(np.uint16)
    if fmt is BF16:
        u = x32.view(np.uint32)
        # Round-to-nearest-even on the truncated 16 low bits.
        rounding = np.uint32(0x7FFF) + ((u >> np.uint32(16)) & np.uint32(1))
        return ((u + rounding) >> np.uint32(16)).astype(np.uint16)
    raise KeyError(f"unsupported format {fmt.name}")


def from_bits(bits: np.ndarray, fmt: str | FloatFormat) -> np.ndarray:
    """Decode integer bit patterns of ``fmt`` back to float32 values."""
    fmt = get_format(fmt)
    bits = np.asarray(bits)
    if fmt is FP32:
        return bits.astype(np.uint32).view(np.float32)
    if fmt is FP16:
        return bits.astype(np.uint16).view(np.float16).astype(np.float32)
    if fmt is BF16:
        return (bits.astype(np.uint32) << np.uint32(16)).view(np.float32)
    raise KeyError(f"unsupported format {fmt.name}")


def round_to_format(x: np.ndarray | float, fmt: str | FloatFormat) -> np.ndarray:
    """Round values to the nearest representable value of ``fmt``.

    The result is float32 data whose values are exactly representable in
    the target format, i.e. a cast down and back up.
    """
    return from_bits(to_bits(x, fmt), fmt)


def flip_bits(
    bits: np.ndarray, positions: np.ndarray | list[int], fmt: str | FloatFormat
) -> np.ndarray:
    """XOR the given LSB-first bit positions into every bit pattern."""
    fmt = get_format(fmt)
    positions = np.asarray(positions, dtype=np.uint64)
    if positions.size and int(positions.max()) >= fmt.bits:
        raise ValueError(
            f"bit position {int(positions.max())} out of range for"
            f" {fmt.name} ({fmt.bits} bits)"
        )
    mask = np.bitwise_or.reduce(np.uint64(1) << positions) if positions.size else 0
    out = bits.copy()
    out ^= np.asarray(mask, dtype=bits.dtype)
    return out


def flip_value_bits(
    x: np.ndarray | float,
    positions: np.ndarray | list[int],
    fmt: str | FloatFormat,
) -> np.ndarray:
    """Flip bits of values *as stored in* ``fmt`` and decode the result.

    This is the core fault primitive: ``x`` is first rounded into the
    storage format (as it would be on chip), the requested bits of the
    stored pattern are flipped, and the corrupted pattern is decoded
    back to float32 for further computation.
    """
    return from_bits(flip_bits(to_bits(x, fmt), positions, fmt), fmt)


def bit_roles(fmt: str | FloatFormat) -> list[str]:
    """Return the role ("sign" / "exponent" / "mantissa") of each bit.

    Index ``i`` of the returned list describes bit ``i`` (LSB-first).
    Used by the bit-position-vulnerability experiments (paper Figs 9/10).
    """
    fmt = get_format(fmt)
    roles = ["mantissa"] * fmt.man_bits + ["exponent"] * fmt.exp_bits + ["sign"]
    return roles
