"""Statistical machinery for fault-injection campaigns.

The paper reports *normalized performance* (faulty metric divided by
fault-free metric) with 95% confidence intervals obtained via the
log-transformation method for ratios (Katz et al., 1978; Kahn &
Sempos, 1989) — the standard epidemiology estimator for a risk ratio.
This module implements both the proportion (binomial outcome) and the
continuous-metric variants, plus a few helpers the campaign runner
uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RatioCI",
    "log_ratio_ci_proportions",
    "log_ratio_ci_means",
    "normalized_performance",
    "wilson_interval",
    "required_trials",
]

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


@dataclass(frozen=True)
class RatioCI:
    """A ratio estimate with a symmetric-in-log 95% confidence interval."""

    ratio: float
    lower: float
    upper: float

    @property
    def margin(self) -> float:
        """Half-width of the CI on the linear scale (upper - ratio)."""
        return self.upper - self.ratio

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def log_ratio_ci_proportions(
    successes_faulty: int,
    trials_faulty: int,
    successes_baseline: int,
    trials_baseline: int,
    z: float = _Z95,
) -> RatioCI:
    """Katz log-transform CI for a ratio of two binomial proportions.

    Used for accuracy-style metrics (multiple-choice, GSM8k, exact
    match) where each fault-injection run either matches the reference
    or not.  The standard error of ``log(p1/p0)`` is
    ``sqrt((1-p1)/(n1*p1) + (1-p0)/(n0*p0))``.
    """
    if min(trials_faulty, trials_baseline) <= 0:
        raise ValueError("trial counts must be positive")
    if successes_baseline == 0:
        # Baseline never succeeds: the ratio is undefined; report NaN.
        return RatioCI(math.nan, math.nan, math.nan)
    if successes_faulty == 0:
        # Degenerate: ratio 0 with an uninformative lower bound.
        return RatioCI(0.0, 0.0, 0.0)
    p1 = successes_faulty / trials_faulty
    p0 = successes_baseline / trials_baseline
    ratio = p1 / p0
    se = math.sqrt(
        (1.0 - p1) / (trials_faulty * p1) + (1.0 - p0) / (trials_baseline * p0)
    )
    log_r = math.log(ratio)
    return RatioCI(ratio, math.exp(log_r - z * se), math.exp(log_r + z * se))


def log_ratio_ci_means(
    faulty_values: np.ndarray,
    baseline_value: float,
    z: float = _Z95,
) -> RatioCI:
    """Log-transform CI for mean(faulty metric) / baseline metric.

    Used for continuous quality metrics (BLEU, chrF++, ROUGE, F1).  The
    baseline is treated as a constant (it is a single deterministic
    fault-free evaluation); variability comes from the faulty trials.
    The CI is computed on ``log`` of the per-trial ratios using the
    delta method on the mean, which keeps the interval positive and
    asymmetric exactly as in the paper's plots.
    """
    values = np.asarray(faulty_values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no faulty trial values supplied")
    if baseline_value <= 0:
        return RatioCI(math.nan, math.nan, math.nan)
    ratios = values / baseline_value
    mean = float(ratios.mean())
    if mean <= 0:
        return RatioCI(0.0, 0.0, 0.0)
    if values.size == 1:
        return RatioCI(mean, mean, mean)
    # Delta method: Var[log(mean R)] ~= Var[R] / (n * mean^2).
    se_log = float(ratios.std(ddof=1)) / (math.sqrt(values.size) * mean)
    log_m = math.log(mean)
    # min/max guard against exp(log(x)) round-off inverting the order
    # when the spread is zero.
    return RatioCI(
        mean,
        min(mean, math.exp(log_m - z * se_log)),
        max(mean, math.exp(log_m + z * se_log)),
    )


def normalized_performance(faulty: float, baseline: float) -> float:
    """Normalized performance = P_fault_injected / P_fault_free."""
    if baseline == 0:
        return math.nan
    return faulty / baseline


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> tuple[float, float]:
    """Wilson score interval for a single proportion.

    Used for the SDC-rate style quantities (e.g. "78.6% of gate-layer
    faults changed the expert selection", Fig. 15).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - half), min(1.0, center + half)


def required_trials(p_est: float, margin: float, z: float = _Z95) -> int:
    """Trials needed so a proportion's 95% CI half-width is <= margin.

    Statistical fault injection sizes its campaigns this way; the paper
    follows the same estimator (citing [87]).
    """
    if not 0 < p_est < 1:
        raise ValueError("p_est must be in (0, 1)")
    if margin <= 0:
        raise ValueError("margin must be positive")
    return math.ceil(z * z * p_est * (1 - p_est) / (margin * margin))
