"""Group-wise post-training integer quantization (GPTQ-style storage).

The paper's Observation #8 studies GPTQ 4-bit / 8-bit variants of
Qwen2.5-7B under the 2-bit memory fault model and finds quantized
models *more* resilient: a bit flip inside a k-bit integer code can
move the dequantized value by at most ~``2^k`` quantization steps,
whereas an exponent-bit flip in BF16 can scale a weight by ``~2^128``.

We reproduce the storage mechanism: weights are quantized group-wise
with a symmetric per-group scale (the de-facto standard layout used by
GPTQ/AWQ checkpoints), stored as signed integer codes, and dequantized
for computation.  Memory faults flip bits inside the stored codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedMatrix", "quantize_matrix"]


@dataclass
class QuantizedMatrix:
    """A 2-D weight matrix stored as group-quantized integer codes.

    Quantization is symmetric and applied along axis 0 (the input
    dimension) in groups of ``group_size`` rows, mirroring the row-major
    group layout used by GPTQ kernels.

    Attributes
    ----------
    codes:
        ``int16`` array of shape ``(rows, cols)`` holding signed codes in
        ``[-qmax, qmax]``.  (Stored widened to int16 so 8-bit arithmetic
        cannot silently wrap; the *logical* width is ``nbits``.)
    scales:
        ``float32`` array of shape ``(n_groups, cols)``.
    nbits:
        Logical code width (4 or 8).
    group_size:
        Rows per quantization group.
    """

    codes: np.ndarray
    scales: np.ndarray
    nbits: int
    group_size: int

    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape  # type: ignore[return-value]

    @property
    def qmax(self) -> int:
        """Largest code magnitude, ``2^(nbits-1) - 1``."""
        return (1 << (self.nbits - 1)) - 1

    def group_of_row(self, row: int) -> int:
        return row // self.group_size

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 weight matrix."""
        rows = self.codes.shape[0]
        group_idx = np.arange(rows) // self.group_size
        return self.codes.astype(np.float32) * self.scales[group_idx]

    def dequantize_element(self, row: int, col: int) -> float:
        return float(self.codes[row, col]) * float(
            self.scales[self.group_of_row(row), col]
        )

    def flip_code_bits(self, row: int, col: int, positions: list[int]) -> int:
        """Flip bits of the stored code at ``(row, col)`` in place.

        Bit positions are LSB-first within the ``nbits``-wide two's
        complement code.  Returns the previous raw code so the caller
        can restore it (fault-injection campaigns flip back after each
        run).
        """
        for pos in positions:
            if not 0 <= pos < self.nbits:
                raise ValueError(
                    f"bit position {pos} out of range for int{self.nbits}"
                )
        old = int(self.codes[row, col])
        raw = old & ((1 << self.nbits) - 1)  # two's complement pattern
        for pos in positions:
            raw ^= 1 << pos
        # Sign-extend back to a Python int.
        if raw & (1 << (self.nbits - 1)):
            raw -= 1 << self.nbits
        self.codes[row, col] = raw
        return old

    def set_code(self, row: int, col: int, code: int) -> None:
        """Restore a raw code previously returned by :meth:`flip_code_bits`."""
        self.codes[row, col] = code


def quantize_matrix(
    weight: np.ndarray, nbits: int, group_size: int = 32
) -> QuantizedMatrix:
    """Quantize a float matrix to ``nbits`` with per-group symmetric scales.

    Parameters
    ----------
    weight:
        Float array of shape ``(rows, cols)``.
    nbits:
        Logical integer width; 4 and 8 mirror the paper's GPTQ variants.
    group_size:
        Rows per scale group; clipped to the matrix height.
    """
    if nbits not in (2, 3, 4, 8):
        raise ValueError(f"unsupported quantization width: {nbits}")
    weight = np.asarray(weight, dtype=np.float32)
    if weight.ndim != 2:
        raise ValueError("quantize_matrix expects a 2-D weight matrix")
    rows, cols = weight.shape
    group_size = min(group_size, rows)
    n_groups = (rows + group_size - 1) // group_size
    qmax = (1 << (nbits - 1)) - 1

    codes = np.empty((rows, cols), dtype=np.int16)
    scales = np.empty((n_groups, cols), dtype=np.float32)
    for g in range(n_groups):
        lo, hi = g * group_size, min((g + 1) * group_size, rows)
        block = weight[lo:hi]
        absmax = np.abs(block).max(axis=0)
        scale = np.where(absmax > 0, absmax / qmax, 1.0).astype(np.float32)
        scales[g] = scale
        codes[lo:hi] = np.clip(np.rint(block / scale), -qmax, qmax).astype(np.int16)
    return QuantizedMatrix(codes=codes, scales=scales, nbits=nbits, group_size=group_size)
