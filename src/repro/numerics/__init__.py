"""Bit-level numerics: float formats, quantized storage, FI statistics."""

from repro.numerics.formats import (
    BF16,
    FORMATS,
    FP16,
    FP32,
    FloatFormat,
    bit_roles,
    flip_bits,
    flip_value_bits,
    from_bits,
    get_format,
    round_to_format,
    to_bits,
)
from repro.numerics.quantized import QuantizedMatrix, quantize_matrix
from repro.numerics.stats import (
    RatioCI,
    log_ratio_ci_means,
    log_ratio_ci_proportions,
    normalized_performance,
    required_trials,
    wilson_interval,
)

__all__ = [
    "BF16",
    "FORMATS",
    "FP16",
    "FP32",
    "FloatFormat",
    "QuantizedMatrix",
    "RatioCI",
    "bit_roles",
    "flip_bits",
    "flip_value_bits",
    "from_bits",
    "get_format",
    "log_ratio_ci_means",
    "log_ratio_ci_proportions",
    "normalized_performance",
    "quantize_matrix",
    "required_trials",
    "round_to_format",
    "to_bits",
    "wilson_interval",
]
