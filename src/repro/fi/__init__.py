"""Fault-injection framework: models, sites, injectors, campaigns."""

from repro.fi.analysis import (
    GroupVulnerability,
    by_bit_role,
    by_block,
    by_engine_side,
    by_layer_type,
    by_surface,
    most_vulnerable,
    speculation_masking,
)
from repro.fi.campaign import (
    CampaignChaos,
    CampaignResult,
    ChaosError,
    FICampaign,
    TrialRecord,
    TrialTimeoutError,
)
from repro.fi.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    load_checkpoint,
)
from repro.fi.differential import (
    assert_records_equal,
    assert_results_equal,
    assert_sequences_equal,
    record_signature,
    result_signatures,
)
from repro.fi.fault_models import FaultModel
from repro.fi.injector import (
    AccumulatorFaultInjector,
    ComputationalFaultInjector,
    KVFaultInjector,
    MemoryFaultInjector,
    inject,
)
from repro.fi.outcomes import (
    Outcome,
    classify_direct_answer,
    classify_generative,
    is_distorted,
)
from repro.fi.projection import SDCProjection, project_sdc_rate
from repro.fi.propagation import PropagationTrace, trace_fault
from repro.fi.sites import FaultSite, LayerFilter, sample_site

__all__ = [
    "CampaignChaos",
    "CampaignCheckpoint",
    "CampaignResult",
    "ChaosError",
    "CheckpointError",
    "GroupVulnerability",
    "TrialTimeoutError",
    "assert_records_equal",
    "assert_results_equal",
    "assert_sequences_equal",
    "load_checkpoint",
    "record_signature",
    "result_signatures",
    "by_bit_role",
    "by_block",
    "by_engine_side",
    "by_layer_type",
    "by_surface",
    "most_vulnerable",
    "speculation_masking",
    "AccumulatorFaultInjector",
    "ComputationalFaultInjector",
    "KVFaultInjector",
    "FICampaign",
    "FaultModel",
    "FaultSite",
    "LayerFilter",
    "MemoryFaultInjector",
    "Outcome",
    "PropagationTrace",
    "SDCProjection",
    "TrialRecord",
    "classify_direct_answer",
    "classify_generative",
    "inject",
    "project_sdc_rate",
    "is_distorted",
    "sample_site",
    "trace_fault",
]
