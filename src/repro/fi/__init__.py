"""Fault-injection framework: models, sites, injectors, campaigns."""

from repro.fi.analysis import (
    GroupVulnerability,
    by_bit_role,
    by_block,
    by_layer_type,
    most_vulnerable,
)
from repro.fi.campaign import CampaignResult, FICampaign, TrialRecord
from repro.fi.fault_models import FaultModel
from repro.fi.injector import (
    ComputationalFaultInjector,
    MemoryFaultInjector,
    inject,
)
from repro.fi.outcomes import (
    Outcome,
    classify_direct_answer,
    classify_generative,
    is_distorted,
)
from repro.fi.projection import SDCProjection, project_sdc_rate
from repro.fi.propagation import PropagationTrace, trace_fault
from repro.fi.sites import FaultSite, LayerFilter, sample_site

__all__ = [
    "CampaignResult",
    "GroupVulnerability",
    "by_bit_role",
    "by_block",
    "by_layer_type",
    "most_vulnerable",
    "ComputationalFaultInjector",
    "FICampaign",
    "FaultModel",
    "FaultSite",
    "LayerFilter",
    "MemoryFaultInjector",
    "Outcome",
    "PropagationTrace",
    "SDCProjection",
    "TrialRecord",
    "classify_direct_answer",
    "classify_generative",
    "inject",
    "project_sdc_rate",
    "is_distorted",
    "sample_site",
    "trace_fault",
]
