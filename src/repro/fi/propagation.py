"""Error-propagation tracing (paper Figs 5 and 6).

These helpers run a fault-free and a faulty forward pass with full
activation capture and compare per-layer outputs.  They demonstrate the
paper's two propagation geometries:

* a **memory** fault in ``W[r, c]`` of a linear layer corrupts the
  entire **column** ``c`` of that layer's output (every token row uses
  the corrupted weight), and the corruption then spreads across the
  whole output tensor of the next layer;
* a **computational** fault corrupts one element, which spreads along
  the **row** (one token) of the next layer's output and is then
  largely contained by the normalization layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fi.injector import inject
from repro.fi.sites import FaultSite
from repro.inference.engine import CaptureState, InferenceEngine

__all__ = ["PropagationTrace", "trace_fault"]


@dataclass
class PropagationTrace:
    """Baseline vs faulty layer outputs for one forward pass."""

    site: FaultSite
    baseline: dict[str, np.ndarray]
    faulty: dict[str, np.ndarray]

    def corruption_mask(self, layer_name: str, rtol: float = 1e-4) -> np.ndarray:
        """Boolean mask of elements that differ beyond tolerance."""
        base = self.baseline[layer_name]
        fault = self.faulty[layer_name]
        with np.errstate(invalid="ignore"):
            diff = ~np.isclose(fault, base, rtol=rtol, atol=1e-6)
        # NaN/inf disagreements count as corrupted.
        diff |= np.isnan(fault) != np.isnan(base)
        return diff

    def corrupted_fraction(self, layer_name: str) -> float:
        mask = self.corruption_mask(layer_name)
        return float(mask.mean())

    def column_profile(self, layer_name: str) -> np.ndarray:
        """Fraction of corrupted elements per output column."""
        return self.corruption_mask(layer_name).mean(axis=0)

    def row_profile(self, layer_name: str) -> np.ndarray:
        """Fraction of corrupted elements per token row."""
        return self.corruption_mask(layer_name).mean(axis=1)

    def layers(self) -> list[str]:
        return list(self.baseline)


def trace_fault(
    engine: InferenceEngine, site: FaultSite, prompt_ids: list[int]
) -> PropagationTrace:
    """Capture baseline and faulty activations for one prefill forward."""
    engine.capture = CaptureState()
    try:
        engine.forward_full(prompt_ids)
        baseline = dict(engine.capture.layer_outputs)
        engine.capture = CaptureState()
        with inject(engine, site):
            engine.forward_full(prompt_ids)
        faulty = dict(engine.capture.layer_outputs)
    finally:
        engine.capture = None
    return PropagationTrace(site=site, baseline=baseline, faulty=faulty)
