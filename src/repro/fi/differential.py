"""Differential oracle: bit-identity between campaign execution paths.

The repo accumulates execution strategies — serial reference loops,
shared-prefix option scoring, continuous-batched decoding, prefill
caching, multiprocess pools, checkpoint/resume — and every one of them
carries the same contract: *the optimization must not change a single
trial*.  This module is that contract's enforcement point, shared by
the test suite and usable from notebooks or scripts when validating a
new execution path.

Equality here is exact, not approximate: two paths agree when every
:class:`~repro.fi.campaign.TrialRecord` matches field-for-field
(site, prediction, outcome, metrics, ...).  Approximate closeness is
deliberately rejected — the FI-safety gates exist precisely so that
optimized paths fall back to the reference computation whenever
results could differ, so any drift is a bug, not noise.

Aggregate comparison (:func:`assert_results_equal`) compares the
derived statistics too, via ``repr`` — IEEE doubles round-trip
``repr`` exactly, and NaN (a legitimate "no classified trials"
aggregate) compares equal to itself, unlike under ``==``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.fi.campaign import CampaignResult, TrialRecord

__all__ = [
    "record_signature",
    "result_signatures",
    "assert_records_equal",
    "assert_results_equal",
    "assert_sequences_equal",
]

_FIELDS = (
    "site",
    "example_index",
    "prediction",
    "outcome",
    "changed",
    "selection_changed",
    "fired",
    "error",
    "metrics",
)


def record_signature(record: "TrialRecord") -> tuple:
    """Everything a trial computed, in comparable form.

    ``metrics`` is a ``compare=False`` dataclass field (dicts don't
    hash), so plain ``TrialRecord.__eq__`` would silently ignore it —
    the signature folds it back in as sorted items.
    """
    return (
        record.site,
        record.example_index,
        record.prediction,
        record.outcome,
        record.changed,
        record.selection_changed,
        record.fired,
        record.error,
        tuple(sorted(record.metrics.items())),
    )


def _trials(obj) -> list:
    return list(obj.trials) if hasattr(obj, "trials") else list(obj)


def result_signatures(result) -> list[tuple]:
    """Signatures of a :class:`CampaignResult` (or iterable of records)."""
    return [record_signature(t) for t in _trials(result)]


def _diverging_fields(sig_a: tuple, sig_b: tuple) -> list[str]:
    return [
        name for name, va, vb in zip(_FIELDS, sig_a, sig_b) if va != vb
    ]


def assert_records_equal(
    a: "CampaignResult | Iterable[TrialRecord]",
    b: "CampaignResult | Iterable[TrialRecord]",
    label_a: str = "a",
    label_b: str = "b",
) -> None:
    """Assert two campaigns produced bit-identical trial sequences.

    Accepts :class:`CampaignResult` objects or bare record iterables.
    On mismatch the raised ``AssertionError`` pinpoints the first
    diverging trial and the fields that differ — a differential test's
    failure message should localize the bug, not just report it.
    """
    sigs_a = result_signatures(a)
    sigs_b = result_signatures(b)
    if len(sigs_a) != len(sigs_b):
        raise AssertionError(
            f"trial counts differ: {label_a} has {len(sigs_a)},"
            f" {label_b} has {len(sigs_b)}"
        )
    for i, (sig_a, sig_b) in enumerate(zip(sigs_a, sigs_b)):
        if sig_a == sig_b:
            continue
        fields = _diverging_fields(sig_a, sig_b)
        detail = "\n".join(
            f"  {name}: {label_a}={sig_a[_FIELDS.index(name)]!r}"
            f" vs {label_b}={sig_b[_FIELDS.index(name)]!r}"
            for name in fields
        )
        raise AssertionError(
            f"trial {i} diverges between {label_a} and {label_b}"
            f" on {', '.join(fields)}:\n{detail}"
        )


def assert_results_equal(
    a: "CampaignResult",
    b: "CampaignResult",
    label_a: str = "a",
    label_b: str = "b",
) -> None:
    """Assert full aggregate equality: trials, baseline, faulty, CIs.

    This is the resume/interrupt oracle: a stitched-together campaign
    must reproduce not just every trial but every derived statistic of
    an uninterrupted run.  Floats are compared through ``repr`` so NaN
    aggregates (all trials quarantined) compare equal to themselves.
    """
    assert_records_equal(a, b, label_a, label_b)
    for attr in ("task_name", "fault_model", "n_trials"):
        va, vb = getattr(a, attr), getattr(b, attr)
        assert va == vb, f"{attr}: {label_a}={va!r} vs {label_b}={vb!r}"
    for attr in ("baseline", "faulty", "normalized"):
        va, vb = repr(getattr(a, attr)), repr(getattr(b, attr))
        assert va == vb, f"{attr}: {label_a}={va} vs {label_b}={vb}"


def assert_sequences_equal(
    a: Sequence, b: Sequence, label_a: str = "a", label_b: str = "b"
) -> None:
    """Generic first-divergence assertion for token/output sequences."""
    if list(a) == list(b):
        return
    if len(a) != len(b):
        raise AssertionError(
            f"lengths differ: {label_a} has {len(a)}, {label_b} has {len(b)}"
            f" ({label_a}={list(a)!r}, {label_b}={list(b)!r})"
        )
    for i, (va, vb) in enumerate(zip(a, b)):
        if va != vb:
            raise AssertionError(
                f"element {i} diverges: {label_a}={va!r} vs {label_b}={vb!r}"
            )
