"""Outcome classification for fault-injection runs (paper §3.2, Fig. 8).

Direct-answer tasks are classified **Masked** (final answer equals the
reference) or **SDC** (silent data corruption — a wrong final answer).
SDCs subdivide into

* **distorted** — structurally broken output: repeated or meaningless
  tokens, out-of-vocabulary garbage, truncated-to-nothing generations
  (paper Fig. 7 top); these come almost exclusively from high exponent
  bit flips, and from memory faults far more than computational ones;
* **subtly wrong** — fluent, well-formed text whose content is wrong
  (paper Fig. 7 bottom) — the majority of SDCs.
"""

from __future__ import annotations

import enum
import re
from collections import Counter

__all__ = ["Outcome", "is_distorted", "classify_direct_answer", "classify_generative"]


class Outcome(enum.Enum):
    """Fault-injection run outcome (Masked vs the two SDC kinds).

    ``FAILED`` is the campaign runner's analogue of a DUE (detected
    unrecoverable error): the trial itself crashed deterministically —
    every retry raised — and was quarantined instead of aborting the
    campaign.  A FAILED trial produced no model output, so it is
    neither masked nor an SDC and carries no metrics.
    """

    MASKED = "masked"
    SDC_SUBTLE = "sdc-subtle"
    SDC_DISTORTED = "sdc-distorted"
    FAILED = "failed"

    @property
    def is_sdc(self) -> bool:
        """True for any silent data corruption (wrong output)."""
        return self not in (Outcome.MASKED, Outcome.FAILED)


_MAX_REPEAT_RUN = 3
_SPECIAL = re.compile(r"<(unk|pad|bos|sep)>")


def is_distorted(text: str, reference: str | None = None) -> bool:
    """Heuristic detector for structurally broken generations.

    Flags: emptiness, special-token garbage, long same-token runs,
    degenerate token diversity on long outputs, or runaway length
    versus the reference.
    """
    tokens = text.split()
    if not tokens:
        return True
    if _SPECIAL.search(text):
        return True
    run = 1
    for prev, curr in zip(tokens, tokens[1:]):
        run = run + 1 if prev == curr else 1
        if run > _MAX_REPEAT_RUN:
            return True
    if len(tokens) >= 8:
        counts = Counter(tokens)
        if counts.most_common(1)[0][1] / len(tokens) > 0.6:
            return True
    if reference is not None:
        ref_len = max(1, len(reference.split()))
        if len(tokens) > 3 * ref_len + 8:
            return True
    return False


def classify_direct_answer(
    predicted_answer: str | None, reference_answer: str, output_text: str
) -> Outcome:
    """Classify a direct-answer (math / multiple-choice style) run.

    Distortion is decided by output *structure*, not by whether an
    answer could be extracted: a fluent solution that reaches the wrong
    number (or never states one) is subtly wrong, matching the paper's
    Fig. 7 taxonomy.
    """
    if predicted_answer is not None and predicted_answer == reference_answer:
        return Outcome.MASKED
    if is_distorted(output_text):
        return Outcome.SDC_DISTORTED
    return Outcome.SDC_SUBTLE


def classify_generative(
    output_text: str, baseline_text: str, reference_text: str
) -> Outcome:
    """Classify a quality-metric (translation/summarization/QA) run.

    A run is Masked when it reproduces the fault-free output; otherwise
    it is an SDC, distorted or subtle by text structure.
    """
    if output_text == baseline_text:
        return Outcome.MASKED
    if is_distorted(output_text, reference_text):
        return Outcome.SDC_DISTORTED
    return Outcome.SDC_SUBTLE
