"""Post-campaign vulnerability analysis.

The campaign runner records every trial's fault site and outcome; this
module aggregates them into the architecture-level vulnerability
profiles the paper reasons about: which *layer types* are most
sensitive (its propagation examples single out ``up_proj``/GEMM
inputs), how sensitivity varies with *block depth*, and which *bit
positions* matter (Figs 9/10).  The per-group SDC probability is the
classic Architectural Vulnerability Factor (AVF) estimate with a
Wilson interval.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.fi.campaign import CampaignResult, TrialRecord
from repro.fi.outcomes import Outcome
from repro.numerics.stats import wilson_interval

__all__ = [
    "GroupVulnerability",
    "by_layer_type",
    "by_block",
    "by_bit_role",
    "most_vulnerable",
]


@dataclass(frozen=True)
class GroupVulnerability:
    """SDC statistics of one site group (layer type / block / bit role)."""

    group: str
    trials: int
    sdcs: int

    @property
    def sdc_rate(self) -> float:
        return self.sdcs / self.trials if self.trials else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        """Wilson 95% interval of the SDC rate."""
        if self.trials == 0:
            return (0.0, 1.0)
        return wilson_interval(self.sdcs, self.trials)


def _aggregate(
    trials: list[TrialRecord], key_fn
) -> list[GroupVulnerability]:
    counts: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for trial in trials:
        if trial.outcome is Outcome.FAILED:
            # Quarantined trials produced no model output — they carry
            # no masked-vs-SDC information, so AVF estimates skip them.
            continue
        bucket = counts[key_fn(trial)]
        bucket[0] += 1
        bucket[1] += int(trial.outcome.is_sdc)
    return sorted(
        (
            GroupVulnerability(group, total, sdcs)
            for group, (total, sdcs) in counts.items()
        ),
        key=lambda g: g.sdc_rate,
        reverse=True,
    )


def by_layer_type(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per linear-layer type (q/k/v/out/gate/up/down/router...)."""
    return _aggregate(result.trials, lambda t: t.site.layer_type)


def by_block(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per transformer-block depth."""
    return _aggregate(result.trials, lambda t: f"block{t.site.block}")


def by_bit_role(
    result: CampaignResult, n_storage_bits: int, man_bits: int
) -> list[GroupVulnerability]:
    """SDC rate by role of the highest flipped bit (mantissa/exp/sign).

    ``n_storage_bits``/``man_bits`` describe the storage format the
    campaign injected into (e.g. 16/7 for BF16).
    """

    def role(trial: TrialRecord) -> str:
        bit = trial.site.highest_bit
        if bit == n_storage_bits - 1:
            return "sign"
        if bit >= man_bits:
            return "exponent"
        return "mantissa"

    return _aggregate(result.trials, role)


def most_vulnerable(
    groups: list[GroupVulnerability], min_trials: int = 5
) -> GroupVulnerability | None:
    """Highest-SDC-rate group with at least ``min_trials`` samples."""
    eligible = [g for g in groups if g.trials >= min_trials]
    return eligible[0] if eligible else None
