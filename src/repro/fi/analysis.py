"""Post-campaign vulnerability analysis.

The campaign runner records every trial's fault site and outcome; this
module aggregates them into the architecture-level vulnerability
profiles the paper reasons about: which *layer types* are most
sensitive (its propagation examples single out ``up_proj``/GEMM
inputs), how sensitivity varies with *block depth*, and which *bit
positions* matter (Figs 9/10).  The per-group SDC probability is the
classic Architectural Vulnerability Factor (AVF) estimate with a
Wilson interval.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.fi.campaign import CampaignResult, TrialRecord
from repro.fi.outcomes import Outcome
from repro.numerics.stats import wilson_interval

__all__ = [
    "GroupVulnerability",
    "by_layer_type",
    "by_block",
    "by_bit_role",
    "by_surface",
    "by_engine_side",
    "speculation_masking",
    "most_vulnerable",
]


@dataclass(frozen=True)
class GroupVulnerability:
    """SDC statistics of one site group (layer type / block / bit role)."""

    group: str
    trials: int
    sdcs: int

    @property
    def sdc_rate(self) -> float:
        return self.sdcs / self.trials if self.trials else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        """Wilson 95% interval of the SDC rate."""
        if self.trials == 0:
            return (0.0, 1.0)
        return wilson_interval(self.sdcs, self.trials)


def _aggregate(
    trials: list[TrialRecord], key_fn
) -> list[GroupVulnerability]:
    counts: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for trial in trials:
        if trial.outcome is Outcome.FAILED:
            # Quarantined trials produced no model output — they carry
            # no masked-vs-SDC information, so AVF estimates skip them.
            continue
        bucket = counts[key_fn(trial)]
        bucket[0] += 1
        bucket[1] += int(trial.outcome.is_sdc)
    return sorted(
        (
            GroupVulnerability(group, total, sdcs)
            for group, (total, sdcs) in counts.items()
        ),
        key=lambda g: g.sdc_rate,
        reverse=True,
    )


def by_layer_type(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per linear-layer type (q/k/v/out/gate/up/down/router...)."""
    return _aggregate(result.trials, lambda t: t.site.layer_type)


def by_block(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per transformer-block depth."""
    return _aggregate(result.trials, lambda t: f"block{t.site.block}")


def by_bit_role(
    result: CampaignResult, n_storage_bits: int, man_bits: int
) -> list[GroupVulnerability]:
    """SDC rate by role of the highest flipped bit (mantissa/exp/sign).

    ``n_storage_bits``/``man_bits`` describe the storage format the
    campaign injected into (e.g. 16/7 for BF16).
    """

    def role(trial: TrialRecord) -> str:
        bit = trial.site.highest_bit
        if bit == n_storage_bits - 1:
            return "sign"
        if bit >= man_bits:
            return "exponent"
        return "mantissa"

    return _aggregate(result.trials, role)


def by_surface(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per corrupted runtime surface.

    Groups trials by which state the fault landed in — ``weights``,
    ``activations``, ``kv-cache`` or ``accumulator`` — the end-to-end
    axis the paper's deployment argument turns on: outcome severity
    depends on *where* in the serving stack the corruption lives, not
    just how many bits flipped.
    """
    return _aggregate(result.trials, lambda t: t.site.surface)


def by_engine_side(result: CampaignResult) -> list[GroupVulnerability]:
    """SDC rate per draft/verify engine side (speculation-side AVF).

    For campaigns run with ``spec_fault_side``: target-side trials
    carry the usual AVF while draft-side trials should show zero SDCs —
    verification re-derives every emitted token from target logits, so
    draft corruption is masked by construction.
    """
    return _aggregate(result.trials, lambda t: t.site.engine_side)


def speculation_masking(result: CampaignResult) -> dict[str, dict]:
    """Measured draft-vs-target masking for the speculation study.

    Per engine side, over classified (non-quarantined) trials::

        {"draft": {"trials": …, "fired": …, "masked": …, "sdc": …,
                   "masking_rate": masked_fired / fired}, "target": {…}}

    ``masking_rate`` conditions on *fired* trials only — a fault that
    never struck (decode ended before its iteration, or the round
    schedule skipped it) measures the schedule, not the masking — and
    is the fraction of landed faults that still produced a ``MASKED``
    outcome.  The masking theorem predicts exactly 1.0 for the draft
    side; the measured target-side rate is the baseline it beats.
    """
    sides: dict[str, dict] = {}
    for trial in result.trials:
        if trial.outcome is Outcome.FAILED:
            continue
        row = sides.setdefault(
            trial.site.engine_side,
            {"trials": 0, "fired": 0, "masked": 0, "sdc": 0,
             "masking_rate": float("nan")},
        )
        row["trials"] += 1
        if not trial.fired:
            continue
        row["fired"] += 1
        row["masked"] += int(trial.outcome is Outcome.MASKED)
        row["sdc"] += int(trial.outcome.is_sdc)
    for row in sides.values():
        if row["fired"]:
            row["masking_rate"] = row["masked"] / row["fired"]
    return sides


def most_vulnerable(
    groups: list[GroupVulnerability], min_trials: int = 5
) -> GroupVulnerability | None:
    """Highest-SDC-rate group with at least ``min_trials`` samples."""
    eligible = [g for g in groups if g.trials >= min_trials]
    return eligible[0] if eligible else None
