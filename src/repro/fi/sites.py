"""Fault-site addressing and uniform statistical sampling (paper §3.2).

A fault-injection target is identified exactly the way the paper
specifies: block ID, layer ID (the type of linear layer), a weight or
neuron position inside the target tensor, the flipped bit positions,
and — for computational faults in generative tasks — the token
generation iteration during which the fault strikes.

Sampling is uniform over the FI-targetable linear layers of the model
("statistical fault injection"): block uniform, layer type uniform,
position uniform within the tensor, bit positions uniform without
replacement over the storage width.

The runtime-state fault models extend the same two-stage scheme:

* **KV faults** sample (block, plane, head, channel, bits) statically
  plus a *position fraction* — the struck token position is resolved
  against the live cache's occupied prefix at strike time, so sampling
  is uniform over occupied positions only and always in-bounds for the
  actual cache geometry (prompt lengths differ per example).  Pooled
  slots need no slot coordinate: the fault binds to one sequence's
  cache views (the serial trial's only sequence, or a pinned server
  slot).
* **Accumulator faults** sample the layer and output column like a
  computational fault, plus a *reduction split fraction* choosing how
  many of the GEMM's K products have accumulated when the flip lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fi.fault_models import FaultModel
from repro.inference.engine import InferenceEngine

__all__ = ["FaultSite", "sample_site", "LayerFilter", "KV_LAYER_SUFFIX"]

LayerFilter = Callable[[str], bool]

KV_LAYER_SUFFIX = "kv"
"""Pseudo layer-type suffix naming a block's K/V cache as a fault
surface (``blocks.3.kv`` — not a linear layer, but addressed the same
way so block/layer analyses group naturally)."""


@dataclass(frozen=True)
class FaultSite:
    """One fully resolved fault-injection location."""

    fault_model: FaultModel
    layer_name: str
    """Full layer name, e.g. ``"blocks.3.up_proj"`` (KV faults use the
    pseudo layer ``"blocks.3.kv"`` — the block's cache, not a linear)."""
    row: int
    col: int
    """Weight coordinates (memory faults), the output neuron/token
    position (computational/accumulator faults), or head/channel
    coordinates (KV faults: ``row`` is the attention head, ``col`` the
    head-dim channel)."""
    bits: tuple[int, ...]
    iteration: int = 0
    """Token generation iteration for transient faults (0 = prefill).
    KV faults latch: the flip lands at the first append reaching this
    iteration (speculative chunks may skip exact values)."""
    row_frac: float = 0.0
    """For computational/accumulator faults: fraction in [0, 1)
    mapping to a token row of the output tensor.  For KV faults:
    fraction mapping to a token *position* within the cache's occupied
    prefix at strike time."""
    engine_side: str = "target"
    """Which engine of a draft/verify pair the fault lands in
    (``"target"`` or ``"draft"`` — the speculation-side study)."""
    plane: str = "k"
    """KV faults: which cache plane is struck (``"k"`` or ``"v"``)."""
    acc_frac: float = 0.0
    """Accumulator faults: fraction in [0, 1) choosing the reduction
    split — how many of the K products have accumulated when the
    partial sum is corrupted."""

    @property
    def block(self) -> int:
        """Decoder-block index parsed from the layer name."""
        return int(self.layer_name.split(".")[1])

    @property
    def layer_type(self) -> str:
        """Layer name without the block prefix (e.g. ``up_proj``)."""
        return self.layer_name.split(".", 2)[2]

    @property
    def highest_bit(self) -> int:
        """The most significant flipped bit (Figs 9/10 group by this)."""
        return max(self.bits)

    @property
    def surface(self) -> str:
        """Which runtime state the fault lands in (analysis grouping)."""
        return self.fault_model.surface


def _sample_bits(
    rng: np.random.Generator, n_bits: int, width: int
) -> tuple[int, ...]:
    return tuple(int(b) for b in rng.choice(width, size=n_bits, replace=False))


def _sample_kv_site(
    engine: InferenceEngine,
    fault_model: FaultModel,
    rng: np.random.Generator,
    max_iterations: int,
    layer_filter: LayerFilter | None,
    engine_side: str,
) -> FaultSite:
    """Uniform KV site: block, plane, head, channel, bits, strike time.

    The token *position* is sampled as a fraction (``row_frac``) and
    resolved against the live cache's occupied length at strike time —
    the only way a pre-sampled site can be uniform over occupied
    positions when prompt lengths vary per example.
    """
    cfg = engine.config
    kv_layers = [
        f"blocks.{b}.{KV_LAYER_SUFFIX}" for b in range(cfg.n_blocks)
    ]
    if layer_filter is not None:
        kv_layers = [name for name in kv_layers if layer_filter(name)]
    if not kv_layers:
        raise ValueError("layer filter excluded every KV-cache block")
    layer_name = kv_layers[int(rng.integers(0, len(kv_layers)))]
    # K/V buffers are stored float32 regardless of the weight policy.
    return FaultSite(
        fault_model=fault_model,
        layer_name=layer_name,
        row=int(rng.integers(0, cfg.n_heads)),
        col=int(rng.integers(0, cfg.head_dim)),
        bits=_sample_bits(rng, fault_model.n_bits, 32),
        iteration=int(rng.integers(0, max(1, max_iterations))),
        row_frac=float(rng.random()),
        engine_side=engine_side,
        plane="k" if int(rng.integers(0, 2)) == 0 else "v",
    )


def sample_site(
    engine: InferenceEngine,
    fault_model: FaultModel,
    rng: np.random.Generator,
    max_iterations: int = 1,
    layer_filter: LayerFilter | None = None,
    engine_side: str = "target",
) -> FaultSite:
    """Draw one uniform fault site for ``fault_model`` on ``engine``.

    Parameters
    ----------
    max_iterations:
        Upper bound (exclusive) for the token-generation iteration a
        transient fault strikes in; pass the task's
        ``max_new_tokens`` for generative tasks and 1 for
        multiple-choice (single forward pass).
    layer_filter:
        Optional predicate restricting target layers (e.g. only MoE
        ``router`` layers for the paper's Fig. 15 gate-layer study).
    engine_side:
        Stamped into the site for the speculation-side study
        (``"draft"`` sites must be sampled against the *draft*
        engine's geometry — pass that engine here).
    """
    if fault_model.is_kv:
        return _sample_kv_site(
            engine, fault_model, rng, max_iterations, layer_filter, engine_side
        )
    layers = engine.linear_layer_names()
    if layer_filter is not None:
        layers = [name for name in layers if layer_filter(name)]
    if not layers:
        raise ValueError("layer filter excluded every fault-targetable layer")
    # Uniform over blocks first, then layer types within the block,
    # following the paper's two-stage selection.
    blocks = sorted({name.split(".")[1] for name in layers})
    block = blocks[int(rng.integers(0, len(blocks)))]
    in_block = [n for n in layers if n.split(".")[1] == block]
    layer_name = in_block[int(rng.integers(0, len(in_block)))]

    store = engine.weight_store(layer_name)
    rows, cols = store.shape
    if fault_model.is_memory:
        return FaultSite(
            fault_model=fault_model,
            layer_name=layer_name,
            row=int(rng.integers(0, rows)),
            col=int(rng.integers(0, cols)),
            bits=_sample_bits(rng, fault_model.n_bits, store.n_storage_bits),
            engine_side=engine_side,
        )
    from repro.numerics.formats import get_format

    width = get_format(engine.activation_format).bits
    if fault_model.is_accumulator:
        # Accumulator fault: output column like a computational fault,
        # plus a uniform reduction split over the K products feeding it.
        return FaultSite(
            fault_model=fault_model,
            layer_name=layer_name,
            row=0,
            col=int(rng.integers(0, cols)),
            bits=_sample_bits(rng, fault_model.n_bits, width),
            iteration=int(rng.integers(0, max(1, max_iterations))),
            row_frac=float(rng.random()),
            engine_side=engine_side,
            acc_frac=float(rng.random()),
        )
    # Computational fault: neuron = output column; the activation is
    # corrupted in the engine's activation float format.
    return FaultSite(
        fault_model=fault_model,
        layer_name=layer_name,
        row=0,
        col=int(rng.integers(0, cols)),
        bits=_sample_bits(rng, fault_model.n_bits, width),
        iteration=int(rng.integers(0, max(1, max_iterations))),
        row_frac=float(rng.random()),
        engine_side=engine_side,
    )
