"""Fault-site addressing and uniform statistical sampling (paper §3.2).

A fault-injection target is identified exactly the way the paper
specifies: block ID, layer ID (the type of linear layer), a weight or
neuron position inside the target tensor, the flipped bit positions,
and — for computational faults in generative tasks — the token
generation iteration during which the fault strikes.

Sampling is uniform over the FI-targetable linear layers of the model
("statistical fault injection"): block uniform, layer type uniform,
position uniform within the tensor, bit positions uniform without
replacement over the storage width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fi.fault_models import FaultModel
from repro.inference.engine import InferenceEngine

__all__ = ["FaultSite", "sample_site", "LayerFilter"]

LayerFilter = Callable[[str], bool]


@dataclass(frozen=True)
class FaultSite:
    """One fully resolved fault-injection location."""

    fault_model: FaultModel
    layer_name: str
    """Full layer name, e.g. ``"blocks.3.up_proj"``."""
    row: int
    col: int
    """Weight coordinates (memory faults) or the output neuron/token
    position (computational faults; ``row`` is a fraction index over
    output rows, resolved at hook time via :attr:`row_frac`)."""
    bits: tuple[int, ...]
    iteration: int = 0
    """Token generation iteration for computational faults (0 = prefill)."""
    row_frac: float = 0.0
    """For computational faults: fraction in [0, 1) mapping to a token
    row of the (iteration-dependent) output tensor."""

    @property
    def block(self) -> int:
        """Decoder-block index parsed from the layer name."""
        return int(self.layer_name.split(".")[1])

    @property
    def layer_type(self) -> str:
        """Layer name without the block prefix (e.g. ``up_proj``)."""
        return self.layer_name.split(".", 2)[2]

    @property
    def highest_bit(self) -> int:
        """The most significant flipped bit (Figs 9/10 group by this)."""
        return max(self.bits)


def _sample_bits(
    rng: np.random.Generator, n_bits: int, width: int
) -> tuple[int, ...]:
    return tuple(int(b) for b in rng.choice(width, size=n_bits, replace=False))


def sample_site(
    engine: InferenceEngine,
    fault_model: FaultModel,
    rng: np.random.Generator,
    max_iterations: int = 1,
    layer_filter: LayerFilter | None = None,
) -> FaultSite:
    """Draw one uniform fault site for ``fault_model`` on ``engine``.

    Parameters
    ----------
    max_iterations:
        Upper bound (exclusive) for the token-generation iteration a
        computational fault strikes in; pass the task's
        ``max_new_tokens`` for generative tasks and 1 for
        multiple-choice (single forward pass).
    layer_filter:
        Optional predicate restricting target layers (e.g. only MoE
        ``router`` layers for the paper's Fig. 15 gate-layer study).
    """
    layers = engine.linear_layer_names()
    if layer_filter is not None:
        layers = [name for name in layers if layer_filter(name)]
    if not layers:
        raise ValueError("layer filter excluded every fault-targetable layer")
    # Uniform over blocks first, then layer types within the block,
    # following the paper's two-stage selection.
    blocks = sorted({name.split(".")[1] for name in layers})
    block = blocks[int(rng.integers(0, len(blocks)))]
    in_block = [n for n in layers if n.split(".")[1] == block]
    layer_name = in_block[int(rng.integers(0, len(in_block)))]

    store = engine.weight_store(layer_name)
    rows, cols = store.shape
    if fault_model.is_memory:
        return FaultSite(
            fault_model=fault_model,
            layer_name=layer_name,
            row=int(rng.integers(0, rows)),
            col=int(rng.integers(0, cols)),
            bits=_sample_bits(rng, fault_model.n_bits, store.n_storage_bits),
        )
    # Computational fault: neuron = output column; the activation is
    # corrupted in the engine's activation float format.
    from repro.numerics.formats import get_format

    width = get_format(engine.activation_format).bits
    return FaultSite(
        fault_model=fault_model,
        layer_name=layer_name,
        row=0,
        col=int(rng.integers(0, cols)),
        bits=_sample_bits(rng, fault_model.n_bits, width),
        iteration=int(rng.integers(0, max(1, max_iterations))),
        row_frac=float(rng.random()),
    )
