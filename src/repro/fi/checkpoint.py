"""Trial-granular campaign checkpoint journal (crash-durable JSONL).

A campaign journal makes :class:`repro.fi.campaign.FICampaign` runs
restartable at trial granularity: every completed (or quarantined)
trial is appended — and flushed — as one self-contained JSONL record,
so a killed run loses at most the trial that was in flight.  Resuming
replays the journal, skips every already-recorded ``(example, trial,
fault)`` key and re-runs only the missing trials; because each trial's
RNG derives from that same stable key (never from enumeration order),
the stitched-together campaign is bit-identical to an uninterrupted
one.

The file layout mirrors the observability run export: a
schema-versioned header record first (``kind="campaign-checkpoint"``),
then one ``kind="trial"`` record per completed trial::

    {"kind": "campaign-checkpoint", "schema_version": 1,
     "campaign_hash": "…", "campaign": {…fingerprint…}, …}
    {"kind": "trial", "trial": 0, "key": ["1f3a…", 0, "2bits-mem"],
     "attempts": 1, "record": {…TrialRecord…}}

The header's ``campaign_hash`` covers only result-determining
configuration (task, fault model, seed, example identities, generation
settings) — perf knobs like ``decode_strategy`` are deliberately
excluded, so a checkpoint written by a serial run can be resumed by a
batched one and vice versa.  Loaders assert both the schema version
and the hash: resuming a journal from a different campaign fails
loudly instead of silently mixing trials.  A torn final line (the
record being written when the process died) is tolerated and dropped.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.fi.fault_models import FaultModel
from repro.fi.outcomes import Outcome
from repro.fi.sites import FaultSite
from repro.obs.manifest import config_hash, git_revision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (campaign imports us)
    from repro.fi.campaign import TrialRecord

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CampaignCheckpoint",
    "load_checkpoint",
    "site_to_dict",
    "site_from_dict",
    "trial_record_to_dict",
    "trial_record_from_dict",
]

CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint journal cannot be written or resumed safely."""


# ----------------------------------------------------------------------------
# TrialRecord <-> JSON. Floats survive exactly (json round-trips IEEE
# doubles via shortest-repr), so a resumed campaign's records compare
# bit-identical to freshly computed ones.
# ----------------------------------------------------------------------------


def site_to_dict(site: FaultSite) -> dict:
    """JSON-able form of a :class:`FaultSite`."""
    payload = asdict(site)
    payload["fault_model"] = site.fault_model.value
    payload["bits"] = list(site.bits)
    return payload


def site_from_dict(payload: dict) -> FaultSite:
    """Inverse of :func:`site_to_dict`."""
    return FaultSite(
        fault_model=FaultModel(payload["fault_model"]),
        layer_name=payload["layer_name"],
        row=int(payload["row"]),
        col=int(payload["col"]),
        bits=tuple(int(b) for b in payload["bits"]),
        iteration=int(payload["iteration"]),
        row_frac=float(payload["row_frac"]),
        # Runtime-surface fields appeared with the KV/speculation/
        # accumulator fault models; journals written before them load
        # with the dataclass defaults.
        engine_side=str(payload.get("engine_side", "target")),
        plane=str(payload.get("plane", "k")),
        acc_frac=float(payload.get("acc_frac", 0.0)),
    )


def trial_record_to_dict(record: "TrialRecord") -> dict:
    """JSON-able form of a :class:`TrialRecord`."""
    return {
        "site": site_to_dict(record.site),
        "example_index": record.example_index,
        "prediction": record.prediction,
        "outcome": record.outcome.value,
        "metrics": dict(record.metrics),
        "changed": record.changed,
        "selection_changed": record.selection_changed,
        "fired": record.fired,
        "error": record.error,
    }


def trial_record_from_dict(payload: dict) -> "TrialRecord":
    """Inverse of :func:`trial_record_to_dict`."""
    from repro.fi.campaign import TrialRecord

    return TrialRecord(
        site=site_from_dict(payload["site"]),
        example_index=int(payload["example_index"]),
        prediction=payload["prediction"],
        outcome=Outcome(payload["outcome"]),
        metrics=dict(payload["metrics"]),
        changed=bool(payload["changed"]),
        selection_changed=payload["selection_changed"],
        fired=bool(payload.get("fired", True)),
        error=payload.get("error"),
    )


# ----------------------------------------------------------------------------
# Journal I/O.
# ----------------------------------------------------------------------------


def _parse_lines(path: Path) -> Iterator[dict]:
    """Yield parsed records, dropping a torn (mid-write) trailing line."""
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                return  # torn final record: the trial in flight at the kill
            raise CheckpointError(
                f"{path}: corrupt checkpoint record at line {lineno + 1}"
            )


def load_checkpoint(
    path: str | Path, fingerprint: dict | None = None
) -> tuple[dict, dict[int, "TrialRecord"], dict[int, int]]:
    """Read a journal: ``(header, records by trial, attempts by trial)``.

    When ``fingerprint`` is given, the header's ``campaign_hash`` must
    match ``config_hash(fingerprint)`` — a checkpoint can only resume
    the campaign that wrote it.  Duplicate trial records (a crash
    between journal write and driver bookkeeping, then a re-run) are
    harmless: trials are deterministic, so last-write wins.
    """
    path = Path(path)
    records = list(_parse_lines(path))
    if not records or records[0].get("kind") != "campaign-checkpoint":
        raise CheckpointError(
            f"{path}: not a campaign checkpoint (missing header record)"
        )
    header = records[0]
    version = header.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema mismatch in {path}: file has {version!r},"
            f" this build reads {CHECKPOINT_SCHEMA_VERSION} — restart the"
            " campaign or use a matching repro version"
        )
    if fingerprint is not None:
        expected = config_hash(fingerprint)
        found = header.get("campaign_hash")
        if found != expected:
            raise CheckpointError(
                f"{path} was written by a different campaign"
                f" (checkpoint hash {found}, this campaign {expected});"
                " refusing to mix trials"
            )
    completed: dict[int, TrialRecord] = {}
    attempts: dict[int, int] = {}
    for record in records[1:]:
        if record.get("kind") != "trial":
            continue
        trial = int(record["trial"])
        completed[trial] = trial_record_from_dict(record["record"])
        attempts[trial] = int(record.get("attempts", 1))
    return header, completed, attempts


class CampaignCheckpoint:
    """Append-only trial journal bound to one campaign fingerprint.

    Opening with ``resume=False`` on an existing non-empty journal
    raises — an interrupted run must be *resumed*, never silently
    overwritten.  With ``resume=True`` the journal is validated and its
    completed trials exposed via :attr:`completed`; subsequent writes
    append.  Every :meth:`write` flushes and fsyncs so a kill -9 loses
    at most the in-flight trial.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict,
        resume: bool = False,
        n_trials: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.completed: dict[int, TrialRecord] = {}
        self.attempts: dict[int, int] = {}
        exists = self.path.exists() and self.path.stat().st_size > 0
        if exists:
            if not resume:
                raise CheckpointError(
                    f"checkpoint {self.path} already exists; resume it"
                    " (FICampaign.resume / --resume) or pick a fresh path"
                )
            _, self.completed, self.attempts = load_checkpoint(
                self.path, fingerprint
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        if not exists:
            header = {
                "kind": "campaign-checkpoint",
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "campaign": fingerprint,
                "campaign_hash": config_hash(fingerprint),
                "git_rev": git_revision(Path(__file__).resolve().parents[3]),
            }
            if n_trials is not None:
                # Advisory planned-trial count: live observers
                # (``repro obs watch``) use it for progress/ETA.  It is
                # not covered by the campaign hash — a resume may
                # legitimately target a different total.
                header["n_trials"] = int(n_trials)
            self._append(header)

    def _append(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def write(
        self,
        trial: int,
        key: tuple,
        record: "TrialRecord",
        attempts: int = 1,
        worker_pid: int | None = None,
    ) -> None:
        """Journal one completed (or quarantined) trial.

        ``worker_pid`` records which persistent-pool worker served the
        trial (``None`` for serial execution).  It is advisory
        post-mortem metadata like ``attempts`` — not covered by the
        campaign hash, and ignored on resume.
        """
        line = {
            "kind": "trial",
            "trial": trial,
            "key": list(key),
            "attempts": attempts,
            "record": trial_record_to_dict(record),
        }
        if worker_pid is not None:
            line["worker"] = int(worker_pid)
        self._append(line)
        self.completed[trial] = record
        self.attempts[trial] = attempts

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
