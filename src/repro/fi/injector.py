"""Fault injectors: context managers that corrupt and always restore.

``MemoryFaultInjector`` flips bits of one stored weight before the
inference and flips them back afterwards — "after each execution, we
flip the same bits back to their fault-free values to enable a fresh
execution for the next fault injection run" (paper §3.2).

``ComputationalFaultInjector`` registers a one-shot forward hook on the
target layer: at the sampled token-generation iteration it flips bits
of a single output-tensor element (in the engine's activation float
format) and then disarms, so exactly one transient corruption occurs
per inference — including under beam search, where only one hypothesis'
computation is struck (a transient fault hits one kernel execution).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fi.sites import FaultSite
from repro.inference.engine import InferenceEngine
from repro.inference.hooks import HookContext
from repro.numerics.formats import flip_value_bits
from repro.obs.flight import flight_recorder as _flight

__all__ = ["MemoryFaultInjector", "ComputationalFaultInjector", "inject"]


class MemoryFaultInjector:
    """Persistent weight corruption with guaranteed restoration."""

    def __init__(self, engine: InferenceEngine, site: FaultSite) -> None:
        if not site.fault_model.is_memory:
            raise ValueError(f"{site.fault_model} is not a memory fault model")
        self.engine = engine
        self.site = site
        self._token = None

    def __enter__(self) -> "MemoryFaultInjector":
        store = self.engine.weight_store(self.site.layer_name)
        self._token = store.flip_element_bits(
            self.site.row, self.site.col, list(self.site.bits)
        )
        # Announce the armed fault so shared-compute fast paths
        # (prefix caching, batched option scoring) disable themselves
        # while the weights are corrupted.
        self.engine.weight_fault_depth += 1
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.arm",
                layer=self.site.layer_name,
                row=self.site.row,
                col=self.site.col,
                bits=list(self.site.bits),
                before=float(self._token.compute_value),
                after=float(store.array[self.site.row, self.site.col]),
            )
        return self

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            store = self.engine.weight_store(self.site.layer_name)
            store.restore(self._token)
            # Shared-arena stores privatized the tensor on the flip;
            # now that it is bit-pristine again, hand the pages back so
            # a long campaign's worker RSS stays one-tensor bounded.
            store.release_private()
            self._token = None
            self.engine.weight_fault_depth -= 1
            recorder = _flight()
            if recorder.active:
                recorder.event("inject.restore", layer=self.site.layer_name)


class ComputationalFaultInjector:
    """One-shot activation corruption at a chosen generation iteration.

    The hook is registered *row-scoped*: it corrupts exactly one
    element of whatever tensor slice it is handed, so batched decoding
    stays enabled while it is armed — under a batched decode step the
    engine applies hooks once per batch row on that row's own
    ``(1, features)`` slice, and the one-shot strikes exactly one
    sequence (the first row reaching the target iteration, which is the
    same hypothesis the serial loop would have struck).  ``batch_row``
    optionally pins the strike to a specific batch row instead.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        site: FaultSite,
        batch_row: int | None = None,
    ) -> None:
        if not site.fault_model.is_computational:
            raise ValueError(f"{site.fault_model} is not a computational model")
        self.engine = engine
        self.site = site
        self.batch_row = batch_row
        self.fired = False
        self._remove: Callable[[], None] | None = None

    def _hook(self, output: np.ndarray, ctx: HookContext) -> np.ndarray | None:
        if self.fired or ctx.iteration != self.site.iteration:
            return None
        if (
            self.batch_row is not None
            and ctx.batch_row is not None
            and ctx.batch_row != self.batch_row
        ):
            return None
        self.fired = True
        flat = output if output.ndim == 2 else output.reshape(-1, output.shape[-1])
        row = min(int(self.site.row_frac * flat.shape[0]), flat.shape[0] - 1)
        col = self.site.col % flat.shape[1]
        before = float(flat[row, col])
        flat[row, col] = flip_value_bits(
            flat[row, col], list(self.site.bits), self.engine.activation_format
        )
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.fire",
                layer=ctx.full_name,
                iteration=int(ctx.iteration),
                batch_row=ctx.batch_row,
                row=row,
                col=col,
                bits=list(self.site.bits),
                before=before,
                after=float(flat[row, col]),
            )
        return output

    def __enter__(self) -> "ComputationalFaultInjector":
        self.fired = False
        self._remove = self.engine.hooks.register(
            self.site.layer_name, self._hook, row_scoped=True
        )
        return self

    def __exit__(self, *exc: object) -> None:
        if self._remove is not None:
            self._remove()
            self._remove = None


def inject(engine: InferenceEngine, site: FaultSite):
    """Build the right injector for ``site``'s fault model."""
    if site.fault_model.is_memory:
        return MemoryFaultInjector(engine, site)
    return ComputationalFaultInjector(engine, site)
