"""Fault injectors: context managers that corrupt and always restore.

``MemoryFaultInjector`` flips bits of one stored weight before the
inference and flips them back afterwards — "after each execution, we
flip the same bits back to their fault-free values to enable a fresh
execution for the next fault injection run" (paper §3.2).

``ComputationalFaultInjector`` registers a one-shot forward hook on the
target layer: at the sampled token-generation iteration it flips bits
of a single output-tensor element (in the engine's activation float
format) and then disarms, so exactly one transient corruption occurs
per inference — including under beam search, where only one hypothesis'
computation is struck (a transient fault hits one kernel execution).

``KVFaultInjector`` corrupts one stored K/V element at the sampled
generation iteration; unlike an activation fault the flipped bits
*persist* in the cache, so every later token attending to the struck
position reads corrupted state.  The injector watches the struck cache
for rollbacks (rejected speculation rounds, snapshot restores): a
strike that landed beyond the surviving prefix is undone and the
injector re-arms, so the fault actually lands in the tokens the model
emits instead of silently dying in discarded draft state.

``AccumulatorFaultInjector`` corrupts a GEMM-internal *partial sum*:
at the sampled reduction split the running accumulator for one output
element flips bits, then the remaining products accumulate on top of
the corrupted value — exactly ``out += flip(partial_k) - partial_k``,
computed without re-running the layer's full matmul.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fi.sites import FaultSite
from repro.inference.engine import InferenceEngine
from repro.inference.hooks import HookContext
from repro.inference.kvcache import KVCache
from repro.numerics.formats import flip_value_bits
from repro.obs.flight import flight_recorder as _flight

__all__ = [
    "MemoryFaultInjector",
    "ComputationalFaultInjector",
    "KVFaultInjector",
    "AccumulatorFaultInjector",
    "inject",
]


class MemoryFaultInjector:
    """Persistent weight corruption with guaranteed restoration."""

    def __init__(self, engine: InferenceEngine, site: FaultSite) -> None:
        if not site.fault_model.is_memory:
            raise ValueError(f"{site.fault_model} is not a memory fault model")
        self.engine = engine
        self.site = site
        self._token = None

    def __enter__(self) -> "MemoryFaultInjector":
        store = self.engine.weight_store(self.site.layer_name)
        self._token = store.flip_element_bits(
            self.site.row, self.site.col, list(self.site.bits)
        )
        # Announce the armed fault so shared-compute fast paths
        # (prefix caching, batched option scoring) disable themselves
        # while the weights are corrupted.
        self.engine.weight_fault_depth += 1
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.arm",
                layer=self.site.layer_name,
                row=self.site.row,
                col=self.site.col,
                bits=list(self.site.bits),
                before=float(self._token.compute_value),
                after=float(store.array[self.site.row, self.site.col]),
            )
        return self

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            store = self.engine.weight_store(self.site.layer_name)
            store.restore(self._token)
            # Shared-arena stores privatized the tensor on the flip;
            # now that it is bit-pristine again, hand the pages back so
            # a long campaign's worker RSS stays one-tensor bounded.
            store.release_private()
            self._token = None
            self.engine.weight_fault_depth -= 1
            recorder = _flight()
            if recorder.active:
                recorder.event("inject.restore", layer=self.site.layer_name)


class ComputationalFaultInjector:
    """One-shot activation corruption at a chosen generation iteration.

    The hook is registered *row-scoped*: it corrupts exactly one
    element of whatever tensor slice it is handed, so batched decoding
    stays enabled while it is armed — under a batched decode step the
    engine applies hooks once per batch row on that row's own
    ``(1, features)`` slice, and the one-shot strikes exactly one
    sequence (the first row reaching the target iteration, which is the
    same hypothesis the serial loop would have struck).  ``batch_row``
    optionally pins the strike to a specific batch row instead.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        site: FaultSite,
        batch_row: int | None = None,
    ) -> None:
        if not site.fault_model.is_computational:
            raise ValueError(f"{site.fault_model} is not a computational model")
        self.engine = engine
        self.site = site
        self.batch_row = batch_row
        self.fired = False
        self._remove: Callable[[], None] | None = None

    def _hook(self, output: np.ndarray, ctx: HookContext) -> np.ndarray | None:
        if self.fired or ctx.iteration != self.site.iteration:
            return None
        if (
            self.batch_row is not None
            and ctx.batch_row is not None
            and ctx.batch_row != self.batch_row
        ):
            return None
        self.fired = True
        flat = output if output.ndim == 2 else output.reshape(-1, output.shape[-1])
        row = min(int(self.site.row_frac * flat.shape[0]), flat.shape[0] - 1)
        col = self.site.col % flat.shape[1]
        before = float(flat[row, col])
        flat[row, col] = flip_value_bits(
            flat[row, col], list(self.site.bits), self.engine.activation_format
        )
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.fire",
                layer=ctx.full_name,
                iteration=int(ctx.iteration),
                batch_row=ctx.batch_row,
                row=row,
                col=col,
                bits=list(self.site.bits),
                before=before,
                after=float(flat[row, col]),
            )
        return output

    def __enter__(self) -> "ComputationalFaultInjector":
        self.fired = False
        self._remove = self.engine.hooks.register(
            self.site.layer_name, self._hook, row_scoped=True
        )
        return self

    def __exit__(self, *exc: object) -> None:
        if self._remove is not None:
            self._remove()
            self._remove = None


class KVFaultInjector:
    """Persistent K/V-cache corruption with rollback-aware arming.

    Armed on the engine (``engine.kv_fault``), which calls
    :meth:`on_append` from the attention paths right after new K/V
    lands in the target block's cache.  The strike latches on the first
    append at or past the sampled iteration (``>=`` — speculative
    verification chunks skip iteration values, and a waiting fault in
    real hardware does not politely disappear when the scheduler
    batches tokens), resolves the struck token position against the
    cache's *occupied* prefix, and flips the sampled bits in place.

    The corruption persists — every later attention over the struck
    position reads the flipped bits — until the cache itself discards
    the position: the injector registers as a truncation watcher on the
    struck cache, and a rollback to at or below the struck position
    restores the element and re-arms the fault (the satellite-3 bug:
    without this, a rejected speculation round silently erased the
    fault while the one-shot injector believed it had fired).

    ``caches`` optionally pins the strike to one sequence's per-block
    cache list (identity comparison) — the live-server mode, where the
    engine is shared by every tenant but the fault must land in exactly
    one request's slot.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        site: FaultSite,
        caches: list[KVCache] | None = None,
    ) -> None:
        if not site.fault_model.is_kv:
            raise ValueError(f"{site.fault_model} is not a KV-cache fault model")
        self.engine = engine
        self.site = site
        self.caches = caches
        self.fired = False
        self._struck: tuple | None = None

    def __enter__(self) -> "KVFaultInjector":
        if self.engine.kv_fault is not None:
            raise RuntimeError("another KV fault is already armed on this engine")
        self.fired = False
        self.engine.kv_fault = self
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.kv_arm",
                layer=self.site.layer_name,
                plane=self.site.plane,
                head=self.site.row,
                channel=self.site.col,
                bits=list(self.site.bits),
                iteration=int(self.site.iteration),
            )
        return self

    def on_append(self, block: int, cache: KVCache, iteration: int) -> None:
        """Engine callback after K/V for ``block`` landed in ``cache``."""
        if self.fired or block != self.site.block:
            return
        if self.caches is not None and cache is not self.caches[block]:
            return
        if iteration < self.site.iteration or cache.length <= 0:
            return
        pos = min(int(self.site.row_frac * cache.length), cache.length - 1)
        buf = cache.k if self.site.plane == "k" else cache.v
        head = self.site.row % buf.shape[0]
        chan = self.site.col % buf.shape[2]
        before = float(buf[head, pos, chan])
        buf[head, pos, chan] = flip_value_bits(
            before, list(self.site.bits), "fp32"
        )
        self.fired = True
        self._struck = (cache, buf, head, pos, chan, before)
        cache.watch(self)
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.kv_fire",
                layer=self.site.layer_name,
                plane=self.site.plane,
                iteration=int(iteration),
                head=head,
                position=pos,
                channel=chan,
                bits=list(self.site.bits),
                before=before,
                after=float(buf[head, pos, chan]),
            )

    def on_truncate(self, cache: KVCache, length: int) -> None:
        """Cache rollback: undo + re-arm if the strike was discarded."""
        if self._struck is None:
            return
        struck_cache, buf, head, pos, chan, before = self._struck
        if cache is not struck_cache or length > pos:
            return
        buf[head, pos, chan] = before
        cache.unwatch(self)
        self._struck = None
        self.fired = False
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.kv_rollback",
                layer=self.site.layer_name,
                position=pos,
                truncated_to=int(length),
            )

    def __exit__(self, *exc: object) -> None:
        if self._struck is not None:
            cache, buf, head, pos, chan, before = self._struck
            buf[head, pos, chan] = before
            cache.unwatch(self)
            self._struck = None
            recorder = _flight()
            if recorder.active:
                recorder.event("inject.restore", layer=self.site.layer_name)
        if self.engine.kv_fault is self:
            self.engine.kv_fault = None


class AccumulatorFaultInjector:
    """One-shot GEMM partial-sum corruption at a chosen iteration.

    Armed on the engine (``engine.acc_fault``); the engine's linear
    layer calls :meth:`maybe_strike` right after each GEMM with the
    inputs still at hand.  The injector recomputes the target output
    element's partial sum over the sampled reduction split, flips the
    sampled bits of that partial in the activation format, and adds the
    resulting delta to the final output — bit-exact equivalence to the
    flip having happened *inside* the reduction, at a cost of one
    length-``k`` dot product instead of a re-run GEMM.
    """

    def __init__(self, engine: InferenceEngine, site: FaultSite) -> None:
        if not site.fault_model.is_accumulator:
            raise ValueError(f"{site.fault_model} is not an accumulator model")
        self.engine = engine
        self.site = site
        self.fired = False

    def __enter__(self) -> "AccumulatorFaultInjector":
        if self.engine.acc_fault is not None:
            raise RuntimeError(
                "another accumulator fault is already armed on this engine"
            )
        self.fired = False
        self.engine.acc_fault = self
        return self

    def __exit__(self, *exc: object) -> None:
        if self.engine.acc_fault is self:
            self.engine.acc_fault = None

    def maybe_strike(
        self,
        out: np.ndarray,
        x: np.ndarray,
        w: np.ndarray,
        layer_name: str,
        iteration,
        rows: np.ndarray | None,
    ) -> None:
        """Corrupt one partial sum of the ``(N, D) @ (D, C)`` GEMM that
        just produced ``out`` (mutated in place)."""
        site = self.site
        if self.fired or layer_name != site.layer_name or iteration is None:
            return
        if isinstance(iteration, np.ndarray):
            # Batched decode step: per-row iteration counts.  Strike the
            # first row at the target iteration — the same sequence the
            # serial loop would have struck.
            matches = np.nonzero(np.asarray(iteration) == site.iteration)[0]
            if matches.size == 0:
                return
            row = int(matches[0])
        else:
            if int(iteration) != site.iteration:
                return
            row = min(int(site.row_frac * out.shape[0]), out.shape[0] - 1)
        col = site.col % out.shape[1]
        d = x.shape[1]
        split = min(1 + int(site.acc_frac * d), d)
        partial = float(x[row, :split] @ w[:split, col])
        corrupted = float(
            flip_value_bits(
                np.float32(partial), list(site.bits), self.engine.activation_format
            )
        )
        before = float(out[row, col])
        out[row, col] = np.float32(before + (corrupted - partial))
        self.fired = True
        recorder = _flight()
        if recorder.active:
            recorder.event(
                "inject.acc_fire",
                layer=layer_name,
                iteration=int(site.iteration),
                batch_row=int(rows[row]) if rows is not None else None,
                row=row,
                col=col,
                split=split,
                bits=list(site.bits),
                partial=partial,
                corrupted=corrupted,
                before=before,
                after=float(out[row, col]),
            )


def inject(engine: InferenceEngine, site: FaultSite):
    """Build the right injector for ``site``'s fault model."""
    if site.fault_model.is_memory:
        return MemoryFaultInjector(engine, site)
    if site.fault_model.is_kv:
        return KVFaultInjector(engine, site)
    if site.fault_model.is_accumulator:
        return AccumulatorFaultInjector(engine, site)
    return ComputationalFaultInjector(engine, site)
