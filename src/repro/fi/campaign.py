"""Statistical fault-injection campaigns (paper §3.2, §3.3).

A campaign evaluates one (model, task, fault model) cell of the paper's
study: it computes the fault-free baseline over a standardized example
subset, then runs ``n_trials`` independent fault injections — each at a
uniformly sampled site — and aggregates normalized performance with
log-transform 95% confidence intervals, SDC breakdowns and
bit-position vulnerability profiles.

Every trial derives its RNG from a *stable trial key* — a hash of
``(example identity, trial index, fault model)`` — never from
enumeration order, so a campaign is bit-reproducible, embarrassingly
parallel, and restartable: the optional process pool partitions trials
without changing any sampled site, and a resumed run replays exactly
the sites an uninterrupted run would have drawn.

The runner itself is fault-tolerant (the execution layer must survive
the same paper-scale campaigns it measures):

* ``checkpoint=`` journals each completed trial to a crash-durable
  JSONL file (:mod:`repro.fi.checkpoint`); :meth:`FICampaign.resume`
  skips already-recorded trial keys and reproduces the same aggregate
  results as one uninterrupted run;
* trials that raise are retried with exponential backoff
  (``max_retries``) and quarantined as :attr:`Outcome.FAILED` records
  when they fail deterministically — the campaign completes instead of
  crashing;
* a dead worker is respawned (it re-attaches to the campaign's shared
  weight arena — weights are never re-shipped); ``trial_timeout``
  bounds each trial (a stuck worker is killed and replaced); after
  ``max_pool_rebuilds`` replacements the campaign degrades gracefully
  to serial execution.

Scale-out: parallel execution uses a *pre-forked persistent pool*
built once per campaign.  The target (and draft) engines export their
weight planes into a memory-mapped read-only arena; every worker
attaches zero-copy, so N workers share one physical copy of the model
through the page cache.  Weight-fault trials copy-on-write only the
targeted tensor (see ``WeightStore._ensure_writable``).  Work is
distributed dynamically — the parent hands the next pending trial to
whichever worker frees up first (work stealing without a shared lock),
which keeps all workers busy under skewed trial durations.  The pool
survives across ``run()``/``resume()`` calls on the same campaign.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing as mp
import os
import shutil
import signal
import tempfile
import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path

import numpy as np

from repro.fi.checkpoint import CampaignCheckpoint, site_to_dict
from repro.fi.fault_models import FaultModel
from repro.fi.injector import inject
from repro.fi.outcomes import Outcome, classify_direct_answer, classify_generative
from repro.fi.sites import FaultSite, LayerFilter, sample_site
from repro.generation.batched import BatchedDecoder, decode_batching_safe
from repro.generation.decode import GenerationConfig, choose_option, generate_ids
from repro.generation.spec_batched import BatchedSpeculativeDecoder
from repro.generation.speculative import SpeculativeDecoder, decode_speculation_safe
from repro.inference.engine import CaptureState, InferenceEngine
from repro.metrics.evaluate import score_generative
from repro.model.params import arena_nbytes
from repro.obs.flight import flight_recorder as _flight
from repro.obs.instrument import attach_layer_timing
from repro.obs.manifest import config_hash
from repro.obs.runtime import telemetry as _telemetry
from repro.obs.trace import SpanRecord
from repro.numerics.stats import (
    RatioCI,
    log_ratio_ci_means,
    log_ratio_ci_proportions,
)
from repro.tasks.base import GenExample, MCExample
from repro.tasks.math_task import extract_final_answer
from repro.text.tokenizer import Tokenizer

__all__ = [
    "TrialRecord",
    "CampaignResult",
    "CampaignChaos",
    "ChaosError",
    "TrialTimeoutError",
    "FICampaign",
]


@dataclass(frozen=True)
class TrialRecord:
    """One fault-injection run's outcome."""

    site: FaultSite
    example_index: int
    prediction: str
    outcome: Outcome
    metrics: dict = field(hash=False, compare=False)
    changed: bool = False
    selection_changed: bool | None = None
    """For MoE gate studies: did the expert routing change?"""
    fired: bool = True
    """Whether the armed fault actually struck during the trial's
    inference.  Memory faults always fire (the corruption exists the
    moment the weights flip); transient injectors can miss — the decode
    can end before the sampled iteration, and a draft-side fault's
    round schedule may skip it.  The masking studies condition on this:
    a trial whose fault never landed measures nothing."""
    error: str | None = field(default=None, hash=False, compare=False)
    """For quarantined (``FAILED``) trials: the final attempt's error."""


@dataclass
class CampaignResult:
    """Aggregated campaign statistics.

    Quarantined (``FAILED``) trials appear in :attr:`trials` — the
    campaign accounts for every requested trial — but are excluded
    from SDC rates and metric aggregates: they produced no model
    output to classify.
    """

    task_name: str
    fault_model: FaultModel
    n_trials: int
    baseline: dict
    faulty: dict
    normalized: dict
    trials: list[TrialRecord]

    @property
    def quarantined(self) -> int:
        """Trials that failed deterministically and were quarantined."""
        return sum(t.outcome is Outcome.FAILED for t in self.trials)

    def _classified(self) -> list[TrialRecord]:
        return [t for t in self.trials if t.outcome is not Outcome.FAILED]

    @property
    def sdc_rate(self) -> float:
        """Fraction of classified trials whose outcome is an SDC."""
        classified = self._classified()
        if not classified:
            return 0.0
        return sum(t.outcome.is_sdc for t in classified) / len(classified)

    def sdc_breakdown(self) -> dict[str, float]:
        """Fractions of classified trials that are subtle vs distorted."""
        n = max(1, len(self._classified()))
        subtle = sum(t.outcome is Outcome.SDC_SUBTLE for t in self.trials)
        distorted = sum(t.outcome is Outcome.SDC_DISTORTED for t in self.trials)
        return {"subtle": subtle / n, "distorted": distorted / n}

    def outcomes_by_highest_bit(self) -> dict[int, dict[str, int]]:
        """Per-highest-flipped-bit outcome counts (paper Figs 9/10)."""
        table: dict[int, dict[str, int]] = {}
        for t in self.trials:
            row = table.setdefault(
                t.site.highest_bit,
                {"masked": 0, "subtle": 0, "distorted": 0, "failed": 0},
            )
            key = {
                Outcome.MASKED: "masked",
                Outcome.SDC_SUBTLE: "subtle",
                Outcome.SDC_DISTORTED: "distorted",
                Outcome.FAILED: "failed",
            }[t.outcome]
            row[key] += 1
        return table


# ----------------------------------------------------------------------------
# Runner-level fault injection (chaos testing the campaign driver).
# ----------------------------------------------------------------------------


class ChaosError(RuntimeError):
    """Raised by :class:`CampaignChaos` strikes (transient or sticky)."""


class TrialTimeoutError(RuntimeError):
    """A trial exceeded ``trial_timeout`` and was abandoned."""


@dataclass(frozen=True)
class CampaignChaos:
    """Deliberate faults in the campaign *runner* for resilience tests.

    The repo injects bit flips into models; this injects failures into
    the execution layer itself, so the supervisor's retry, quarantine,
    timeout and pool-rebuild paths can be exercised deterministically.
    All strikes key on the trial index; except for ``fail_always`` they
    fire only on a trial's first attempt, so a correct supervisor
    always recovers.
    """

    fail_transient: frozenset = frozenset()
    """Trials that raise on their first attempt only."""
    fail_always: frozenset = frozenset()
    """Trials that raise on every attempt (deterministic failures)."""
    die_in_worker: frozenset = frozenset()
    """Trials that kill their worker process (first attempt, pool only)."""
    hang: frozenset = frozenset()
    """Trials that sleep ``hang_seconds`` on their first attempt."""
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        for name in ("fail_transient", "fail_always", "die_in_worker", "hang"):
            object.__setattr__(self, name, frozenset(getattr(self, name)))

    def strike(self, trial: int, attempt: int, in_worker: bool) -> None:
        if trial in self.fail_always:
            raise ChaosError(f"chaos: deterministic failure in trial {trial}")
        if attempt > 0:
            return
        if trial in self.fail_transient:
            raise ChaosError(f"chaos: transient failure in trial {trial}")
        if trial in self.die_in_worker and in_worker:
            os._exit(13)
        if trial in self.hang:
            time.sleep(self.hang_seconds)


@dataclass(frozen=True)
class _Supervision:
    """Resolved fault-tolerance knobs for one ``run()`` invocation."""

    trial_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    max_pool_rebuilds: int = 2


@contextmanager
def _trial_alarm(seconds: float | None):
    """Best-effort serial trial timeout via ``SIGALRM``.

    Active only on platforms with ``SIGALRM`` and from the main thread;
    elsewhere serial trials run unbounded (pool execution enforces the
    timeout in the parent instead).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _fire(signum, frame):
        raise TrialTimeoutError(f"trial exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------------
# Worker-side state for the persistent pool.
# ----------------------------------------------------------------------------

_WORKER: dict = {}


def _attach_worker_campaign(arena_root: Path, campaign_state: dict) -> "FICampaign":
    """Rebuild a worker-local campaign over the shared weight arena.

    Nothing heavyweight crosses the process boundary: the campaign
    state dict is inherited through ``fork`` and the engines attach
    zero-copy to the parent's exported mmap planes, so every worker
    (including ones respawned after a death) shares one physical copy
    of the weights through the page cache.
    """
    campaign = FICampaign.__new__(FICampaign)
    campaign.__dict__.update(campaign_state)
    campaign.engine = InferenceEngine.open_shared(arena_root / "target")
    draft_dir = arena_root / "draft"
    campaign.draft_model = (
        InferenceEngine.open_shared(draft_dir) if draft_dir.exists() else None
    )
    # Each worker builds its own prefill-session cache: sessions wrap
    # the worker-local engine and are deliberately never shared.  The
    # cache persists across every trial this worker serves.
    campaign._prefill_sessions = {}
    campaign._pool = None
    campaign._arena = None
    # Serving is a parent-process concern: a worker's engine is its own
    # arena attachment, so server handles never cross the fork.
    campaign._serve = None
    campaign._serve_faults = False
    return campaign


def _pool_worker_main(
    arena_root: str,
    campaign_state: dict,
    telemetry_active: bool,
    flight_active: bool,
    task_q,
    result_conn,
) -> None:
    """Persistent pool worker: attach to the arena, then serve trials.

    Messages on ``result_conn`` are ``(kind, pid, trial, body)``:

    * ``("ready", pid, None, None)`` — attached and idle;
    * ``("start", pid, trial, None)`` — began executing ``trial`` (the
      supervisor arms the trial deadline here, so queue latency and
      attach time never count against ``trial_timeout``);
    * ``("ok", pid, trial, (record, payload))`` — trial finished;
    * ``("err", pid, trial, "Type: msg")`` — trial raised (the worker
      already ran ``_post_failure_repair`` and is reusable).

    ``result_conn`` is this worker's *private* pipe to the supervisor.
    A shared results queue would serialize all workers through one
    write lock — and a worker SIGKILLed (deadline) or ``os._exit``ed
    (crash) while holding it would orphan the lock and wedge every
    surviving sibling mid-``put``, deadlocking the whole pool.  With
    one single-writer pipe per worker, a death can corrupt at most its
    own channel, which the supervisor detects as EOF and discards.

    The loop exits on a ``None`` sentinel or a closed task queue.
    """
    campaign = _attach_worker_campaign(Path(arena_root), campaign_state)
    _WORKER["campaign"] = campaign
    _WORKER["in_pool"] = True
    if telemetry_active:
        # Workers collect into their own process-local telemetry; the
        # parent merges the returned snapshots in trial order, so the
        # merged stream is deterministic w.r.t. worker scheduling.
        tel = _telemetry()
        tel.reset()
        tel.enable()
        attach_layer_timing(campaign.engine, tel)
    if flight_active:
        # The flight recorder is likewise per-process: each worker arms
        # its own and ships drained records back with the result.
        recorder = _flight()
        recorder.reset()
        recorder.arm()
    pid = os.getpid()
    try:
        result_conn.send(("ready", pid, None, None))
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            task = task_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        trial, attempt = task
        try:
            result_conn.send(("start", pid, trial, None))
            try:
                record, payload = _worker_run_one((trial, attempt))
            except Exception as exc:  # noqa: BLE001 — shipped to supervisor
                result_conn.send(
                    ("err", pid, trial, f"{type(exc).__name__}: {exc}")
                )
            else:
                result_conn.send(("ok", pid, trial, (record, payload)))
        except (BrokenPipeError, OSError, KeyboardInterrupt):
            return


def _worker_run_one(args: tuple[int, int]) -> tuple[TrialRecord, dict | None]:
    """Run one trial in a pool worker; returns (record, telemetry)."""
    trial, attempt = args
    campaign: FICampaign = _WORKER["campaign"]
    tel = _telemetry()
    recorder = _flight()
    if tel.active:
        # Drop residue from a previously failed attempt on this worker.
        tel.tracer.reset()
        tel.metrics.reset()
    if recorder.active:
        recorder.reset()
    try:
        record = campaign._run_trial(trial, attempt)
    except Exception:
        campaign._post_failure_repair()
        raise
    if not tel.active and not recorder.active:
        return record, None
    payload: dict = {
        # Clock anchor pairing this worker's perf_counter epoch with
        # wall time, so the parent can rebase span starts onto its own
        # monotonic timeline at adoption.
        "clock": {"perf": time.perf_counter(), "unix": time.time()},
        "pid": os.getpid(),
    }
    if tel.active:
        payload["spans"] = [span.to_dict() for span in tel.tracer.records]
        payload["metrics"] = tel.metrics.snapshot()
        tel.tracer.reset()
        tel.metrics.reset()
    if recorder.active:
        payload["flight"] = recorder.drain()
    return record, payload


# ----------------------------------------------------------------------------
# Shared weight arena + pre-forked persistent pool (parent side).
# ----------------------------------------------------------------------------


class _SharedArena:
    """One campaign's exported weight planes on disk (target + draft).

    Exported exactly once per campaign into a temp directory of
    ``.npy``-layout mmap arenas; every pool worker — initial or
    respawned — attaches to the same files, so weights are shipped
    zero times regardless of how often the pool rebuilds.  The
    directory is removed when the campaign is garbage collected
    (workers keep their mappings alive through the open inodes).
    """

    def __init__(self, engine: InferenceEngine, draft: InferenceEngine | None):
        self.root = Path(tempfile.mkdtemp(prefix="repro-arena-"))
        engine.export_shared(self.root / "target")
        self.nbytes = arena_nbytes(self.root / "target")
        if draft is not None:
            draft.export_shared(self.root / "draft")
            self.nbytes += arena_nbytes(self.root / "draft")
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self.root), True
        )

    def close(self) -> None:
        self._finalizer()


def _terminate_procs(workers: dict) -> None:
    """GC-time backstop: SIGTERM any pool worker still alive."""
    for proc, _task_q in list(workers.values()):
        if proc.is_alive():
            proc.terminate()


class CampaignPool:
    """Pre-forked persistent worker pool with parent-side dispatch.

    Workers are forked once (inheriting the campaign state; attaching
    to the shared arena for weights) and then serve trials until the
    campaign ends.  The parent assigns the next pending trial to
    whichever worker reports free first — dynamic dispatch is the
    work-stealing behaviour (an idle worker "steals" trials a static
    chunking would have given to a slower sibling) without any shared
    lock, and it gives the supervisor exact trial→worker attribution
    for deadlines and death accounting.

    This class owns only process/queue mechanics; retry, quarantine
    and degradation *policy* lives in ``FICampaign._run_pool``.
    """

    def __init__(
        self,
        spawn_args: tuple,
        n_workers: int,
    ) -> None:
        # fork (not spawn): workers must inherit spawn_args by memory
        # so the campaign state is never pickled, and must exist before
        # any trial runs so arena pages are shared, not duplicated.
        self._ctx = mp.get_context("fork")
        self._spawn_args = spawn_args
        self.n_workers = n_workers
        self.telemetry_active = bool(spawn_args[2])
        self.flight_active = bool(spawn_args[3])
        # One private result pipe per worker (single writer, no shared
        # lock): a worker killed mid-send can only corrupt its own
        # channel, never block a sibling's results.
        self._conns: dict[int, object] = {}  # pid -> parent-side reader
        self._buffered: deque = deque()  # messages drained off dead conns
        self._workers: dict[int, tuple] = {}  # pid -> (proc, task_q)
        self._idle: set[int] = set()
        self._ready: set[int] = set()
        self.in_flight: dict[int, list] = {}  # pid -> [trial, started or None]
        self.spawning = 0
        self.closed = False
        self._finalizer = weakref.finalize(
            self, _terminate_procs, self._workers
        )
        for _ in range(n_workers):
            self.spawn_worker()

    # -- lifecycle ---------------------------------------------------------

    def spawn_worker(self) -> int:
        """Fork one worker; it announces itself with a "ready" message."""
        task_q = self._ctx.SimpleQueue()
        r_conn, w_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(*self._spawn_args, task_q, w_conn),
            daemon=True,
        )
        proc.start()
        # Drop the parent's copy of the write end: the worker must be
        # the *only* writer so its death EOFs the reader.  (Forking the
        # next worker after this close also keeps siblings from
        # inheriting each other's write ends.)
        w_conn.close()
        self._workers[proc.pid] = (proc, task_q)
        self._conns[proc.pid] = r_conn
        self.spawning += 1
        return proc.pid

    def wait_ready(self, timeout: float = 120.0) -> int:
        """Block until every spawning worker attached (or died/timed out).

        Returns the number of "ready" announcements processed.  Used
        only at spinup, when no trials are in flight — later readies
        (respawns) flow through the supervisor's normal ``poll`` loop.
        """
        ready = 0
        deadline = time.monotonic() + timeout
        while self.spawning and time.monotonic() < deadline:
            msg = self.poll(0.2)
            if msg is not None and msg[0] == "ready":
                ready += 1
            elif msg is None and not any(
                proc.is_alive()
                for pid, (proc, _q) in self._workers.items()
                if pid not in self._ready
            ):
                self.reap_dead()
                break
        return ready

    def close(self) -> None:
        """Shut the pool down: sentinel, short grace, then kill."""
        if self.closed:
            return
        self.closed = True
        for _pid, (_proc, task_q) in list(self._workers.items()):
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        grace = time.monotonic() + 1.0
        for _pid, (proc, _q) in list(self._workers.items()):
            proc.join(max(0.0, grace - time.monotonic()))
        for _pid, (proc, _q) in list(self._workers.items()):
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        self._workers.clear()
        self._idle.clear()
        self._ready.clear()
        self.in_flight.clear()
        self.spawning = 0
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        self._buffered.clear()
        self._finalizer.detach()

    # -- scheduling --------------------------------------------------------

    @property
    def idle(self) -> set[int]:
        return self._idle

    def worker_pids(self) -> list[int]:
        return sorted(self._workers)

    def alive(self) -> bool:
        return any(proc.is_alive() for proc, _q in self._workers.values())

    def dispatch(self, trial: int, attempt: int) -> int:
        """Hand ``(trial, attempt)`` to an idle worker; returns its pid."""
        pid = self._idle.pop()
        self.in_flight[pid] = [trial, None]
        self._workers[pid][1].put((trial, attempt))
        return pid

    def _recv(self, timeout: float):
        """One message from any worker pipe (or ``None`` on timeout).

        A readable connection that raises on ``recv`` belongs to a
        worker that died mid-frame; its channel is discarded — the
        process itself is collected by ``reap_dead``.
        """
        if self._buffered:
            return self._buffered.popleft()
        if not self._conns:
            time.sleep(timeout)
            return None
        for conn in mp_connection.wait(list(self._conns.values()), timeout):
            try:
                return conn.recv()
            except (EOFError, OSError):
                self._discard_conn(conn)
        return None

    def _discard_conn(self, conn) -> None:
        for pid, c in list(self._conns.items()):
            if c is conn:
                del self._conns[pid]
        try:
            conn.close()
        except OSError:
            pass

    def _drain_conn(self, pid: int) -> None:
        """Salvage any fully-delivered messages a dead worker left in
        its pipe (e.g. a final "ok" racing the death) before closing."""
        conn = self._conns.pop(pid, None)
        if conn is None:
            return
        try:
            while conn.poll(0):
                self._buffered.append(conn.recv())
        except (EOFError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass

    def poll(self, timeout: float):
        """Next worker message (or ``None`` on timeout), with pool
        bookkeeping (idle/ready/in-flight transitions) already applied."""
        msg = self._recv(timeout)
        if msg is None:
            return None
        kind, pid, trial, _body = msg
        if kind == "ready":
            self.spawning = max(0, self.spawning - 1)
            if pid in self._workers:
                self._ready.add(pid)
                self._idle.add(pid)
        elif kind == "start":
            entry = self.in_flight.get(pid)
            if entry is not None and entry[0] == trial:
                entry[1] = time.monotonic()
        elif kind in ("ok", "err"):
            entry = self.in_flight.get(pid)
            if entry is not None and entry[0] == trial:
                del self.in_flight[pid]
            if pid in self._workers:
                self._idle.add(pid)
        return msg

    def reap_dead(self) -> list[tuple[int, int | None]]:
        """Collect dead workers; returns ``[(pid, orphaned trial?)]``."""
        dead = []
        for pid, (proc, _task_q) in list(self._workers.items()):
            if proc.is_alive():
                continue
            proc.join()
            self._drain_conn(pid)
            entry = self.in_flight.pop(pid, None)
            if pid not in self._ready:
                self.spawning = max(0, self.spawning - 1)
            self._idle.discard(pid)
            self._ready.discard(pid)
            del self._workers[pid]
            dead.append((pid, entry[0] if entry else None))
        return dead

    def expired(self, now: float, timeout: float | None) -> list[tuple[int, int]]:
        """Workers whose armed trial deadline has passed."""
        if not timeout:
            return []
        return [
            (pid, entry[0])
            for pid, entry in self.in_flight.items()
            if entry[1] is not None and now - entry[1] > timeout
        ]

    def kill_worker(self, pid: int) -> None:
        """SIGKILL one worker (stuck mid-trial) and forget it."""
        entry = self._workers.pop(pid, None)
        if entry is None:
            return
        proc, _task_q = entry
        proc.kill()
        proc.join(5.0)
        # No salvage here: the worker was killed *because* its trial is
        # suspect; anything left on its pipe is stale.
        conn = self._conns.pop(pid, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self.in_flight.pop(pid, None)
        self._idle.discard(pid)
        self._ready.discard(pid)


class FICampaign:
    """Driver for one statistical fault-injection campaign."""

    def __init__(
        self,
        engine: InferenceEngine,
        tokenizer: Tokenizer,
        task_name: str,
        metrics: tuple[str, ...],
        examples: list,
        fault_model: FaultModel,
        seed: int = 0,
        generation: GenerationConfig | None = None,
        layer_filter: LayerFilter | None = None,
        track_expert_selection: bool = False,
        max_fault_iterations: int | None = None,
        prefill_cache: bool = True,
        mc_scoring: str = "auto",
        decode_strategy: str = "auto",
        decode_batch_size: int = 8,
        draft_model: InferenceEngine | None = None,
        speculation_depth: int = 4,
        spec_fault_side: str | None = None,
        chaos: CampaignChaos | None = None,
    ) -> None:
        self.engine = engine
        self.tokenizer = tokenizer
        self.task_name = task_name
        self.metrics = metrics
        self.examples = list(examples)
        if not self.examples:
            raise ValueError("campaign needs at least one example")
        self.fault_model = fault_model
        self.seed = seed
        self.is_mc = isinstance(self.examples[0], MCExample)
        self.generation = generation or GenerationConfig()
        self.layer_filter = layer_filter
        self.track_expert_selection = track_expert_selection
        self.max_fault_iterations = max_fault_iterations
        """Restrict computational-fault timing to iterations below this
        bound (the paper's CoT study injects only during reasoning-token
        generation)."""
        self.prefill_cache = prefill_cache
        """Reuse one fault-free prefilled session per example for
        generative trials whose fault strikes at iteration >= 1 (the
        iteration-0 forward is then bit-identical to the baseline's).
        Memory faults and iteration-0 computational faults always
        re-prefill — their prompt forward differs from the baseline."""
        self.mc_scoring = mc_scoring
        """Option-scoring strategy passed to :func:`choose_option`
        (``auto`` shares the prompt prefill across options whenever no
        fault machinery is armed; set ``full`` to force the unshared
        reference path, e.g. for equivalence benchmarking)."""
        self.decode_strategy = decode_strategy
        """Decode routing passed to :func:`generate_ids` (``auto``
        batches whenever :func:`decode_batching_safe` allows it —
        fault-free baselines batch across examples, faulty trials batch
        only under row-scoped hooks; set ``serial`` to force the exact
        per-sequence reference loop everywhere)."""
        self.decode_batch_size = decode_batch_size
        """Continuous-batching width for the fault-free generative
        baseline sweep (faulty trials decode one sequence at a time)."""
        if draft_model is not None and (
            draft_model.config.vocab_size != engine.config.vocab_size
        ):
            raise ValueError(
                "draft_model must share the target's vocabulary:"
                f" draft has {draft_model.config.vocab_size} tokens,"
                f" target has {engine.config.vocab_size}"
            )
        if decode_strategy == "speculative" and draft_model is None:
            raise ValueError("decode_strategy='speculative' needs a draft_model")
        self.draft_model = draft_model
        """Optional same-tokenizer draft engine for speculative greedy
        decoding.  Fault-free generative work — the baseline sweep and
        any trial whose fault machinery is not armed — drafts
        ``speculation_depth`` tokens per verify round; injected trials
        fail the :func:`~repro.generation.speculative.decode_speculation_safe`
        gate and run the exact serial reference path automatically."""
        self.speculation_depth = speculation_depth
        if spec_fault_side is not None:
            if spec_fault_side not in ("draft", "target"):
                raise ValueError(
                    f"spec_fault_side must be 'draft' or 'target',"
                    f" got {spec_fault_side!r}"
                )
            if draft_model is None:
                raise ValueError("spec_fault_side needs a draft_model")
            if self.is_mc:
                raise ValueError(
                    "the speculation-side study is generative-only"
                )
        self.spec_fault_side = spec_fault_side
        """Speculation-side masking study: inject every trial's fault
        into the named engine of the draft/verify pair *while decoding
        speculatively* (``decode_one(force=True)``).  ``"draft"`` sites
        are sampled against the draft engine's geometry; the
        verification step should mask them all (the masking theorem in
        :mod:`repro.generation.speculative`).  ``None`` (default) keeps
        the standard single-engine trial path."""
        self.chaos = chaos
        """Optional runner-level fault injection (resilience tests)."""
        self._example_ids = [self._stable_example_id(ex) for ex in self.examples]
        self._baseline_preds: list | None = None
        self._baseline_selections: list | None = None
        self._prefill_sessions: dict[int, tuple] = {}
        """Per-example ``(session, cache snapshots, last_logits,
        position)`` entries for fault-free prefill reuse (never pickled
        to workers — each worker rebuilds its own lazily)."""
        self._metric_baseline_memo: dict[tuple[str, int], float] = {}
        self._arena: _SharedArena | None = None
        """Lazily exported shared weight arena (one per campaign —
        pool rebuilds and resumed runs re-attach, never re-export)."""
        self._pool: CampaignPool | None = None
        """Persistent pre-forked worker pool; survives across
        ``run()``/``resume()`` boundaries until :meth:`close_pool`."""
        self._serve = None
        """Optional attached :class:`~repro.serve.server.InferenceServer`
        (:meth:`attach_server`): fault-free generative baselines submit
        as tenant traffic instead of monopolizing the engine."""
        self._serve_tenant = "campaign"
        self._serve_faults = False
        """When True (``attach_server(serve_faults=True)``), KV-fault
        trials also run *through the live server* — the fault is pinned
        to the campaign request's pool slot while other tenants' streams
        share the batch (the cross-request blast-radius mode)."""

    # -- stable trial identity ---------------------------------------------------

    @staticmethod
    def _stable_example_id(ex) -> str:
        """Content hash identifying an example across runs and reorders."""
        if isinstance(ex, MCExample):
            payload = ["mc", ex.prompt, list(ex.options), ex.answer_index]
        else:
            payload = ["gen", ex.prompt, ex.reference]
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        return digest[:16]

    def trial_key(self, trial: int) -> tuple[str, int, str]:
        """The stable ``(example id, trial index, fault model)`` key.

        This is the identity a checkpoint journal records and the sole
        source of a trial's RNG entropy (besides the campaign seed) —
        enumeration order, worker scheduling and resume boundaries can
        never shift which site a trial samples.
        """
        idx = trial % len(self.examples)
        return (self._example_ids[idx], trial, self.fault_model.value)

    def _trial_rng(self, trial: int) -> np.random.Generator:
        digest = hashlib.sha256(
            json.dumps(self.trial_key(trial)).encode()
        ).digest()
        words = [
            int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
        ]
        return np.random.default_rng([self.seed, *words])

    def fingerprint(self) -> dict:
        """Result-determining configuration, hashed into checkpoints.

        Perf knobs (``prefill_cache``, ``mc_scoring``,
        ``decode_strategy``, ``decode_batch_size``, ``draft_model``,
        ``speculation_depth``) are excluded on purpose: they cannot
        change TrialRecords (the differential suite holds them to
        that), so a journal written under one execution strategy may be
        resumed under another.
        """
        fingerprint = {
            "task": self.task_name,
            "fault_model": self.fault_model.value,
            "seed": self.seed,
            "is_mc": self.is_mc,
            "metrics": list(self.metrics),
            "example_ids": list(self._example_ids),
            "generation": {
                "max_new_tokens": self.generation.max_new_tokens,
                "num_beams": self.generation.num_beams,
                "length_penalty": self.generation.length_penalty,
                "eos_id": self.generation.eos_id,
            },
            "max_fault_iterations": self.max_fault_iterations,
            "track_expert_selection": self.track_expert_selection,
            "layer_filter": (
                getattr(self.layer_filter, "__name__", repr(self.layer_filter))
                if self.layer_filter is not None
                else None
            ),
        }
        if self.spec_fault_side is not None:
            # The speculation-side study makes the speculative schedule
            # result-determining (strike timing depends on round
            # boundaries), so these join the fingerprint — but only
            # conditionally, preserving every existing journal's hash.
            fingerprint["spec_fault_side"] = self.spec_fault_side
            fingerprint["speculation_depth"] = self.speculation_depth
        return fingerprint

    # -- shared single-example evaluation --------------------------------------

    def _encode_mc(self, ex: MCExample) -> tuple[list[int], list[list[int]]]:
        prompt = self.tokenizer.encode(ex.prompt)
        options = [self.tokenizer.encode(o) for o in ex.options]
        return prompt, options

    def _eval_mc(self, ex: MCExample) -> int:
        prompt, options = self._encode_mc(ex)
        return choose_option(
            self.engine, prompt, options, strategy=self.mc_scoring
        )

    def _eval_gen(self, ex: GenExample, session=None) -> str:
        prompt = self.tokenizer.encode(ex.prompt)
        ids = generate_ids(
            self.engine,
            prompt,
            self.generation,
            session=session,
            strategy=self.decode_strategy,
            draft=self.draft_model,
            speculation_depth=self.speculation_depth,
        )
        return self.tokenizer.decode(ids)

    def _capture_selections(self) -> dict | None:
        if not self.track_expert_selection:
            return None
        assert self.engine.capture is not None
        return dict(self.engine.capture.expert_selections)

    # -- serving integration -----------------------------------------------------

    def attach_server(
        self, server, tenant: str = "campaign", serve_faults: bool = False
    ) -> None:
        """Route fault-free generative baselines through a live
        :class:`~repro.serve.server.InferenceServer` as tenant traffic.

        The campaign becomes *just another tenant*: its baseline sweep
        competes under the server's admission control and weighted
        scheduling instead of monopolizing the engine with a blocking
        library call.  Served tokens are greedy-identical to the local
        path (the serve equivalence gate), so TrialRecords are
        unchanged.  By default injected trials keep the exact local
        reference path — fault arming and serving never mix.

        ``serve_faults=True`` (KV-fault campaigns only) additionally
        routes *injected* trials through the server: each trial submits
        its prompt with the sampled KV fault attached, the server arms
        a :class:`~repro.fi.injector.KVFaultInjector` pinned to that
        request's pool slot, and the fault decodes mid-batch alongside
        whatever other tenants are streaming — the cross-request
        blast-radius mode.  Slot pinning scopes the corruption to the
        campaign's own stream (asserted by the stream-isolation tests),
        so concurrent tenant traffic is measured, not forbidden.
        """
        if self.is_mc:
            raise ValueError("serving integration is generative-only")
        if serve_faults and not self.fault_model.is_kv:
            raise ValueError(
                "serve_faults mode is KV-fault-only:"
                f" {self.fault_model.value} faults arm engine-global state"
            )
        if serve_faults and self.generation.num_beams != 1:
            raise ValueError("serve_faults mode requires greedy decoding")
        if serve_faults and self.spec_fault_side is not None:
            raise ValueError(
                "serve_faults and spec_fault_side are mutually exclusive"
            )
        if server.engine is not self.engine:
            raise ValueError("server must wrap this campaign's engine")
        if server.config.eos_id != self.generation.eos_id:
            raise ValueError(
                "server and campaign must agree on eos_id:"
                f" server {server.config.eos_id},"
                f" campaign {self.generation.eos_id}"
            )
        server.ensure_tenant(tenant)
        self._serve = server
        self._serve_tenant = tenant
        self._serve_faults = serve_faults

    def detach_server(self) -> None:
        self._serve = None
        self._serve_faults = False

    def _serve_fallback(self, reason: str) -> None:
        """An attached server declined the baseline sweep: count the
        degradation (``serve.campaign_fallback.<reason>``, rendered by
        ``repro obs report``) so silently falling back to the local
        decode path is observable instead of invisible."""
        tel = _telemetry()
        if tel.active:
            tel.metrics.counter(f"serve.campaign_fallback.{reason}").add()

    def _serve_baseline(self, prompts: list[list[int]]) -> "list[str] | None":
        """Submit the baseline sweep as tenant traffic; ``None`` when
        the attached server cannot take it (not running, beams, draft
        mismatch, armed fault machinery) so the caller falls back to
        the local path — every decline increments a reason-labelled
        ``serve.campaign_fallback`` counter."""
        server = self._serve
        if server is None:
            return None
        if not server.running:
            self._serve_fallback("not_running")
            return None
        if self.generation.num_beams != 1:
            self._serve_fallback("beam_search")
            return None
        if self.draft_model is not None:
            # Speculative baselines route through the server only when
            # it speculates with the *same* draft — otherwise served
            # and local perf shapes would silently diverge.
            if server.draft is not self.draft_model:
                self._serve_fallback("speculation_unsupported")
                return None
            if not decode_speculation_safe(self.engine, self.draft_model):
                self._serve_fallback("fault_machinery")
                return None
        if not decode_batching_safe(self.engine):
            self._serve_fallback("fault_machinery")
            return None
        handles = [
            server.submit(
                prompt,
                tenant=self._serve_tenant,
                max_new_tokens=self.generation.max_new_tokens,
            )
            for prompt in prompts
        ]
        return [self.tokenizer.decode(h.result()) for h in handles]

    # -- baseline ----------------------------------------------------------------

    def compute_baseline(self) -> dict:
        """Fault-free predictions + metrics over all examples (cached)."""
        if self._baseline_preds is not None:
            return self._baseline_metrics
        if (
            not self.is_mc
            and not self.track_expert_selection
            and self.decode_strategy == "auto"
        ):
            prompts = [self.tokenizer.encode(ex.prompt) for ex in self.examples]
            served = self._serve_baseline(prompts)
            if served is not None:
                preds = served
            elif self.draft_model is not None and self.generation.num_beams == 1:
                # Fault-free greedy sweep with a draft available: this
                # is the dominant campaign cost, so speculate over a
                # continuous batch (the decoder's gate matrix drops to
                # plain batching or the serial reference if anything is
                # armed).
                decoder = BatchedSpeculativeDecoder(
                    self.engine,
                    self.draft_model,
                    self.generation,
                    speculation_depth=self.speculation_depth,
                    max_batch=self.decode_batch_size,
                )
                preds = [
                    self.tokenizer.decode(ids)
                    for ids in decoder.decode_many(prompts)
                ]
            else:
                # Fault-free sweep: nothing is armed, so the continuous
                # batcher decodes all examples together (it still falls
                # back to the serial reference path if anything is).
                decoder = BatchedDecoder(
                    self.engine, self.generation,
                    max_batch=self.decode_batch_size,
                )
                preds = [self.tokenizer.decode(ids) for ids in
                         decoder.generate_many(prompts)]
            selections: list = [None] * len(preds)
        else:
            preds = []
            selections = []
            for ex in self.examples:
                if self.track_expert_selection:
                    self.engine.capture = CaptureState()
                preds.append(
                    self._eval_mc(ex) if self.is_mc else self._eval_gen(ex)
                )
                selections.append(self._capture_selections())
                self.engine.capture = None
        self._baseline_preds = preds
        self._baseline_selections = selections
        if self.is_mc:
            hits = sum(
                int(p == ex.answer_index) for p, ex in zip(preds, self.examples)
            )
            self._baseline_metrics = {"accuracy": 100.0 * hits / len(preds)}
        else:
            self._baseline_metrics = score_generative(
                self.metrics, preds, self.examples
            )
        return self._baseline_metrics

    # -- one trial ---------------------------------------------------------------

    def _trial_site(self, trial: int, max_iterations: int) -> FaultSite:
        # Draft-side sites must be sampled against the *draft* engine's
        # geometry (its layers, widths and formats differ).
        side = self.spec_fault_side or "target"
        engine = self.draft_model if side == "draft" else self.engine
        return sample_site(
            engine,
            self.fault_model,
            self._trial_rng(trial),
            max_iterations=max_iterations,
            layer_filter=self.layer_filter,
            engine_side=side,
        )

    def _selection_changed(self, idx: int, faulty: dict | None) -> bool | None:
        if not self.track_expert_selection or faulty is None:
            return None
        assert self._baseline_selections is not None
        base = self._baseline_selections[idx]
        if base is None:
            return None
        for key, base_sel in base.items():
            other = faulty.get(key)
            if other is None or other.shape != base_sel.shape:
                return True
            if not np.array_equal(other, base_sel):
                return True
        return False

    def _run_trial(self, trial: int, attempt: int = 0) -> TrialRecord:
        tel = _telemetry()
        if not tel.active:
            return self._run_trial_impl(trial, attempt)
        t0 = time.perf_counter()
        with tel.span("campaign.trial", trial=trial, task=self.task_name) as span:
            record = self._run_trial_impl(trial, attempt)
            span.set(
                site=record.site.layer_name,
                fault=record.site.fault_model.value,
                outcome=record.outcome.name.lower(),
                example=record.example_index,
            )
        metrics = tel.metrics
        metrics.histogram("campaign.trial_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        metrics.counter("campaign.trials").add()
        metrics.counter("campaign.injections").add()
        metrics.counter(f"campaign.outcome.{record.outcome.name.lower()}").add()
        return record

    def _cached_prefill(self, site: FaultSite, idx: int, ex) -> "object | None":
        """The example's fault-free prefilled session, rewound, when safe.

        Safe exactly when the trial's iteration-0 forward is guaranteed
        bit-identical to the baseline's: a transient fault
        (computational, KV-cache or accumulator) timed at iteration
        >= 1 on a generative task — none of those can perturb the
        prompt forward before their sampled iteration.  Memory faults
        corrupt the weights the prefill reads, iteration-0 faults
        strike the prefill itself, speculation-side and served-fault
        trials decode through a different schedule entirely, and
        expert-selection tracking must capture the prefill's routing —
        all of those re-prefill.

        One session per example is kept and *rewound in place* between
        trials via :meth:`KVCache.restore` — a bounded prefix write
        into the session's existing K/V buffers — instead of the old
        ``fork()``, which allocated fresh full-``max_seq`` buffers for
        every trial.  The snapshot bytes are exactly the prefill's, so
        a rewound trial is bit-identical to a freshly prefilled one.
        """
        transient = (
            site.fault_model.is_computational
            or site.fault_model.is_kv
            or site.fault_model.is_accumulator
        )
        if (
            not self.prefill_cache
            or self.is_mc
            or self.track_expert_selection
            or self.spec_fault_side is not None
            or (self._serve is not None and self._serve_faults)
            or not transient
            or site.iteration == 0
        ):
            return None
        entry = self._prefill_sessions.get(idx)
        if entry is None:
            prompt = self.tokenizer.encode(ex.prompt)
            base = self.engine.start_session(prompt)
            self._prefill_sessions[idx] = (
                base,
                [cache.snapshot() for cache in base.caches],
                base.last_logits.copy(),
                base.position,
            )
            # Fresh prefill is already in the pristine state; the next
            # trial for this example rewinds from the snapshots.
            return base
        session, snaps, logits, position = entry
        for cache, snap in zip(session.caches, snaps):
            cache.restore(snap)
        session.iteration = 0
        session.position = position
        session.last_logits = logits.copy()
        return session

    def _run_trial_impl(self, trial: int, attempt: int = 0) -> TrialRecord:
        if self.chaos is not None:
            self.chaos.strike(
                trial, attempt, in_worker=bool(_WORKER.get("in_pool"))
            )
        idx = trial % len(self.examples)
        ex = self.examples[idx]
        max_iter = 1 if self.is_mc else self.generation.max_new_tokens
        if self.max_fault_iterations is not None:
            max_iter = min(max_iter, self.max_fault_iterations)
        site = self._trial_site(trial, max_iter)
        recorder = _flight()
        if recorder.active:
            recorder.begin_trial(
                trial, self.trial_key(trial), site_to_dict(site), idx
            )
        session = self._cached_prefill(site, idx, ex)
        tel = _telemetry()
        if tel.active and not self.is_mc:
            name = "hits" if session is not None else "misses"
            tel.metrics.counter(f"engine.prefill_cache_{name}").add()
        if self.track_expert_selection:
            self.engine.capture = CaptureState()
        detach_front = None
        fired = True
        try:
            if self.spec_fault_side is not None:
                # Speculation-side study: arm the sampled engine of the
                # draft/verify pair and decode speculatively regardless
                # of the safety gate (force=True) — measuring how the
                # speculative schedule interacts with the fault is the
                # point.  No corruption-front probes: the iteration ↔
                # forward mapping differs from the serial reference.
                side_engine = (
                    self.draft_model
                    if self.spec_fault_side == "draft"
                    else self.engine
                )
                spec = SpeculativeDecoder(
                    self.engine,
                    self.draft_model,
                    self.generation,
                    speculation_depth=self.speculation_depth,
                )
                prompt = self.tokenizer.encode(ex.prompt)
                with inject(side_engine, site) as injector:
                    text = self.tokenizer.decode(
                        spec.decode_one(prompt, force=True)
                    )
                fired = getattr(injector, "fired", True)
            elif (
                self._serve_faults
                and self._serve is not None
                and self._serve.running
            ):
                # Live-server blast-radius mode: the fault rides the
                # campaign's own request into the shared batch, pinned
                # to that request's pool slot by the server.
                prompt = self.tokenizer.encode(ex.prompt)
                handle = self._serve.submit(
                    prompt,
                    tenant=self._serve_tenant,
                    max_new_tokens=self.generation.max_new_tokens,
                    kv_fault=site,
                )
                text = self.tokenizer.decode(handle.result())
                fired = bool(handle.kv_fired)
            else:
                with inject(self.engine, site) as injector:
                    if recorder.active:
                        # Probes register after the injector's hook, so
                        # the struck layer's probe observes the
                        # post-injection output; observer + row-scoped
                        # registration keeps the batching/speculation
                        # gates exactly where a recorder-off run has
                        # them.
                        detach_front = recorder.attach_front(
                            self.engine, site.iteration
                        )
                    if self.is_mc:
                        pred_idx = self._eval_mc(ex)
                    else:
                        text = self._eval_gen(ex, session=session)
                fired = getattr(injector, "fired", True)
        finally:
            if detach_front is not None:
                detach_front()
            selections = self._capture_selections()
            self.engine.capture = None

        assert self._baseline_preds is not None
        base_pred = self._baseline_preds[idx]
        if self.is_mc:
            correct = pred_idx == ex.answer_index
            outcome = Outcome.MASKED if correct else Outcome.SDC_SUBTLE
            record = TrialRecord(
                site=site,
                example_index=idx,
                prediction=str(pred_idx),
                outcome=outcome,
                metrics={"accuracy": 100.0 * correct},
                changed=pred_idx != base_pred,
                selection_changed=self._selection_changed(idx, selections),
                fired=fired,
            )
        else:
            trial_metrics = score_generative(self.metrics, [text], [ex])
            if "accuracy" in self.metrics:
                outcome = classify_direct_answer(
                    extract_final_answer(text),
                    ex.meta.get("final_answer", ""),
                    text,
                )
            else:
                outcome = classify_generative(text, base_pred, ex.reference)
            record = TrialRecord(
                site=site,
                example_index=idx,
                prediction=text,
                outcome=outcome,
                metrics=trial_metrics,
                changed=text != base_pred,
                selection_changed=self._selection_changed(idx, selections),
                fired=fired,
            )
        if recorder.active:
            reference = (
                self._flight_reference(site, ex)
                if recorder.has_front
                else None
            )
            recorder.end_trial(
                outcome=record.outcome.value,
                prediction=record.prediction,
                baseline=str(base_pred),
                changed=record.changed,
                fired=fired,
                reference=reference,
            )
        return record

    def _flight_reference(self, site: FaultSite, ex) -> dict | None:
        """Fault-free layer outputs of the struck forward (flight replay).

        The corruption front needs a pristine reference for exactly the
        forward the fault struck.  Because greedy decoding is
        deterministic and the injector is one-shot, the faulty run's
        token prefix up to the strike iteration equals the baseline's —
        so replaying serially (after the injector restored the weights)
        reproduces the struck forward's inputs bit-exactly:

        * MC trials score options at iteration 0, option 0 first, so
          the struck forward is ``forward_full(prompt + options[0])``;
        * memory faults and iteration-0 computational faults strike the
          prompt forward — replay is ``forward_full(prompt)``;
        * iteration-``k`` computational faults strike the ``k``-th
          greedy decode step — replay prefills and re-greedy-decodes
          ``k`` steps, capturing the last.

        Beam-search trials return ``None`` (which hypothesis a replay
        follows is not well-defined); so do strikes the faulty decode
        never reached (baseline hit EOS first — the injector never
        fired either).  The replay runs strictly *outside* the
        injection context on restored weights: a pure post-hoc read
        that cannot perturb trial results.
        """
        capture_before = self.engine.capture
        self.engine.capture = None
        try:
            if self.is_mc:
                prompt, options = self._encode_mc(ex)
                return self._captured_forward([*prompt, *options[0]])
            if self.generation.num_beams != 1 or self.spec_fault_side is not None:
                return None
            # Memory faults strike the prompt forward; every transient
            # model (computational, KV, accumulator) strikes at its
            # sampled iteration.
            strike = 0 if site.fault_model.is_memory else site.iteration
            prompt = self.tokenizer.encode(ex.prompt)
            if strike == 0:
                return self._captured_forward(prompt)
            session = self.engine.start_session(prompt)
            logits = session.last_logits
            for step in range(strike):
                try:
                    token = int(np.nanargmax(logits))
                except ValueError:  # all-NaN logits (cannot happen fault-free)
                    token = 0
                if token == self.generation.eos_id:
                    return None  # baseline ended before the strike
                if step == strike - 1:
                    self.engine.capture = CaptureState()
                logits = session.step(token)
            return dict(self.engine.capture.layer_outputs)
        finally:
            self.engine.capture = capture_before

    def _captured_forward(self, ids: list[int]) -> dict:
        """One fault-free full forward with per-layer output capture."""
        self.engine.capture = CaptureState()
        self.engine.forward_full(ids)
        outputs = dict(self.engine.capture.layer_outputs)
        self.engine.capture = None
        return outputs

    # -- supervision -------------------------------------------------------------

    def _post_failure_repair(self) -> None:
        """Clear fault machinery a crashed trial may have left armed.

        Injector context managers restore weights and remove hooks in
        their ``finally`` paths; this is a belt-and-braces sweep for
        exceptions raised between arm and guard (e.g. a timeout signal
        landing inside ``__enter__``).
        """
        if len(self.engine.hooks):
            self.engine.hooks.clear()
        self.engine.capture = None
        recorder = _flight()
        if recorder.active:
            # A crashed trial's partial forensic record would describe a
            # run that never produced an outcome; drop it (a retry
            # reopens the trial from scratch).
            recorder.abort_trial()

    def _quarantine_record(
        self, trial: int, exc: BaseException | str
    ) -> TrialRecord:
        """A ``FAILED`` placeholder for a deterministically crashing trial.

        ``exc`` is the exception itself (serial path) or its already
        formatted ``"Type: message"`` string (shipped across the pool's
        result queue — exceptions themselves stay worker-side)."""
        max_iter = 1 if self.is_mc else self.generation.max_new_tokens
        if self.max_fault_iterations is not None:
            max_iter = min(max_iter, self.max_fault_iterations)
        tel = _telemetry()
        if tel.active:
            tel.metrics.counter("campaign.trials").add()
            tel.metrics.counter("campaign.quarantined").add()
            tel.metrics.counter("campaign.outcome.failed").add()
        return TrialRecord(
            site=self._trial_site(trial, max_iter),
            example_index=trial % len(self.examples),
            prediction="",
            outcome=Outcome.FAILED,
            metrics={},
            changed=False,
            selection_changed=None,
            error=exc if isinstance(exc, str) else f"{type(exc).__name__}: {exc}",
        )

    def _supervise_serial_trial(
        self, trial: int, sup: _Supervision, attempt0: int = 0
    ) -> tuple[TrialRecord, int]:
        """Run one trial serially with retry/backoff/timeout/quarantine.

        Returns ``(record, attempts_used)`` where ``attempts_used``
        counts attempts made *by this call* plus ``attempt0`` prior
        ones (journalled for post-mortems).
        """
        tel = _telemetry()
        attempt = attempt0
        failures = 0
        while True:
            try:
                with _trial_alarm(sup.trial_timeout):
                    record = self._run_trial(trial, attempt)
                return record, attempt + 1
            except Exception as exc:  # noqa: BLE001 — quarantine, don't crash
                self._post_failure_repair()
                failures += 1
                attempt += 1
                if failures > sup.max_retries:
                    return self._quarantine_record(trial, exc), attempt
                if tel.active:
                    tel.metrics.counter("campaign.retries").add()
                if sup.retry_backoff:
                    time.sleep(sup.retry_backoff * (2 ** (failures - 1)))

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(self, trials: list[TrialRecord]) -> CampaignResult:
        baseline = self.compute_baseline()
        scored = [t for t in trials if t.outcome is not Outcome.FAILED]
        faulty: dict = {}
        normalized: dict = {}
        nan_ci = RatioCI(float("nan"), float("nan"), float("nan"))
        for metric in baseline:
            values = np.array(
                [t.metrics[metric] for t in scored], dtype=np.float64
            )
            faulty[metric] = float(values.mean()) if len(values) else float("nan")
            if not len(values):
                normalized[metric] = nan_ci
            elif metric in ("accuracy", "exact_match"):
                base_hits = round(baseline[metric] / 100.0 * len(self.examples))
                normalized[metric] = log_ratio_ci_proportions(
                    int((values > 0).sum()),
                    len(values),
                    max(1, int(base_hits)),
                    len(self.examples),
                )
            else:
                ratios = []
                for t in scored:
                    base = self._per_example_baseline(metric, t.example_index)
                    if base > 0:
                        ratios.append(t.metrics[metric] / base)
                normalized[metric] = (
                    log_ratio_ci_means(np.array(ratios), 1.0)
                    if ratios
                    else nan_ci
                )
        return CampaignResult(
            task_name=self.task_name,
            fault_model=self.fault_model,
            n_trials=len(trials),
            baseline=baseline,
            faulty=faulty,
            normalized=normalized,
            trials=trials,
        )

    def _per_example_baseline(self, metric: str, idx: int) -> float:
        assert self._baseline_preds is not None
        if self.is_mc:
            ex = self.examples[idx]
            return 100.0 * float(self._baseline_preds[idx] == ex.answer_index)
        # Memoized: _aggregate asks for the same (metric, example) once
        # per trial, and BLEU/ROUGE/chrF re-scoring is not cheap.
        key = (metric, idx)
        cached = self._metric_baseline_memo.get(key)
        if cached is None:
            cached = score_generative(
                (metric,), [self._baseline_preds[idx]], [self.examples[idx]]
            )[metric]
            self._metric_baseline_memo[key] = cached
        return cached

    # -- entry points ------------------------------------------------------------

    def run(
        self,
        n_trials: int,
        n_workers: int = 0,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        trial_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        max_pool_rebuilds: int = 2,
    ) -> CampaignResult:
        """Execute ``n_trials`` fault injections (optionally in parallel).

        ``n_workers=0`` runs serially; otherwise a pre-forked
        persistent pool executes trials individually.  Workers share
        one memory-mapped copy of the weights (per-worker incremental
        memory is KV caches + Python overhead, not the model), pull
        work dynamically from the parent's pending deque, and survive
        across ``run()``/``resume()`` calls on this campaign.  Results
        are identical either way because every trial derives its RNG
        from its stable :meth:`trial_key`.  Telemetry, when enabled, is
        likewise schedule-invariant: worker snapshots merge in trial
        order.

        ``checkpoint`` journals every completed trial to a JSONL file;
        with ``resume=True`` an existing journal's trials are loaded
        and skipped (see :meth:`resume`).  ``trial_timeout`` bounds one
        trial's wall clock; trials that raise are retried up to
        ``max_retries`` times with exponential ``retry_backoff`` before
        being quarantined as :attr:`Outcome.FAILED`; a dead or stuck
        worker is killed and respawned against the existing shared
        arena up to ``max_pool_rebuilds`` times, after which execution
        degrades to serial.
        """
        sup = _Supervision(
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        tel = _telemetry()
        detach = attach_layer_timing(self.engine, tel) if tel.active else None
        try:
            with tel.span(
                "campaign.run",
                task=self.task_name,
                fault=self.fault_model.value,
                trials=n_trials,
                workers=n_workers,
                campaign_hash=config_hash(self.fingerprint()),
            ):
                return self._run(n_trials, n_workers, tel, sup, checkpoint, resume)
        finally:
            if detach is not None:
                detach()

    def resume(
        self,
        checkpoint: str | Path,
        n_trials: int,
        n_workers: int = 0,
        **supervision,
    ) -> CampaignResult:
        """Resume a checkpointed campaign, re-running only missing trials.

        Already-journalled ``(example, trial, fault)`` keys are skipped;
        the aggregate over journalled + fresh trials is bit-identical
        to an uninterrupted ``run(n_trials)`` because trial RNGs derive
        from stable keys.  A journal written by a *different* campaign
        configuration is rejected (fingerprint hash mismatch).  If the
        checkpoint file does not exist yet, this is simply a
        checkpointed run from scratch.
        """
        return self.run(
            n_trials, n_workers, checkpoint=checkpoint, resume=True, **supervision
        )

    def _run(
        self,
        n_trials: int,
        n_workers: int,
        tel,
        sup: _Supervision,
        checkpoint: str | Path | None,
        resume: bool,
    ) -> CampaignResult:
        self.compute_baseline()
        if tel.active and not self.is_mc:
            # Materialize both counters up front so traced reports always
            # show the hit/miss pair, even when one side stays zero.
            tel.metrics.counter("engine.prefill_cache_hits")
            tel.metrics.counter("engine.prefill_cache_misses")
        results: dict[int, TrialRecord] = {}
        journal: CampaignCheckpoint | None = None
        if checkpoint is not None:
            with tel.span(
                "campaign.checkpoint", path=str(checkpoint), resume=resume
            ) as span:
                journal = CampaignCheckpoint(
                    checkpoint,
                    self.fingerprint(),
                    resume=resume,
                    n_trials=n_trials,
                )
                for trial, record in journal.completed.items():
                    if trial < n_trials:
                        results[trial] = record
                span.set(skipped=len(results))
            if tel.active and results:
                tel.metrics.counter("campaign.resume_skipped").add(len(results))
        todo = [t for t in range(n_trials) if t not in results]
        try:
            if n_workers <= 1 or len(todo) <= 1:
                for trial in todo:
                    record, attempts = self._supervise_serial_trial(trial, sup)
                    results[trial] = record
                    if journal is not None:
                        journal.write(
                            trial, self.trial_key(trial), record, attempts
                        )
            else:
                self._run_pool(todo, n_workers, tel, sup, journal, results)
        finally:
            if journal is not None:
                journal.close()
        trials = [results[t] for t in range(n_trials)]
        return self._aggregate(trials)

    # -- persistent pool (parent-side policy) -----------------------------------

    def _ensure_arena(self) -> _SharedArena:
        """Export the shared weight arena exactly once per campaign."""
        if self._arena is None:
            self._arena = _SharedArena(self.engine, self.draft_model)
        return self._arena

    def _worker_state(self) -> dict:
        """Campaign state inherited by forked workers.

        Engines are excluded — workers attach to the shared arena
        instead — as are prefill sessions (rebuilt worker-side) and
        the pool/arena handles themselves.
        """
        drop = {"engine", "draft_model", "_prefill_sessions", "_pool",
                "_arena", "_serve"}
        return {k: v for k, v in self.__dict__.items() if k not in drop}

    def _ensure_pool(self, n_workers: int, tel) -> CampaignPool:
        """The campaign's persistent pool, (re)built only when stale.

        A healthy pool is reused across ``run()``/``resume()`` calls —
        resuming into a live pool pays zero spinup.  It is rebuilt only
        when the requested worker count or the telemetry/flight
        activation changed (workers bake those in at fork time).
        """
        flight_active = _flight().active
        pool = self._pool
        if pool is not None and (
            pool.closed
            or pool.n_workers != n_workers
            or pool.telemetry_active != tel.active
            or pool.flight_active != flight_active
        ):
            pool.close()
            pool = self._pool = None
        if pool is None:
            arena = self._ensure_arena()
            with tel.span(
                "campaign.pool_spinup",
                workers=n_workers,
                arena_bytes=arena.nbytes,
            ) as span:
                pool = CampaignPool(
                    (
                        str(arena.root),
                        self._worker_state(),
                        tel.active,
                        flight_active,
                    ),
                    n_workers,
                )
                ready = pool.wait_ready()
                span.set(attached=ready)
            if tel.active:
                tel.metrics.counter("campaign.shared_attach").add(ready)
                tel.metrics.gauge("campaign.workers").set(float(n_workers))
                tel.metrics.gauge("campaign.arena_bytes").set(float(arena.nbytes))
                tel.manifest_extra["scaleout"] = {
                    "workers": n_workers,
                    "arena_bytes": arena.nbytes,
                }
            self._pool = pool
        return pool

    def close_pool(self) -> None:
        """Tear down the persistent pool and arena (idempotent).

        Called automatically at garbage collection; call explicitly to
        release the worker processes early (e.g. between campaigns in a
        long-lived driver).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def _run_pool(
        self,
        todo: list[int],
        n_workers: int,
        tel,
        sup: _Supervision,
        journal: CampaignCheckpoint | None,
        results: dict[int, TrialRecord],
    ) -> None:
        """Supervise the persistent pool over this run's pending trials.

        Dispatch is dynamic (next pending trial → first free worker).
        A worker that dies is respawned against the existing arena and
        its orphaned trial re-queued; a worker whose trial exceeds
        ``trial_timeout`` is SIGKILLed and replaced, the trial retried
        or quarantined.  Each replacement counts against
        ``max_pool_rebuilds``; past the budget the pool is shut down
        and the remaining trials degrade to serial execution in the
        parent — graceful degradation beats a dead campaign.
        """
        pool = self._ensure_pool(n_workers, tel)
        attempts = {t: 0 for t in todo}
        failures = {t: 0 for t in todo}
        payloads: dict[int, dict] = {}
        executed: dict[int, int] = {}  # pid -> trials completed there
        pending = deque(sorted(todo))
        done: set[int] = set()
        rebuilds = 0
        degraded = False

        def accept(
            trial: int,
            record: TrialRecord,
            payload: dict | None,
            pid: int | None = None,
        ):
            results[trial] = record
            done.add(trial)
            if payload is not None:
                payloads[trial] = payload
            if journal is not None:
                journal.write(
                    trial,
                    self.trial_key(trial),
                    record,
                    attempts[trial],
                    worker_pid=pid,
                )

        def note_retry(trial: int) -> None:
            if tel.active:
                tel.metrics.counter("campaign.retries").add()

        while len(done) < len(todo):
            if rebuilds > sup.max_pool_rebuilds:
                degraded = True
                break
            while pending and pool.idle:
                trial = pending.popleft()
                pool.dispatch(trial, attempts[trial])
                attempts[trial] += 1
            msg = pool.poll(0.05)
            now = time.monotonic()
            if msg is not None:
                kind, pid, trial, body = msg
                if kind == "ready":
                    if tel.active:
                        tel.metrics.counter("campaign.shared_attach").add()
                elif kind == "ok":
                    executed[pid] = executed.get(pid, 0) + 1
                    record, payload = body
                    # `done` guard: a worker killed at its deadline may
                    # have raced a completed result into the queue; the
                    # trial was already quarantined or re-queued.
                    if trial not in done:
                        accept(trial, record, payload, pid)
                elif kind == "err":
                    executed[pid] = executed.get(pid, 0) + 1
                    if trial not in done:
                        failures[trial] += 1
                        if failures[trial] > sup.max_retries:
                            accept(
                                trial,
                                self._quarantine_record(trial, body),
                                None,
                                pid,
                            )
                        else:
                            note_retry(trial)
                            if sup.retry_backoff:
                                time.sleep(
                                    sup.retry_backoff
                                    * (2 ** (failures[trial] - 1))
                                )
                            pending.append(trial)
            for _pid, orphan in pool.reap_dead():
                rebuilds += 1
                if orphan is not None and orphan not in done:
                    note_retry(orphan)
                    pending.appendleft(orphan)
                if rebuilds <= sup.max_pool_rebuilds:
                    pool.spawn_worker()
            for pid, trial in pool.expired(now, sup.trial_timeout):
                pool.kill_worker(pid)
                rebuilds += 1
                failures[trial] += 1
                if failures[trial] > sup.max_retries:
                    accept(
                        trial,
                        self._quarantine_record(
                            trial,
                            TrialTimeoutError(
                                f"trial exceeded {sup.trial_timeout:g}s"
                            ),
                        ),
                        None,
                        pid,
                    )
                else:
                    note_retry(trial)
                    pending.appendleft(trial)
                if rebuilds <= sup.max_pool_rebuilds:
                    pool.spawn_worker()

        if degraded:
            # Rebuild budget exhausted: abandon the pool (in-flight
            # trials included — their workers may be the problem) and
            # finish every unfinished trial serially in the parent.
            if tel.active:
                tel.metrics.counter("campaign.pool_degraded").add()
            pool.close()
            self._pool = None
            for trial in sorted(set(todo) - done):
                record, n_att = self._supervise_serial_trial(
                    trial, sup, attempt0=attempts[trial]
                )
                attempts[trial] = n_att
                accept(trial, record, None)

        if tel.active and executed:
            # Work actually stolen: completions beyond an even static
            # split.  Zero when every worker served exactly its share.
            fair = math.ceil(sum(executed.values()) / max(1, n_workers))
            steals = sum(max(0, n - fair) for n in executed.values())
            tel.metrics.counter("campaign.steals").add(steals)

        self._merge_worker_payloads(payloads, tel)

    def _merge_worker_payloads(self, payloads: dict[int, dict], tel) -> None:
        recorder = _flight()
        if tel.active or recorder.active:
            # Merge worker telemetry in trial order, so the merged
            # stream is deterministic regardless of which worker (or
            # pool generation) served which trial.
            anchor_perf = time.perf_counter()
            anchor_unix = time.time()
            campaign_hash = config_hash(self.fingerprint())
            for trial in sorted(payloads):
                payload = payloads[trial]
                if tel.active and "metrics" in payload:
                    tel.metrics.merge(payload["metrics"])
                if tel.active and "spans" in payload:
                    spans = [
                        SpanRecord.from_dict(d) for d in payload["spans"]
                    ]
                    clock = payload.get("clock")
                    if clock is not None:
                        # Rebase worker perf_counter starts onto the
                        # parent's monotonic clock via each side's
                        # (perf, wall) anchor pair, so stitched spans
                        # share one campaign timeline.
                        offset = (clock["unix"] - clock["perf"]) - (
                            anchor_unix - anchor_perf
                        )
                        for span in spans:
                            span.start += offset
                    tel.tracer.adopt(
                        spans,
                        extra_attrs={
                            "campaign_hash": campaign_hash,
                            "trial": trial,
                            "worker_pid": payload.get("pid"),
                        },
                    )
                if recorder.active:
                    recorder.adopt(payload.get("flight", []))
