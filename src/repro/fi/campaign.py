"""Statistical fault-injection campaigns (paper §3.2, §3.3).

A campaign evaluates one (model, task, fault model) cell of the paper's
study: it computes the fault-free baseline over a standardized example
subset, then runs ``n_trials`` independent fault injections — each at a
uniformly sampled site — and aggregates normalized performance with
log-transform 95% confidence intervals, SDC breakdowns and
bit-position vulnerability profiles.

Trials are seeded individually (``default_rng([seed, trial])``) so a
campaign is bit-reproducible and embarrassingly parallel: the optional
process pool partitions trials without changing any sampled site.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.fi.fault_models import FaultModel
from repro.fi.injector import inject
from repro.fi.outcomes import Outcome, classify_direct_answer, classify_generative
from repro.fi.sites import FaultSite, LayerFilter, sample_site
from repro.generation.batched import BatchedDecoder
from repro.generation.decode import GenerationConfig, choose_option, generate_ids
from repro.inference.engine import CaptureState, InferenceEngine
from repro.metrics.evaluate import score_generative
from repro.model.params import ParamStore
from repro.obs.instrument import attach_layer_timing
from repro.obs.runtime import telemetry as _telemetry
from repro.obs.trace import SpanRecord
from repro.numerics.stats import (
    RatioCI,
    log_ratio_ci_means,
    log_ratio_ci_proportions,
)
from repro.tasks.base import GenExample, MCExample
from repro.tasks.math_task import extract_final_answer
from repro.text.tokenizer import Tokenizer

__all__ = ["TrialRecord", "CampaignResult", "FICampaign"]


@dataclass(frozen=True)
class TrialRecord:
    """One fault-injection run's outcome."""

    site: FaultSite
    example_index: int
    prediction: str
    outcome: Outcome
    metrics: dict = field(hash=False, compare=False)
    changed: bool = False
    selection_changed: bool | None = None
    """For MoE gate studies: did the expert routing change?"""


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    task_name: str
    fault_model: FaultModel
    n_trials: int
    baseline: dict
    faulty: dict
    normalized: dict
    trials: list[TrialRecord]

    @property
    def sdc_rate(self) -> float:
        """Fraction of trials whose outcome is an SDC."""
        if not self.trials:
            return 0.0
        return sum(t.outcome.is_sdc for t in self.trials) / len(self.trials)

    def sdc_breakdown(self) -> dict[str, float]:
        """Fractions of all trials that are subtle vs distorted SDCs."""
        n = max(1, len(self.trials))
        subtle = sum(t.outcome is Outcome.SDC_SUBTLE for t in self.trials)
        distorted = sum(t.outcome is Outcome.SDC_DISTORTED for t in self.trials)
        return {"subtle": subtle / n, "distorted": distorted / n}

    def outcomes_by_highest_bit(self) -> dict[int, dict[str, int]]:
        """Per-highest-flipped-bit outcome counts (paper Figs 9/10)."""
        table: dict[int, dict[str, int]] = {}
        for t in self.trials:
            row = table.setdefault(
                t.site.highest_bit, {"masked": 0, "subtle": 0, "distorted": 0}
            )
            key = {
                Outcome.MASKED: "masked",
                Outcome.SDC_SUBTLE: "subtle",
                Outcome.SDC_DISTORTED: "distorted",
            }[t.outcome]
            row[key] += 1
        return table


# ----------------------------------------------------------------------------
# Worker-side state for the process pool.
# ----------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(
    store: ParamStore,
    policy: str,
    campaign_state: dict,
    telemetry_active: bool = False,
) -> None:
    _WORKER["engine"] = InferenceEngine(store, weight_policy=policy)
    _WORKER["state"] = campaign_state
    if telemetry_active:
        # Workers collect into their own process-local telemetry; the
        # parent merges the returned snapshots in chunk order, so the
        # merged stream is deterministic w.r.t. worker scheduling.
        tel = _telemetry()
        tel.reset()
        tel.enable()
        attach_layer_timing(_WORKER["engine"], tel)


def _worker_run(args: tuple[int, int]) -> tuple[list[TrialRecord], dict | None]:
    lo, hi = args
    state = _WORKER["state"]
    campaign = FICampaign.__new__(FICampaign)
    campaign.__dict__.update(state)
    campaign.engine = _WORKER["engine"]
    # Each worker builds its own prefill-session cache: sessions wrap
    # the worker-local engine and are deliberately never pickled.
    campaign._prefill_sessions = {}
    records = [campaign._run_trial(i) for i in range(lo, hi)]
    tel = _telemetry()
    if not tel.active:
        return records, None
    payload = {
        "spans": [span.to_dict() for span in tel.tracer.records],
        "metrics": tel.metrics.snapshot(),
    }
    # Disjoint payload per chunk even if one worker serves several.
    tel.tracer.reset()
    tel.metrics.reset()
    return records, payload


class FICampaign:
    """Driver for one statistical fault-injection campaign."""

    def __init__(
        self,
        engine: InferenceEngine,
        tokenizer: Tokenizer,
        task_name: str,
        metrics: tuple[str, ...],
        examples: list,
        fault_model: FaultModel,
        seed: int = 0,
        generation: GenerationConfig | None = None,
        layer_filter: LayerFilter | None = None,
        track_expert_selection: bool = False,
        max_fault_iterations: int | None = None,
        prefill_cache: bool = True,
        mc_scoring: str = "auto",
        decode_strategy: str = "auto",
        decode_batch_size: int = 8,
    ) -> None:
        self.engine = engine
        self.tokenizer = tokenizer
        self.task_name = task_name
        self.metrics = metrics
        self.examples = list(examples)
        if not self.examples:
            raise ValueError("campaign needs at least one example")
        self.fault_model = fault_model
        self.seed = seed
        self.is_mc = isinstance(self.examples[0], MCExample)
        self.generation = generation or GenerationConfig()
        self.layer_filter = layer_filter
        self.track_expert_selection = track_expert_selection
        self.max_fault_iterations = max_fault_iterations
        """Restrict computational-fault timing to iterations below this
        bound (the paper's CoT study injects only during reasoning-token
        generation)."""
        self.prefill_cache = prefill_cache
        """Reuse one fault-free prefilled session per example for
        generative trials whose fault strikes at iteration >= 1 (the
        iteration-0 forward is then bit-identical to the baseline's).
        Memory faults and iteration-0 computational faults always
        re-prefill — their prompt forward differs from the baseline."""
        self.mc_scoring = mc_scoring
        """Option-scoring strategy passed to :func:`choose_option`
        (``auto`` shares the prompt prefill across options whenever no
        fault machinery is armed; set ``full`` to force the unshared
        reference path, e.g. for equivalence benchmarking)."""
        self.decode_strategy = decode_strategy
        """Decode routing passed to :func:`generate_ids` (``auto``
        batches whenever :func:`decode_batching_safe` allows it —
        fault-free baselines batch across examples, faulty trials batch
        only under row-scoped hooks; set ``serial`` to force the exact
        per-sequence reference loop everywhere)."""
        self.decode_batch_size = decode_batch_size
        """Continuous-batching width for the fault-free generative
        baseline sweep (faulty trials decode one sequence at a time)."""
        self._baseline_preds: list | None = None
        self._baseline_selections: list | None = None
        self._prefill_sessions: dict[int, object] = {}
        """Per-example fault-free prefilled sessions (never pickled to
        workers — each worker rebuilds its own lazily)."""
        self._metric_baseline_memo: dict[tuple[str, int], float] = {}

    # -- shared single-example evaluation --------------------------------------

    def _encode_mc(self, ex: MCExample) -> tuple[list[int], list[list[int]]]:
        prompt = self.tokenizer.encode(ex.prompt)
        options = [self.tokenizer.encode(o) for o in ex.options]
        return prompt, options

    def _eval_mc(self, ex: MCExample) -> int:
        prompt, options = self._encode_mc(ex)
        return choose_option(
            self.engine, prompt, options, strategy=self.mc_scoring
        )

    def _eval_gen(self, ex: GenExample, session=None) -> str:
        prompt = self.tokenizer.encode(ex.prompt)
        ids = generate_ids(
            self.engine,
            prompt,
            self.generation,
            session=session,
            strategy=self.decode_strategy,
        )
        return self.tokenizer.decode(ids)

    def _capture_selections(self) -> dict | None:
        if not self.track_expert_selection:
            return None
        assert self.engine.capture is not None
        return dict(self.engine.capture.expert_selections)

    # -- baseline ----------------------------------------------------------------

    def compute_baseline(self) -> dict:
        """Fault-free predictions + metrics over all examples (cached)."""
        if self._baseline_preds is not None:
            return self._baseline_metrics
        if (
            not self.is_mc
            and not self.track_expert_selection
            and self.decode_strategy == "auto"
        ):
            # Fault-free sweep: nothing is armed, so the continuous
            # batcher decodes all examples together (it still falls
            # back to the serial reference path if anything is).
            decoder = BatchedDecoder(
                self.engine, self.generation, max_batch=self.decode_batch_size
            )
            prompts = [self.tokenizer.encode(ex.prompt) for ex in self.examples]
            preds = [self.tokenizer.decode(ids) for ids in
                     decoder.generate_many(prompts)]
            selections: list = [None] * len(preds)
        else:
            preds = []
            selections = []
            for ex in self.examples:
                if self.track_expert_selection:
                    self.engine.capture = CaptureState()
                preds.append(
                    self._eval_mc(ex) if self.is_mc else self._eval_gen(ex)
                )
                selections.append(self._capture_selections())
                self.engine.capture = None
        self._baseline_preds = preds
        self._baseline_selections = selections
        if self.is_mc:
            hits = sum(
                int(p == ex.answer_index) for p, ex in zip(preds, self.examples)
            )
            self._baseline_metrics = {"accuracy": 100.0 * hits / len(preds)}
        else:
            self._baseline_metrics = score_generative(
                self.metrics, preds, self.examples
            )
        return self._baseline_metrics

    # -- one trial ---------------------------------------------------------------

    def _trial_site(self, trial: int, max_iterations: int) -> FaultSite:
        rng = np.random.default_rng([self.seed, trial])
        return sample_site(
            self.engine,
            self.fault_model,
            rng,
            max_iterations=max_iterations,
            layer_filter=self.layer_filter,
        )

    def _selection_changed(self, idx: int, faulty: dict | None) -> bool | None:
        if not self.track_expert_selection or faulty is None:
            return None
        assert self._baseline_selections is not None
        base = self._baseline_selections[idx]
        if base is None:
            return None
        for key, base_sel in base.items():
            other = faulty.get(key)
            if other is None or other.shape != base_sel.shape:
                return True
            if not np.array_equal(other, base_sel):
                return True
        return False

    def _run_trial(self, trial: int) -> TrialRecord:
        tel = _telemetry()
        if not tel.active:
            return self._run_trial_impl(trial)
        t0 = time.perf_counter()
        with tel.span("campaign.trial", trial=trial, task=self.task_name) as span:
            record = self._run_trial_impl(trial)
            span.set(
                site=record.site.layer_name,
                fault=record.site.fault_model.value,
                outcome=record.outcome.name.lower(),
                example=record.example_index,
            )
        metrics = tel.metrics
        metrics.histogram("campaign.trial_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        metrics.counter("campaign.trials").add()
        metrics.counter("campaign.injections").add()
        metrics.counter(f"campaign.outcome.{record.outcome.name.lower()}").add()
        return record

    def _cached_prefill(self, site: FaultSite, idx: int, ex) -> "object | None":
        """A clone of the example's fault-free prefilled session, when safe.

        Safe exactly when the trial's iteration-0 forward is guaranteed
        bit-identical to the baseline's: a computational fault timed at
        iteration >= 1 on a generative task.  Memory faults corrupt the
        weights the prefill reads, iteration-0 faults strike the prefill
        itself, and expert-selection tracking must capture the prefill's
        routing — all of those re-prefill.
        """
        if (
            not self.prefill_cache
            or self.is_mc
            or self.track_expert_selection
            or not site.fault_model.is_computational
            or site.iteration == 0
        ):
            return None
        base = self._prefill_sessions.get(idx)
        if base is None:
            prompt = self.tokenizer.encode(ex.prompt)
            base = self.engine.start_session(prompt)
            self._prefill_sessions[idx] = base
        return base.fork()

    def _run_trial_impl(self, trial: int) -> TrialRecord:
        idx = trial % len(self.examples)
        ex = self.examples[idx]
        max_iter = 1 if self.is_mc else self.generation.max_new_tokens
        if self.max_fault_iterations is not None:
            max_iter = min(max_iter, self.max_fault_iterations)
        site = self._trial_site(trial, max_iter)
        session = self._cached_prefill(site, idx, ex)
        tel = _telemetry()
        if tel.active and not self.is_mc:
            name = "hits" if session is not None else "misses"
            tel.metrics.counter(f"engine.prefill_cache_{name}").add()
        if self.track_expert_selection:
            self.engine.capture = CaptureState()
        try:
            with inject(self.engine, site):
                if self.is_mc:
                    pred_idx = self._eval_mc(ex)
                else:
                    text = self._eval_gen(ex, session=session)
        finally:
            selections = self._capture_selections()
            self.engine.capture = None

        assert self._baseline_preds is not None
        base_pred = self._baseline_preds[idx]
        if self.is_mc:
            correct = pred_idx == ex.answer_index
            outcome = Outcome.MASKED if correct else Outcome.SDC_SUBTLE
            return TrialRecord(
                site=site,
                example_index=idx,
                prediction=str(pred_idx),
                outcome=outcome,
                metrics={"accuracy": 100.0 * correct},
                changed=pred_idx != base_pred,
                selection_changed=self._selection_changed(idx, selections),
            )
        trial_metrics = score_generative(self.metrics, [text], [ex])
        if "accuracy" in self.metrics:
            outcome = classify_direct_answer(
                extract_final_answer(text), ex.meta.get("final_answer", ""), text
            )
        else:
            outcome = classify_generative(text, base_pred, ex.reference)
        return TrialRecord(
            site=site,
            example_index=idx,
            prediction=text,
            outcome=outcome,
            metrics=trial_metrics,
            changed=text != base_pred,
            selection_changed=self._selection_changed(idx, selections),
        )

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(self, trials: list[TrialRecord]) -> CampaignResult:
        baseline = self.compute_baseline()
        faulty: dict = {}
        normalized: dict = {}
        for metric in baseline:
            values = np.array([t.metrics[metric] for t in trials], dtype=np.float64)
            faulty[metric] = float(values.mean())
            if metric in ("accuracy", "exact_match"):
                base_hits = round(baseline[metric] / 100.0 * len(self.examples))
                normalized[metric] = log_ratio_ci_proportions(
                    int((values > 0).sum()),
                    len(values),
                    max(1, int(base_hits)),
                    len(self.examples),
                )
            else:
                ratios = []
                for t in trials:
                    base = self._per_example_baseline(metric, t.example_index)
                    if base > 0:
                        ratios.append(t.metrics[metric] / base)
                normalized[metric] = (
                    log_ratio_ci_means(np.array(ratios), 1.0)
                    if ratios
                    else RatioCI(float("nan"), float("nan"), float("nan"))
                )
        return CampaignResult(
            task_name=self.task_name,
            fault_model=self.fault_model,
            n_trials=len(trials),
            baseline=baseline,
            faulty=faulty,
            normalized=normalized,
            trials=trials,
        )

    def _per_example_baseline(self, metric: str, idx: int) -> float:
        assert self._baseline_preds is not None
        if self.is_mc:
            ex = self.examples[idx]
            return 100.0 * float(self._baseline_preds[idx] == ex.answer_index)
        # Memoized: _aggregate asks for the same (metric, example) once
        # per trial, and BLEU/ROUGE/chrF re-scoring is not cheap.
        key = (metric, idx)
        cached = self._metric_baseline_memo.get(key)
        if cached is None:
            cached = score_generative(
                (metric,), [self._baseline_preds[idx]], [self.examples[idx]]
            )[metric]
            self._metric_baseline_memo[key] = cached
        return cached

    # -- entry points ------------------------------------------------------------

    def run(self, n_trials: int, n_workers: int = 0) -> CampaignResult:
        """Execute ``n_trials`` fault injections (optionally in parallel).

        ``n_workers=0`` runs serially; otherwise a process pool
        partitions the trial range.  Results are identical either way
        because every trial derives its RNG from ``[seed, trial]``.
        Telemetry, when enabled, is likewise partition-invariant:
        worker snapshots merge in chunk order.
        """
        tel = _telemetry()
        detach = attach_layer_timing(self.engine, tel) if tel.active else None
        try:
            with tel.span(
                "campaign.run",
                task=self.task_name,
                fault=self.fault_model.value,
                trials=n_trials,
                workers=n_workers,
            ):
                return self._run(n_trials, n_workers, tel)
        finally:
            if detach is not None:
                detach()

    def _run(self, n_trials: int, n_workers: int, tel) -> CampaignResult:
        self.compute_baseline()
        if tel.active and not self.is_mc:
            # Materialize both counters up front so traced reports always
            # show the hit/miss pair, even when one side stays zero.
            tel.metrics.counter("engine.prefill_cache_hits")
            tel.metrics.counter("engine.prefill_cache_misses")
        if n_workers <= 1:
            trials = [self._run_trial(i) for i in range(n_trials)]
            return self._aggregate(trials)

        # Prefilled sessions hold engine references and KV buffers —
        # workers rebuild their own lazily instead of unpickling ours.
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k not in ("engine", "_prefill_sessions")
        }
        store = ParamStore(
            self.engine.config,
            {
                **{
                    f"{name}.weight": ws.array.copy()
                    for name, ws in self.engine._stores.items()
                },
                **self.engine._plain,
            },
        )
        n_workers = min(n_workers, os.cpu_count() or 1, n_trials)
        bounds = np.linspace(0, n_trials, n_workers + 1, dtype=int)
        chunks = [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_worker_init,
            initargs=(store, self.engine.weight_policy, state, tel.active),
        ) as pool:
            parts = list(pool.map(_worker_run, chunks))
        trials = [t for records, _ in parts for t in records]
        if tel.active:
            # ``pool.map`` yields results in chunk submission order, so
            # merging here is deterministic regardless of which worker
            # finished first.
            for _, payload in parts:
                if payload is None:
                    continue
                tel.metrics.merge(payload["metrics"])
                tel.tracer.adopt(
                    [SpanRecord.from_dict(d) for d in payload["spans"]]
                )
        return self._aggregate(trials)
