"""Fault models (paper §3.1).

* ``1bit-comp`` / ``2bits-comp`` — transient computational faults: bit
  flips in one output neuron of one linear layer during one token
  generation iteration (ALU-style upsets).
* ``2bits-mem`` — uncorrectable memory faults: a double-bit flip in one
  stored weight, persisting for the entire inference.  Single-bit
  memory upsets are excluded because ECC corrects them on the GPUs the
  paper targets.
"""

from __future__ import annotations

import enum

__all__ = ["FaultModel"]


class FaultModel(str, enum.Enum):
    """The paper's three fault models (values match its labels)."""

    COMP_1BIT = "1bit-comp"
    COMP_2BIT = "2bits-comp"
    MEM_2BIT = "2bits-mem"

    @property
    def n_bits(self) -> int:
        """How many distinct bits flip per fault."""
        return 1 if self is FaultModel.COMP_1BIT else 2

    @property
    def is_memory(self) -> bool:
        return self is FaultModel.MEM_2BIT

    @property
    def is_computational(self) -> bool:
        return not self.is_memory

    @staticmethod
    def all() -> tuple["FaultModel", ...]:
        return (FaultModel.COMP_1BIT, FaultModel.COMP_2BIT, FaultModel.MEM_2BIT)
