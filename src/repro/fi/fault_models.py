"""Fault models (paper §3.1, extended to runtime-state surfaces).

The paper's three models target weights and layer outputs:

* ``1bit-comp`` / ``2bits-comp`` — transient computational faults: bit
  flips in one output neuron of one linear layer during one token
  generation iteration (ALU-style upsets).
* ``2bits-mem`` — uncorrectable memory faults: a double-bit flip in one
  stored weight, persisting for the entire inference.  Single-bit
  memory upsets are excluded because ECC corrects them on the GPUs the
  paper targets.

The end-to-end extension adds the runtime state a deployed stack
actually keeps between forwards (ROADMAP item 4):

* ``1bit-kv`` / ``2bits-kv`` — bit flips in one stored K/V element of
  a :class:`~repro.inference.kvcache.KVCache` block.  Like a memory
  fault the corruption *persists*: every subsequent token that attends
  to the corrupted position reads the flipped bits; unlike a weight
  fault the blast radius is one sequence's cache slot.
* ``1bit-acc`` / ``2bits-acc`` — GEMM-internal accumulator faults: the
  flip lands in a *partial sum* partway through a linear layer's
  reduction, then the remaining products accumulate on top of the
  corrupted value (the dominant SDC site in instruction-level GPU
  soft-error studies).

:meth:`FaultModel.all` still returns exactly the paper's trio — the
published experiments sweep those; :meth:`FaultModel.extended` returns
every model including the runtime-state surfaces.
"""

from __future__ import annotations

import enum

__all__ = ["FaultModel"]


class FaultModel(str, enum.Enum):
    """Fault models (values match the paper's labels where they exist)."""

    COMP_1BIT = "1bit-comp"
    COMP_2BIT = "2bits-comp"
    MEM_2BIT = "2bits-mem"
    KV_1BIT = "1bit-kv"
    KV_2BIT = "2bits-kv"
    ACC_1BIT = "1bit-acc"
    ACC_2BIT = "2bits-acc"

    @property
    def n_bits(self) -> int:
        """How many distinct bits flip per fault."""
        return 1 if self.value.startswith("1bit") else 2

    @property
    def is_memory(self) -> bool:
        return self is FaultModel.MEM_2BIT

    @property
    def is_computational(self) -> bool:
        """Layer-output (activation) faults — the paper's comp models."""
        return self in (FaultModel.COMP_1BIT, FaultModel.COMP_2BIT)

    @property
    def is_kv(self) -> bool:
        """Persistent K/V-cache corruption."""
        return self in (FaultModel.KV_1BIT, FaultModel.KV_2BIT)

    @property
    def is_accumulator(self) -> bool:
        """GEMM partial-sum corruption."""
        return self in (FaultModel.ACC_1BIT, FaultModel.ACC_2BIT)

    @property
    def surface(self) -> str:
        """Which runtime state the fault lands in."""
        if self.is_memory:
            return "weights"
        if self.is_kv:
            return "kv-cache"
        if self.is_accumulator:
            return "accumulator"
        return "activations"

    @staticmethod
    def all() -> tuple["FaultModel", ...]:
        """The paper's three fault models (its published sweeps)."""
        return (FaultModel.COMP_1BIT, FaultModel.COMP_2BIT, FaultModel.MEM_2BIT)

    @staticmethod
    def extended() -> tuple["FaultModel", ...]:
        """Every fault model, including the runtime-state surfaces."""
        return tuple(FaultModel)
