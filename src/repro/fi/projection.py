"""Deployment-level SDC rate projection from campaign statistics.

The paper motivates its study with HPC reliability economics: soft
errors strike at some device-level rate, and what operators need is the
*application-level* consequence.  This module performs the standard
AVF-style projection: combine a campaign's conditional SDC probability
P(SDC | fault hits an FI-targeted bit) with a raw fault rate and the
model's storage footprint to estimate SDCs per unit time.

FIT (Failures In Time) is the conventional unit: events per 10^9
device-hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fi.campaign import CampaignResult
from repro.numerics.stats import wilson_interval

__all__ = ["SDCProjection", "project_sdc_rate", "HOURS_PER_FIT"]

HOURS_PER_FIT = 1e9


@dataclass(frozen=True)
class SDCProjection:
    """Projected application-level silent-corruption rate."""

    p_sdc_given_fault: float
    p_sdc_low: float
    p_sdc_high: float
    faults_per_hour: float
    protected_bits: int

    @property
    def sdc_per_hour(self) -> float:
        """Expected SDCs per hour of continuous inference."""
        return self.p_sdc_given_fault * self.faults_per_hour

    @property
    def sdc_fit(self) -> float:
        """SDC rate in FIT (events per 10^9 hours)."""
        return self.sdc_per_hour * HOURS_PER_FIT

    @property
    def mtbf_hours(self) -> float:
        """Mean time between silent corruptions, in hours."""
        rate = self.sdc_per_hour
        return float("inf") if rate == 0 else 1.0 / rate

    def interval_fit(self) -> tuple[float, float]:
        """95% interval on the FIT estimate (from the campaign CI)."""
        scale = self.faults_per_hour * HOURS_PER_FIT
        return self.p_sdc_low * scale, self.p_sdc_high * scale


def project_sdc_rate(
    result: CampaignResult,
    bit_fit_rate: float,
    n_weight_bits: int,
) -> SDCProjection:
    """Project a campaign's SDC probability to deployment scale.

    Parameters
    ----------
    result:
        A completed memory-fault campaign; its trials estimate
        P(SDC | a fault lands in an FI-targeted weight bit).
    bit_fit_rate:
        Raw per-bit upset rate in FIT (events per bit per 10^9 hours).
        Field studies put uncorrectable-error-producing rates around
        1e-5..1e-3 FIT/bit depending on altitude and technology.
    n_weight_bits:
        Total stored bits across the FI-targeted weights (e.g.
        ``n_params * 16`` for BF16 block linears).
    """
    if bit_fit_rate < 0 or n_weight_bits <= 0:
        raise ValueError("fault rate must be >= 0 and bit count positive")
    if not result.trials:
        raise ValueError("campaign has no trials to project from")
    sdcs = sum(t.outcome.is_sdc for t in result.trials)
    n = len(result.trials)
    low, high = wilson_interval(sdcs, n)
    faults_per_hour = bit_fit_rate * n_weight_bits / HOURS_PER_FIT
    return SDCProjection(
        p_sdc_given_fault=sdcs / n,
        p_sdc_low=low,
        p_sdc_high=high,
        faults_per_hour=faults_per_hour,
        protected_bits=n_weight_bits,
    )
