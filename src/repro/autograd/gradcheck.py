"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: list[np.ndarray],
    wrt: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Inputs are perturbed in float64 to keep truncation error dominant
    over round-off; the analytic engine runs in float32, so comparisons
    should use a tolerance around 1e-2 relative.
    """
    base = [np.asarray(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[wrt])
    it = np.nditer(base[wrt], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = base[wrt][idx]
        base[wrt][idx] = orig + eps
        plus = float(fn(*[Tensor(b) for b in base]).data.sum())
        base[wrt][idx] = orig - eps
        minus = float(fn(*[Tensor(b) for b in base]).data.sum())
        base[wrt][idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: list[np.ndarray],
    rtol: float = 2e-2,
    atol: float = 2e-3,
) -> None:
    """Assert analytic gradients match finite differences for every input."""
    tensors = [Tensor(np.asarray(x, np.float32), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward() if out.ndim else out.backward()
    for i, t in enumerate(tensors):
        expected = numeric_gradient(fn, inputs, wrt=i)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(
            actual,
            expected,
            rtol=rtol,
            atol=atol,
            err_msg=f"gradient mismatch for input {i}",
        )
