"""Reverse-mode autodiff over NumPy: the training substrate."""

from repro.autograd.functional import (
    cross_entropy,
    log_softmax,
    log_softmax_np,
    rms_norm,
    rms_norm_np,
    rope,
    rotate_half,
    silu,
    silu_np,
    softmax,
    softmax_np,
)
from repro.autograd.gradcheck import check_gradients, numeric_gradient
from repro.autograd.optim import SGD, AdamW, CosineWarmupSchedule, clip_grad_norm
from repro.autograd.tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad

__all__ = [
    "AdamW",
    "CosineWarmupSchedule",
    "SGD",
    "Tensor",
    "as_tensor",
    "check_gradients",
    "clip_grad_norm",
    "concat",
    "cross_entropy",
    "is_grad_enabled",
    "log_softmax",
    "log_softmax_np",
    "no_grad",
    "numeric_gradient",
    "rms_norm",
    "rms_norm_np",
    "rope",
    "rotate_half",
    "silu",
    "silu_np",
    "softmax",
    "softmax_np",
]
