"""A compact reverse-mode automatic differentiation engine over NumPy.

The paper evaluates pretrained commercial LLMs; offline we must *train*
our own models so that fault injection perturbs genuinely learned
behaviour rather than random weights.  This module provides the minimal
but complete autograd substrate for that: a :class:`Tensor` wrapping a
``numpy.ndarray`` with a dynamically-built backward graph, supporting
every operation the Llama-style transformer needs (broadcasted
arithmetic, batched matmul, reductions, indexing/embedding-gather,
reshape/transpose, concatenation and elementwise nonlinearities).

Design notes (following the scientific-Python optimization guidance):

* all heavy lifting is vectorised NumPy; Python-level overhead is one
  closure per op;
* gradients accumulate in-place (``+=``) into pre-allocated buffers;
* data is kept ``float32`` throughout — the training precision used by
  the paper's models — with no silent upcasts.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A NumPy array with reverse-mode gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make ndarray defer to our reflected ops

    def __init__(
        self,
        data: np.ndarray | float | Sequence,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: the incoming buffer may alias an upstream grad.
            self.grad = np.array(grad, dtype=np.float32)
        else:
            self.grad += grad

    # -- shape properties ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """The value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the data cut off from the autograd graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward() -> None:
            g = out.grad
            assert g is not None
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(-out.grad)

        out = Tensor._make(-self.data, (self,), backward)
        return out

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward() -> None:
            g = out.grad
            assert g is not None
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return self * as_tensor(other) ** -1.0

    def __rtruediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return as_tensor(other) * self**-1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(
                    out.grad * exponent * self.data ** (exponent - 1.0)
                )

        out = Tensor._make(out_data, (self,), backward)
        return out

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward() -> None:
            g = out.grad
            assert g is not None
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.multiply.outer(g, other.data)
                else:
                    ga = g @ other.data.swapaxes(-1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.multiply.outer(self.data, g)
                else:
                    gb = self.data.swapaxes(-1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    # -- elementwise nonlinearities ---------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out_data * out_data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic function."""
        # exp underflow/overflow saturates to the correct limit values,
        # so the plain form is safe under errstate suppression (and much
        # faster than masked two-branch evaluation).
        with np.errstate(over="ignore"):
            out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root (via ``** 0.5``)."""
        return self**0.5

    # -- reductions ----------------------------------------------------------

    def sum(
        self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False
    ) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward() -> None:
            g = out.grad
            assert g is not None
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).astype(np.float32))
                return
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(np.float32))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def mean(
        self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False
    ) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when None)."""
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- shape manipulation ------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """View with a new shape; gradient reshapes back."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (defaults to full reversal, like NumPy)."""
        axes_t = tuple(axes) if axes else tuple(range(self.ndim))[::-1]
        out_data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Exchange two axes."""
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out = Tensor._make(np.ascontiguousarray(out_data), (self,), backward)
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): ``out[..., :] = self[idx[...], :]``."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward() -> None:
            assert out.grad is not None
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, indices, out.grad)
                self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        return out

    # -- graph execution ---------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (i.e. this tensor is a scalar loss).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = (
            np.ones_like(self.data) if grad is None else np.asarray(grad, np.float32)
        )
        for node in reversed(topo):
            if node._backward is not None:
                node._backward()
            # Tear the graph down as we go: the backward closures refer
            # to their own output node (a reference cycle that otherwise
            # waits for the cycle collector), and intermediate grads are
            # dead once consumed.  Leaves (parameters) keep their grads.
            node._backward = None
            if node._parents:
                node._parents = ()
                if node is not self:
                    node.grad = None


def as_tensor(value: "Tensor | float | np.ndarray | Sequence") -> Tensor:
    """Wrap ``value`` in a non-grad Tensor if it is not one already."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        assert out.grad is not None
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer: list[slice] = [slice(None)] * out_data.ndim
                slicer[axis] = slice(int(lo), int(hi))
                t._accumulate(out.grad[tuple(slicer)])

    out = Tensor._make(out_data, tuple(tensors), backward)
    return out
