"""Differentiable neural-network primitives used by the transformer.

Softmax and cross-entropy get dedicated fused backward rules (the
composed form is both slower and less numerically stable); the rest are
thin compositions over :class:`~repro.autograd.tensor.Tensor` ops.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "silu",
    "rms_norm",
    "cross_entropy",
    "rope",
    "rotate_half",
    "softmax_np",
    "log_softmax_np",
    "silu_np",
    "rms_norm_np",
]

# ----------------------------------------------------------------------------
# Plain-NumPy versions, shared with the fast inference engine.
# ----------------------------------------------------------------------------


def softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax over ``axis`` (pure NumPy)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax over ``axis`` (pure NumPy)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def silu_np(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation (pure NumPy).

    exp overflow saturates the logistic to its correct limit, so the
    plain form is used under errstate suppression for speed.
    """
    with np.errstate(over="ignore"):
        return x / (1.0 + np.exp(-x))


def rms_norm_np(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalization (pure NumPy)."""
    ms = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight


# ----------------------------------------------------------------------------
# Differentiable versions.
# ----------------------------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax with a fused Jacobian-vector backward rule."""
    out_data = softmax_np(x.data, axis=axis)

    def backward() -> None:
        assert out.grad is not None
        if x.requires_grad:
            g = out.grad
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - dot))

    out = Tensor._make(out_data, (x,), backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax with a fused backward rule."""
    out_data = log_softmax_np(x.data, axis=axis)
    probs = np.exp(out_data)

    def backward() -> None:
        assert out.grad is not None
        if x.requires_grad:
            g = out.grad
            x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

    out = Tensor._make(out_data, (x,), backward)
    return out


def silu(x: Tensor) -> Tensor:
    """SiLU activation ``x * sigmoid(x)`` (the Llama MLP nonlinearity)."""
    return x * x.sigmoid()


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    """RMSNorm: ``x / sqrt(mean(x^2) + eps) * weight``.

    Llama-style transformers place this before the attention and MLP
    blocks; the paper identifies it as the mechanism that contains
    computational-fault propagation (Fig. 6).
    """
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x * (ms + eps) ** -0.5 * weight


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int = -100,
) -> Tensor:
    """Mean token-level cross entropy with a fused backward rule.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, V)``.
    targets:
        Integer array of shape ``(N,)``; positions equal to
        ``ignore_index`` contribute neither loss nor gradient (used to
        mask padding and prompt tokens during fine-tuning).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ValueError(
            f"cross_entropy expects (N, V) logits and (N,) targets, got"
            f" {logits.shape} and {targets.shape}"
        )
    valid = targets != ignore_index
    n_valid = int(valid.sum())
    logp = log_softmax_np(logits.data, axis=-1)
    if n_valid == 0:
        return as_tensor(0.0)
    rows = np.nonzero(valid)[0]
    picked = logp[rows, targets[rows]]
    loss_value = -picked.mean()

    probs = np.exp(logp)

    def backward() -> None:
        assert out.grad is not None
        if logits.requires_grad:
            grad = probs.copy()
            grad[rows, targets[rows]] -= 1.0
            grad[~valid] = 0.0
            logits._accumulate(grad * (float(out.grad) / n_valid))

    out = Tensor._make(np.asarray(loss_value, dtype=np.float32), (logits,), backward)
    return out


def _rotate_half_np(x: np.ndarray) -> np.ndarray:
    half = x.shape[-1] // 2
    return np.concatenate([-x[..., half:], x[..., :half]], axis=-1)


def rotate_half(x: np.ndarray) -> np.ndarray:
    """Llama rotate-half helper: ``(x1, x2) -> (-x2, x1)``."""
    return _rotate_half_np(x)


def rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotary positional embedding applied to the last dimension.

    ``cos``/``sin`` are constant tables broadcastable against ``x``
    (shape ``(T, head_dim)`` against ``(..., T, head_dim)``).  The
    rotation is orthogonal, so the backward pass applies the transpose
    rotation ``g * cos - rotate_half(g * sin)``.
    """
    out_data = x.data * cos + _rotate_half_np(x.data) * sin

    def backward() -> None:
        assert out.grad is not None
        if x.requires_grad:
            g = out.grad
            x._accumulate(g * cos - _rotate_half_np(g * sin))

    out = Tensor._make(out_data, (x,), backward)
    return out
