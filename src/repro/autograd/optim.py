"""Optimizers and gradient utilities for the training substrate."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["SGD", "AdamW", "clip_grad_norm", "CosineWarmupSchedule"]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for divergence monitoring).
    """
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))  # type: ignore[operator]
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale  # type: ignore[operator]
    return total


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Iterable[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None


class AdamW:
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1**self._step
        bc2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None


class CosineWarmupSchedule:
    """Linear warmup followed by cosine decay, mutating ``optimizer.lr``."""

    def __init__(
        self,
        optimizer: "AdamW | SGD",
        peak_lr: float,
        warmup_steps: int,
        total_steps: int,
        final_lr_frac: float = 0.1,
    ) -> None:
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("invalid schedule lengths")
        self.optimizer = optimizer
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.final_lr_frac = final_lr_frac
        self._t = 0

    def lr_at(self, t: int) -> float:
        if self.warmup_steps and t < self.warmup_steps:
            return self.peak_lr * (t + 1) / self.warmup_steps
        span = max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, (t - self.warmup_steps) / span)
        floor = self.peak_lr * self.final_lr_frac
        return floor + 0.5 * (self.peak_lr - floor) * (1 + math.cos(math.pi * progress))

    def step(self) -> float:
        lr = self.lr_at(self._t)
        self.optimizer.lr = lr
        self._t += 1
        return lr
