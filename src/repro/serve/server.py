"""Multi-tenant streaming inference server over continuous batching.

:class:`InferenceServer` turns the library-call decode paths into a
long-running serving loop, the end-to-end setting the paper studies:

* **Mid-flight admission** — a single pump thread owns the engine and
  runs one continuous batch.  Every scheduling round it first admits
  waiting requests into free :class:`~repro.inference.kvcache.PooledKVCache`
  slots (prefill, first token), then advances all active rows with one
  :meth:`~repro.inference.engine.InferenceEngine.forward_step_batch`.
  New prompts join *between steps* — there is no drain-and-refill
  barrier, so a long request never holds the batch hostage.
* **Streaming** — ``submit`` returns a :class:`StreamHandle`
  immediately; the pump pushes each generated token into the handle's
  queue as it is decoded, so clients iterate tokens with time-to-first-
  token independent of other requests' lengths.
* **Eager retirement** — a row that hits EOS, its token budget or a
  client cancellation is retired at step granularity and its KV slot
  released immediately, back-filling the batch from the tenant queues.
* **Admission control + fairness** — per-tenant bounded queues (shed
  with typed :class:`~repro.serve.admission.ServeRejected`), per-tenant
  in-flight caps, and smooth weighted round-robin dequeue across
  tenants (:class:`~repro.serve.admission.WeightedScheduler`), so a
  saturating tenant cannot starve a light one's TTFT.
* **Speculative serving** — constructed with a same-tokenizer ``draft``
  engine, the pump replaces the single-token step with a batched
  draft-and-verify round (the
  :class:`~repro.generation.spec_batched.BatchedSpeculativeDecoder`
  schedule): the draft proposes up to ``speculation_depth`` tokens for
  every decoding row while newly admitted prompts prefill in the same
  scheduling round, the target verifies all proposals in grouped
  chunked batched forwards, and ragged accept lengths retire/back-fill
  rows at round granularity.  Emitted tokens remain argmaxes of target
  logits, so streams stay token-identical to serial greedy decode.

**Equivalence contract**: rows decode greedily via the same
``forward_step_batch`` the :class:`~repro.generation.batched.BatchedDecoder`
uses, with the same NaN-safe argmax rule — each served request's
tokens are identical to a serial ``greedy_decode`` of its prompt
(bit-identical at batch width 1, argmax-identical above; asserted
token-for-token by the load generator's equivalence gate and the serve
tests).  The server is a *fault-free* serving plane: campaigns attach
as a tenant for their fault-free generative baselines
(:meth:`~repro.fi.campaign.FICampaign.attach_server`) while injected
trials keep their exact local path.

Observability (gated on the process telemetry switch): ``serve.ttft_ms``
/ ``serve.tpot_ms`` / ``serve.e2e_ms`` / ``serve.queue_depth`` /
``serve.batch_occupancy`` quantile histograms, per-tenant
``serve.tenant.<name>.*`` token/TTFT instruments, admission/shed
counters, and the ``decode.free_slots`` gauge the admission loop also
admits against.
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.generation.decode import GenerationConfig
from repro.generation.spec_batched import _by_length
from repro.inference.engine import InferenceEngine
from repro.inference.kvcache import KVCache, PooledKVCache
from repro.obs.runtime import telemetry as _telemetry
from repro.serve.admission import (
    ServeRejected,
    TenantConfig,
    TenantState,
    WeightedScheduler,
)

__all__ = ["InferenceServer", "StreamHandle", "ServeRejected", "TenantConfig"]

_DONE = object()
"""Stream sentinel: pushed exactly once when a request finishes."""


def _pick(logits: np.ndarray) -> int:
    """NaN-safe argmax, identical to the serial greedy rule."""
    try:
        return int(np.nanargmax(logits))
    except ValueError:  # all-NaN logits
        return 0


class StreamHandle:
    """Client-side view of one submitted request.

    Iterate to stream tokens as the pump generates them (blocking), or
    call :meth:`result` to wait for completion and get the full output.
    :meth:`cancel` abandons the stream mid-generation — the pump
    retires the row at the next step boundary and frees its KV slot.

    After completion, :attr:`finish_reason` is one of ``"eos"``,
    ``"length"``, ``"cancelled"`` or ``"shutdown"``, and
    :attr:`ttft_s` / :attr:`latency_s` / :attr:`tokens` carry the
    request's timings and output.
    """

    def __init__(self, request: "_Request") -> None:
        self._request = request
        self._stream: _queue.SimpleQueue = _queue.SimpleQueue()
        self._done = threading.Event()
        self.tokens: list[int] = []
        self.finish_reason: str | None = None
        self.ttft_s: float | None = None
        self.latency_s: float | None = None
        self.kv_fired: bool = False
        """For requests submitted with a ``kv_fault``: whether the armed
        KV fault actually struck before the stream finished."""

    # -- client API ------------------------------------------------------------

    @property
    def tenant(self) -> str:
        return self._request.tenant

    @property
    def request_id(self) -> int:
        return self._request.id

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def __iter__(self):
        """Yield token ids as they arrive; returns at end of stream."""
        while True:
            item = self._stream.get()
            if item is _DONE:
                return
            yield item

    def result(self, timeout: float | None = None) -> list[int]:
        """Block until the request finishes; returns all output tokens."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self._request.id} not finished within {timeout}s"
            )
        return list(self.tokens)

    def cancel(self) -> None:
        """Abandon the stream; the pump frees the row's slot at the
        next step boundary.  Idempotent, safe at any lifecycle stage."""
        self._request.cancelled = True

    # -- pump-side (single-threaded) -------------------------------------------

    def _push(self, token: int, now: float) -> None:
        if self.ttft_s is None:
            self.ttft_s = now - self._request.t_submit
        self.tokens.append(token)
        self._stream.put(token)

    def _finish(self, reason: str, now: float) -> None:
        self.finish_reason = reason
        self.latency_s = now - self._request.t_submit
        self._stream.put(_DONE)
        self._done.set()


@dataclass
class _Request:
    """Pump-side request state: queue entry, then active batch row."""

    id: int
    tenant: str
    prompt: list[int]
    max_new: int
    t_submit: float
    handle: StreamHandle = field(init=False)
    cancelled: bool = False
    # Batch-row state, populated at admission.
    slot: int | None = None
    caches: list[KVCache] | None = None
    position: int = 0
    iteration: int = 0
    last_token: int = -1
    # Draft-side state (speculative serving only).
    d_slot: int | None = None
    d_caches: list[KVCache] | None = None
    d_len: int = 0
    kv_fault: "object | None" = None
    """Optional :class:`~repro.fi.sites.FaultSite` (a KV fault model):
    armed against this request's pool slot at prefill, disarmed and
    restored at retirement."""
    kv_injector: "object | None" = None

    def __post_init__(self) -> None:
        self.handle = StreamHandle(self)


class InferenceServer:
    """Long-running continuous-batch serving loop around one engine.

    The engine is owned by the pump thread while the server is running
    — clients interact only through :meth:`submit` and the returned
    handles.  ``config`` must be greedy (``num_beams == 1``); per-
    request token budgets default to ``config.max_new_tokens``.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: GenerationConfig,
        max_batch: int = 8,
        tenants: "tuple[TenantConfig, ...] | list[TenantConfig]" = (),
        default_tenant: str = "default",
        pool: PooledKVCache | None = None,
        idle_wait_s: float = 0.05,
        draft: InferenceEngine | None = None,
        speculation_depth: int = 4,
        draft_pool: PooledKVCache | None = None,
    ) -> None:
        if config.num_beams != 1:
            raise ValueError("the serving loop decodes greedily (num_beams=1)")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if draft is not None:
            if speculation_depth < 1:
                raise ValueError("speculation_depth must be >= 1")
            if draft.config.vocab_size != engine.config.vocab_size:
                raise ValueError(
                    "draft/target vocabulary mismatch:"
                    f" draft has {draft.config.vocab_size} tokens,"
                    f" target has {engine.config.vocab_size};"
                    " speculative serving needs a same-tokenizer pair"
                )
        self.engine = engine
        self.config = config
        self.pool = pool if pool is not None else engine.new_pool(max_batch)
        self.max_batch = min(max_batch, self.pool.n_slots)
        self.draft = draft
        self.speculation_depth = speculation_depth
        self.draft_pool = (
            None
            if draft is None
            else (
                draft_pool
                if draft_pool is not None
                else draft.new_pool(self.max_batch)
            )
        )
        self.default_tenant = default_tenant
        self._sched = WeightedScheduler()
        for tenant in tenants:
            self._sched.add(tenant)
        # RLock: retirement paths (`_finish`) run both outside the lock
        # (pump step loop) and under it (cancelled-while-queued requests
        # discovered inside `_dequeue`).
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._active: list[_Request] = []
        self._ids = itertools.count()
        self._thread: threading.Thread | None = None
        self._stop = False
        self._drain = True
        self._idle_wait_s = idle_wait_s
        self.admission_log: list[tuple[str, int]] = []
        """``(tenant, request_id)`` in admission order — the observable
        the fairness tests (and ``repro serve``'s summary) read."""
        self._kv_fault_inflight = 0
        """Fault-carrying requests currently queued or active (at most
        one — the engine holds a single armed KV fault)."""

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "InferenceServer":
        if self.running:
            return self
        self._stop = False
        self._thread = threading.Thread(
            target=self._pump, name="repro-serve-pump", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the pump.  ``drain=True`` serves all queued and active
        requests first; ``drain=False`` terminates them with finish
        reason ``"shutdown"`` (streams still end cleanly — no client
        ever blocks forever)."""
        with self._work:
            self._stop = True
            self._drain = drain
            self._work.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        # A server that was never started still owes queued handles a
        # clean termination.
        self._finalize_pending("shutdown")

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=not any(exc))

    # -- tenants ---------------------------------------------------------------

    def add_tenant(self, config: TenantConfig) -> None:
        with self._lock:
            self._sched.add(config)

    def ensure_tenant(self, name: str, **kw) -> None:
        """Register ``name`` with default knobs if not already present."""
        with self._lock:
            if self._sched.get(name) is None:
                self._sched.add(TenantConfig(name, **kw))

    def tenant_stats(self) -> dict[str, dict]:
        """Per-tenant submitted/completed/rejected/token tallies."""
        with self._lock:
            return {
                t.name: {
                    "submitted": t.submitted,
                    "completed": t.completed,
                    "rejected": t.rejected,
                    "tokens": t.tokens,
                    "queued": len(t.queue),
                    "in_flight": t.in_flight,
                }
                for t in self._sched.tenants()
            }

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        prompt_ids: list[int],
        tenant: str | None = None,
        max_new_tokens: int | None = None,
        kv_fault: "object | None" = None,
    ) -> StreamHandle:
        """Enqueue a prompt; returns its stream handle immediately.

        Raises :class:`ServeRejected` when the server is shutting down,
        the prompt cannot fit the context window, or the tenant's
        bounded queue is full (overload shed).

        ``kv_fault`` optionally attaches a KV-model
        :class:`~repro.fi.sites.FaultSite` to the request: the pump
        arms a :class:`~repro.fi.injector.KVFaultInjector` pinned to
        this request's pool slot for the request's lifetime, so the
        fault decodes mid-batch alongside other tenants' streams while
        its blast radius stays scoped to this one sequence.  At most
        one fault-carrying request may be in flight (the engine holds a
        single armed KV fault); a second is rejected with reason
        ``"kv_fault_busy"``.  :attr:`StreamHandle.kv_fired` reports
        whether the fault struck.
        """
        name = tenant or self.default_tenant
        if not prompt_ids:
            raise ValueError("prompt must contain at least one token")
        if kv_fault is not None and not kv_fault.fault_model.is_kv:
            raise ValueError(
                f"submit(kv_fault=...) takes a KV fault model,"
                f" got {kv_fault.fault_model.value}"
            )
        budget = (
            self.config.max_new_tokens
            if max_new_tokens is None
            else max_new_tokens
        )
        if budget < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if len(prompt_ids) + budget > self.engine.config.max_seq:
            raise ServeRejected(
                name,
                "prompt_too_long",
                f"{len(prompt_ids)} prompt + {budget} budget >"
                f" {self.engine.config.max_seq} context",
            )
        with self._work:
            if self._stop:
                raise ServeRejected(name, "shutdown")
            if kv_fault is not None and self._kv_fault_inflight > 0:
                raise ServeRejected(
                    name,
                    "kv_fault_busy",
                    "another fault-carrying request is already in flight"
                    " (the engine holds one armed KV fault)",
                )
            state = self._sched.get(name)
            if state is None:
                state = self._sched.add(TenantConfig(name))
            if len(state.queue) >= state.config.max_queue:
                state.rejected += 1
                tel = _telemetry()
                if tel.active:
                    tel.metrics.counter("serve.rejected").add()
                raise ServeRejected(
                    name,
                    "queue_full",
                    f"{len(state.queue)} waiting >= max_queue"
                    f" {state.config.max_queue}",
                )
            request = _Request(
                id=next(self._ids),
                tenant=name,
                prompt=list(prompt_ids),
                max_new=budget,
                t_submit=time.perf_counter(),
                kv_fault=kv_fault,
            )
            if kv_fault is not None:
                self._kv_fault_inflight += 1
            state.queue.append(request)
            state.submitted += 1
            self._work.notify_all()
        return request.handle

    # -- pump ------------------------------------------------------------------

    def _pump(self) -> None:
        try:
            while True:
                with self._work:
                    while (
                        not self._stop
                        and not self._active
                        and self._sched.queued() == 0
                    ):
                        self._work.wait(self._idle_wait_s)
                    if self._stop and (
                        not self._drain
                        or (not self._active and self._sched.queued() == 0)
                    ):
                        break
                    tel = _telemetry()
                    if tel.active:
                        tel.metrics.histogram("serve.queue_depth").observe(
                            self._sched.queued()
                        )
                self._admit()
                if self._active:
                    self._step()
        finally:
            # Never strand a stream: whatever remains (abrupt stop,
            # engine exception) terminates with a clean sentinel.
            self._finalize_pending("shutdown")

    def _dequeue(self) -> _Request | None:
        """One weighted-round-robin admission pick (lock held by caller)."""
        while True:
            state = self._sched.pick()
            if state is None:
                return None
            request = state.queue.popleft()
            if request.cancelled:
                # Abandoned while queued: terminate without a slot.
                self._finish(request, "cancelled", admitted=False)
                continue
            state.in_flight += 1
            self.admission_log.append((state.name, request.id))
            return request

    def _admit(self) -> None:
        """Back-fill the batch from the tenant queues (mid-flight).

        Admission is capped by batch width *and real KV capacity*
        (``pool.n_free``) — a slot freed by an eager retirement this
        step is immediately admissible against.
        """
        tel = _telemetry()
        while len(self._active) < self.max_batch and self.pool.n_free > 0:
            with self._lock:
                request = self._dequeue()
            if request is None:
                break
            self._prefill(request)
        if tel.active:
            tel.metrics.gauge("decode.free_slots").set(self.pool.n_free)

    def _prefill(self, request: _Request) -> None:
        """Run the prompt forward and emit the first token (the TTFT
        token).  EOS-as-first-token and one-token budgets retire here —
        the row never occupies a batch slot across a step."""
        slot = self.pool.acquire()
        request.slot = slot
        request.caches = self.pool.caches(slot)
        if request.kv_fault is not None:
            # Lazy import: the serving layer is usable without the FI
            # package, and fi imports the engine this module wraps.
            from repro.fi.injector import KVFaultInjector

            # Pinning to this request's slot views scopes the strike to
            # this one sequence; arming before the prompt forward lets
            # iteration-0 sites corrupt prefill K/V.
            request.kv_injector = KVFaultInjector(
                self.engine, request.kv_fault, caches=request.caches
            ).__enter__()
        logits = self.engine.forward(
            request.prompt, request.caches, start_pos=0, iteration=0
        )[-1]
        request.position = len(request.prompt)
        request.iteration = 0
        if request.cancelled:
            self._finish(request, "cancelled")
            return
        token = _pick(logits)
        now = time.perf_counter()
        if token == self.config.eos_id:
            self._finish(request, "eos")
            return
        request.handle._push(token, now)
        if len(request.handle.tokens) >= request.max_new:
            self._finish(request, "length")
            return
        request.last_token = token
        if self.draft is not None:
            # The draft side joins only once the row survives to a real
            # decode round — EOS-first and one-token budgets retired
            # above without ever touching the draft pool.
            request.d_slot = self.draft_pool.acquire()
            request.d_caches = self.draft_pool.caches(request.d_slot)
            self.draft.forward(
                request.prompt, request.d_caches, start_pos=0, iteration=0
            )
            request.d_len = len(request.prompt)
        self._active.append(request)

    def _step(self) -> None:
        """Advance every active row one token (or, with a draft engine
        attached, one speculative round); retire eagerly."""
        # Cancellations observed at step granularity: drop the row (and
        # its slot) before paying for its forward.
        still: list[_Request] = []
        for request in self._active:
            if request.cancelled:
                self._finish(request, "cancelled")
            else:
                still.append(request)
        self._active = still
        if not self._active:
            return
        tel = _telemetry()
        if tel.active:
            tel.metrics.histogram("serve.batch_occupancy").observe(
                len(self._active)
            )
        if self.draft is not None:
            self._spec_round(tel)
            return
        logits = self.engine.forward_step_batch(
            [r.last_token for r in self._active],
            [r.caches for r in self._active],
            [r.position for r in self._active],
            [r.iteration + 1 for r in self._active],
        )
        now = time.perf_counter()
        still = []
        for i, request in enumerate(self._active):
            request.iteration += 1
            request.position += 1
            token = _pick(logits[i])
            if token == self.config.eos_id:
                self._finish(request, "eos")
                continue
            request.handle._push(token, now)
            if len(request.handle.tokens) >= request.max_new:
                self._finish(request, "length")
                continue
            request.last_token = token
            still.append(request)
        self._active = still

    def _spec_round(self, tel) -> None:
        """One draft-and-verify round over every active row.

        The same round schedule as
        :class:`~repro.generation.spec_batched.BatchedSpeculativeDecoder`
        — grouped draft catch-up chunks, batched proposal steps, one
        target ``forward_chunk_batch`` per distinct chunk length, then
        per-row commit/rollback — except tokens stream into the handles
        as they commit and EOS / budget / cancellation retire rows at
        round granularity.  Per-slot truncation on rollback fires the
        cache watchers, so a request's pinned KV-fault injector restores
        its bits and re-arms without disturbing sibling streams.

        Every emitted token is an argmax of target logits over the true
        emitted prefix, so served streams stay token-identical to serial
        ``greedy_decode`` regardless of what the draft proposes.
        """
        engine, draft = self.engine, self.draft
        eos = self.config.eos_id
        active = self._active
        traced = tel.active
        depth = self.speculation_depth
        # Budget rule per row: never propose past max_new (the verify
        # chunk emits at most gamma + 1 tokens), so "length" lands
        # exactly, never mid-chunk.
        gammas = [
            min(depth, r.max_new - len(r.handle.tokens) - 1) for r in active
        ]
        proposals: list[list[int]] = [[] for _ in active]
        prop = [i for i, g in enumerate(gammas) if g > 0]
        d_logits: dict[int, np.ndarray] = {}
        if prop:
            feeds = {
                i: active[i].handle.tokens[
                    active[i].d_len - len(active[i].prompt):
                ]
                for i in prop
            }
            for group in _by_length(prop, lambda i: len(feeds[i])):
                logits = draft.forward_chunk_batch(
                    [feeds[i] for i in group],
                    [active[i].d_caches for i in group],
                    [active[i].d_len for i in group],
                    [len(active[i].handle.tokens) for i in group],
                )
                for j, i in enumerate(group):
                    d_logits[i] = logits[j][-1]
                    active[i].d_len += len(feeds[i])
            for step in range(max(gammas)):
                alive = [i for i in prop if gammas[i] > step]
                for i in alive:
                    proposals[i].append(_pick(d_logits[i]))
                feed = [i for i in alive if gammas[i] > step + 1]
                if feed:
                    logits = draft.forward_step_batch(
                        [proposals[i][-1] for i in feed],
                        [active[i].d_caches for i in feed],
                        [active[i].d_len for i in feed],
                        [
                            len(active[i].handle.tokens) + step + 1
                            for i in feed
                        ],
                    )
                    for j, i in enumerate(feed):
                        d_logits[i] = logits[j]
                        active[i].d_len += 1
        target_lens = [r.caches[0].length for r in active]
        chunks = [
            [active[i].last_token, *proposals[i]] for i in range(len(active))
        ]
        v_logits: dict[int, np.ndarray] = {}
        for group in _by_length(
            list(range(len(active))), lambda i: len(chunks[i])
        ):
            logits = engine.forward_chunk_batch(
                [chunks[i] for i in group],
                [active[i].caches for i in group],
                [target_lens[i] for i in group],
                [len(active[i].handle.tokens) for i in group],
            )
            for j, i in enumerate(group):
                v_logits[i] = logits[j]
        now = time.perf_counter()
        still: list[_Request] = []
        for i, request in enumerate(active):
            chunk, logits = chunks[i], v_logits[i]
            accepted = 0
            stop = False
            for j in range(len(chunk)):
                token = _pick(logits[j])
                if token == eos:
                    stop = True
                    break
                request.handle._push(token, now)
                if j < len(proposals[i]) and token == proposals[i][j]:
                    accepted += 1
                    continue
                break
            if traced:
                metrics = tel.metrics
                metrics.counter("decode.spec_rounds").add()
                metrics.counter("decode.spec_rejected").add(
                    gammas[i] - accepted
                )
                metrics.histogram("decode.spec_accept_len").observe(accepted)
                metrics.histogram(
                    f"serve.tenant.{request.tenant}.spec_accept_len"
                ).observe(accepted)
            # Commit the accepted prefix, roll back the rejects: the
            # per-slot truncation fires KV-cache watchers (pinned fault
            # injectors restore + re-arm) and leaves sibling slots
            # untouched.
            for cache in request.caches:
                cache.truncate(target_lens[i] + 1 + accepted)
            request.position = request.caches[0].length
            request.iteration = len(request.handle.tokens)
            if stop:
                self._finish(request, "eos")
                continue
            if len(request.handle.tokens) >= request.max_new:
                self._finish(request, "length")
                continue
            request.last_token = request.handle.tokens[-1]
            keep = request.d_len - max(
                0, (gammas[i] - 1) - min(accepted, gammas[i] - 1)
            )
            for cache in request.d_caches:
                cache.truncate(keep)
            request.d_len = keep
            still.append(request)
        self._active = still

    def _finish(
        self, request: _Request, reason: str, admitted: bool = True
    ) -> None:
        """Retire a request: release its KV slot, terminate its stream,
        record SLO telemetry."""
        if request.kv_injector is not None:
            # Disarm before the slot goes back to the pool: __exit__
            # restores the flipped bits so the next tenant inherits a
            # clean cache, and clears engine.kv_fault for the next
            # fault-carrying request.
            request.handle.kv_fired = bool(request.kv_injector.fired)
            request.kv_injector.__exit__(None, None, None)
            request.kv_injector = None
        if request.kv_fault is not None:
            with self._lock:
                self._kv_fault_inflight -= 1
            request.kv_fault = None
        if request.slot is not None:
            self.pool.release(request.slot)
            request.slot = None
            request.caches = None
        if request.d_slot is not None:
            self.draft_pool.release(request.d_slot)
            request.d_slot = None
            request.d_caches = None
        now = time.perf_counter()
        handle = request.handle
        handle._finish(reason, now)
        with self._lock:
            state = self._sched.get(request.tenant)
            if state is not None:
                if admitted:
                    state.in_flight -= 1
                    state.completed += 1
                state.tokens += len(handle.tokens)
        tel = _telemetry()
        if not tel.active:
            return
        metrics = tel.metrics
        metrics.counter("serve.completed").add()
        metrics.counter(f"serve.finish.{reason}").add()
        metrics.counter("serve.tokens").add(len(handle.tokens))
        metrics.counter(f"serve.tenant.{request.tenant}.tokens").add(
            len(handle.tokens)
        )
        metrics.counter(f"serve.tenant.{request.tenant}.requests").add()
        metrics.histogram("serve.e2e_ms").observe(handle.latency_s * 1e3)
        if handle.ttft_s is not None:
            metrics.histogram("serve.ttft_ms").observe(handle.ttft_s * 1e3)
            metrics.histogram(
                f"serve.tenant.{request.tenant}.ttft_ms"
            ).observe(handle.ttft_s * 1e3)
        if len(handle.tokens) > 1:
            tpot = (handle.latency_s - handle.ttft_s) / (
                len(handle.tokens) - 1
            )
            metrics.histogram("serve.tpot_ms").observe(tpot * 1e3)
        metrics.gauge("decode.free_slots").set(self.pool.n_free)

    def _finalize_pending(self, reason: str) -> None:
        """Terminate every queued and active request (pump exit path)."""
        with self._lock:
            leftovers: list[tuple[_Request, bool]] = [
                (r, True) for r in self._active
            ]
            self._active = []
            for state in self._sched.tenants():
                while state.queue:
                    leftovers.append((state.queue.popleft(), False))
        for request, admitted in leftovers:
            self._finish(request, reason, admitted=admitted)
