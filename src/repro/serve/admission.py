"""Admission control and fair scheduling across named tenants.

The serving loop multiplexes one continuous batch across *tenants* —
named traffic classes (interactive users, a batch ETL job, a fault-
injection campaign) that must not be able to starve each other.  This
module holds the policy pieces the pump consults at every admission
opportunity:

* :class:`TenantConfig` — per-tenant knobs: a scheduling ``weight``
  (long-run share of admissions), ``max_in_flight`` (cap on the
  tenant's concurrently decoding batch rows) and ``max_queue`` (bound
  on waiting requests; submissions beyond it are *shed* with a typed
  :class:`ServeRejected` instead of growing latency without bound).
* :class:`WeightedScheduler` — smooth weighted round-robin over the
  tenants that currently have runnable work.  Each pick adds every
  eligible tenant's weight to its credit, selects the largest credit,
  and charges the winner the total — the classic smooth-WRR invariant
  that admissions converge to the weight ratio while staying maximally
  interleaved (a weight-3 tenant is served A A B A, never A A A B).

The scheduler is deliberately lock-free: the owning
:class:`~repro.serve.server.InferenceServer` serializes all access
under its own lock, and tests drive the scheduler directly to pin the
deterministic pick order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["ServeRejected", "TenantConfig", "TenantState", "WeightedScheduler"]


class ServeRejected(RuntimeError):
    """Typed admission rejection.

    ``reason`` is machine-readable so load generators and clients can
    distinguish shedding from misuse:

    * ``"queue_full"`` — the tenant's bounded queue is at capacity
      (overload shedding; retry later);
    * ``"prompt_too_long"`` — prompt plus token budget exceeds the
      engine's context window (never retryable);
    * ``"shutdown"`` — the server is stopping and accepts no new work.
    """

    def __init__(self, tenant: str, reason: str, detail: str = "") -> None:
        self.tenant = tenant
        self.reason = reason
        message = f"request rejected for tenant {tenant!r}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass(frozen=True)
class TenantConfig:
    """Admission-control knobs for one named traffic class."""

    name: str
    weight: float = 1.0
    max_in_flight: int | None = None
    """Cap on the tenant's concurrently decoding batch rows (``None``:
    bounded only by the server's batch width)."""
    max_queue: int = 256
    """Waiting-request bound; submissions beyond it are shed with a
    typed :class:`ServeRejected` (``reason="queue_full"``)."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 when set")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


class TenantState:
    """One tenant's live bookkeeping: queue, in-flight count, credit."""

    __slots__ = (
        "config",
        "queue",
        "in_flight",
        "credit",
        "submitted",
        "completed",
        "rejected",
        "tokens",
    )

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.queue: deque = deque()
        self.in_flight = 0
        self.credit = 0.0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.tokens = 0

    @property
    def name(self) -> str:
        return self.config.name

    def runnable(self) -> bool:
        """Whether this tenant can accept an admission right now."""
        if not self.queue:
            return False
        cap = self.config.max_in_flight
        return cap is None or self.in_flight < cap


class WeightedScheduler:
    """Smooth weighted round-robin over tenants with runnable work.

    Deterministic: credits are floats updated by fixed increments and
    ties break on registration order, so a given submission order
    always yields the same admission order (the property the fairness
    tests pin).
    """

    def __init__(self) -> None:
        self._tenants: dict[str, TenantState] = {}

    def add(self, config: TenantConfig) -> TenantState:
        if config.name in self._tenants:
            raise ValueError(f"tenant {config.name!r} already registered")
        state = TenantState(config)
        self._tenants[config.name] = state
        return state

    def get(self, name: str) -> TenantState | None:
        return self._tenants.get(name)

    def tenants(self) -> list[TenantState]:
        return list(self._tenants.values())

    def queued(self) -> int:
        """Total requests waiting across every tenant queue."""
        return sum(len(t.queue) for t in self._tenants.values())

    def pick(self) -> TenantState | None:
        """Choose the next tenant to admit from, or ``None`` if no
        tenant is runnable (all queues empty or at their in-flight
        cap)."""
        eligible = [t for t in self._tenants.values() if t.runnable()]
        if not eligible:
            return None
        total = 0.0
        best: TenantState | None = None
        for tenant in eligible:
            tenant.credit += tenant.config.weight
            total += tenant.config.weight
            if best is None or tenant.credit > best.credit:
                best = tenant
        assert best is not None
        best.credit -= total
        return best
