"""Multi-tenant streaming inference serving plane.

Wraps the continuous-batching decode machinery in a long-running
server: mid-flight admission, per-request token streaming, eager slot
retirement, admission control and weighted fair scheduling across
named tenants, with SLO telemetry (TTFT / TPOT / e2e latency / queue
depth / batch occupancy) through the obs registry.
"""

from repro.serve.admission import ServeRejected, TenantConfig, WeightedScheduler
from repro.serve.loadgen import LoadGenReport, run_load
from repro.serve.server import InferenceServer, StreamHandle

__all__ = [
    "InferenceServer",
    "StreamHandle",
    "ServeRejected",
    "TenantConfig",
    "WeightedScheduler",
    "LoadGenReport",
    "run_load",
]
