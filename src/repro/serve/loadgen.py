"""Open-loop Poisson load generator for the serving loop.

Replays heavy mixed-task traffic against an :class:`InferenceServer`:
synthetic concurrent users draw prompts with the shapes of the paper's
four generative workloads (gsm8k / wmt16 / xlsum / squadv2) and arrive
as a Poisson process at a configured offered load.  The generator is
*open-loop* — arrivals are scheduled from the exponential inter-arrival
clock alone, never gated on completions — so overload actually
overloads the server instead of self-throttling, which is what makes
the offered-load vs. throughput/latency sweep meaningful.

Two verification entry points:

* :func:`equivalence_gate` — serves every distinct prompt concurrently
  and compares each stream token-for-token against a serial
  ``greedy_decode`` reference computed before the server starts.  The
  benchmark runs this gate *before* any timing; a mismatch is a hard
  failure, not a data point.
* :func:`run_load` — one offered-load point: submit on the Poisson
  clock, drain, and distill per-request timings (recorded on the
  stream handles by the pump) into a :class:`LoadGenReport` with p50 /
  p99 TTFT, end-to-end latency and TPOT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.generation.decode import GenerationConfig, greedy_decode
from repro.inference.engine import InferenceEngine
from repro.serve.admission import ServeRejected
from repro.serve.server import InferenceServer, StreamHandle

__all__ = [
    "PromptSpec",
    "LoadGenReport",
    "mixed_task_prompts",
    "equivalence_gate",
    "run_load",
]

GENERATIVE_TASKS = ("gsm8k", "wmt16", "xlsum", "squadv2")
"""The paper's four generative workloads (§3.3.4) — the traffic mix."""


@dataclass(frozen=True)
class PromptSpec:
    """One replayable request shape: task-attributed prompt + budget."""

    task: str
    ids: tuple[int, ...]
    max_new: int


def mixed_task_prompts(
    world=None,
    tokenizer=None,
    per_task: int = 8,
) -> list[PromptSpec]:
    """Prompt shapes drawn from the four generative tasks' standardized
    evaluation subsets — genuine task prompt lengths and budgets, so
    the traffic mix matches what campaigns decode."""
    from repro.tasks import (
        GSM8kTask,
        SquadTask,
        SummarizationTask,
        TranslationTask,
        standardized_subset,
    )
    from repro.zoo.build import default_tokenizer, default_world

    world = world if world is not None else default_world()
    tokenizer = tokenizer if tokenizer is not None else default_tokenizer(world)
    prompts: list[PromptSpec] = []
    for task_cls in (GSM8kTask, TranslationTask, SummarizationTask, SquadTask):
        task = task_cls(world)
        for example in standardized_subset(task, per_task):
            prompts.append(
                PromptSpec(
                    task=task.name,
                    ids=tuple(tokenizer.encode(example.prompt)),
                    max_new=task.max_new_tokens,
                )
            )
    return prompts


def equivalence_gate(
    engine: InferenceEngine,
    config: GenerationConfig,
    prompts: list[PromptSpec],
    max_batch: int = 8,
    timeout_s: float = 300.0,
    draft: "InferenceEngine | None" = None,
    speculation_depth: int = 4,
) -> int:
    """Assert served outputs are token-identical to serial greedy decode.

    Serial references are computed first (the engine is idle), then
    every prompt is submitted to a fresh server *concurrently* — so the
    comparison exercises real mid-flight batching, not one-at-a-time
    serving.  With a ``draft``, the server speculates, so the gate also
    covers the composed batched-speculative rounds.  Raises
    ``AssertionError`` on the first divergence; returns the number of
    prompts checked.
    """
    references = [
        greedy_decode(
            engine,
            list(spec.ids),
            replace(config, max_new_tokens=spec.max_new),
            strategy="serial",
        )
        for spec in prompts
    ]
    with InferenceServer(
        engine, config, max_batch=max_batch,
        draft=draft, speculation_depth=speculation_depth,
    ) as server:
        handles = [
            server.submit(list(spec.ids), max_new_tokens=spec.max_new)
            for spec in prompts
        ]
        served = [handle.result(timeout=timeout_s) for handle in handles]
    for i, (spec, got, want) in enumerate(zip(prompts, served, references)):
        if got != want:
            raise AssertionError(
                f"served output diverged from serial greedy_decode on"
                f" prompt {i} (task {spec.task}): served {got} !="
                f" serial {want}"
            )
    return len(prompts)


def _quantiles(values_ms: list[float]) -> dict[str, float]:
    if not values_ms:
        return {"p50": float("nan"), "p99": float("nan")}
    arr = np.asarray(values_ms, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
    }


@dataclass
class LoadGenReport:
    """Distilled per-request statistics for one offered-load point."""

    offered_rps: float
    duration_s: float
    wall_s: float
    submitted: int
    completed: int
    rejected: int
    tokens: int
    n_users: int
    throughput_tps: float
    throughput_rps: float
    ttft_ms: dict = field(default_factory=dict)
    latency_ms: dict = field(default_factory=dict)
    tpot_ms: dict = field(default_factory=dict)
    handles: list = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "tokens": self.tokens,
            "n_users": self.n_users,
            "throughput_tps": self.throughput_tps,
            "throughput_rps": self.throughput_rps,
            "ttft_ms": dict(self.ttft_ms),
            "latency_ms": dict(self.latency_ms),
            "tpot_ms": dict(self.tpot_ms),
        }


def run_load(
    server: InferenceServer,
    prompts: list[PromptSpec],
    offered_rps: float,
    duration_s: float,
    seed: int = 0,
    tenant: str | None = None,
    n_users: int = 1000,
    drain_timeout_s: float = 600.0,
) -> LoadGenReport:
    """Drive one open-loop Poisson load point and drain it.

    Arrival times are pre-drawn from ``Exponential(1/offered_rps)``
    inter-arrivals over ``duration_s`` seconds; each arrival is a
    synthetic user (attribution only — users carry no state) submitting
    a uniformly drawn prompt shape.  Submissions shed by the server's
    bounded queue count as ``rejected``; everything accepted is drained
    to completion before statistics are computed from the per-request
    handle timings (pump-recorded, independent of the obs registry).
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    if not prompts:
        raise ValueError("need at least one prompt spec")
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / offered_rps))
        if t >= duration_s:
            break
        arrivals.append(t)
    users = rng.integers(0, max(1, n_users), size=max(1, len(arrivals)))
    picks = rng.integers(0, len(prompts), size=max(1, len(arrivals)))

    handles: list[StreamHandle] = []
    rejected = 0
    start = time.perf_counter()
    for i, at in enumerate(arrivals):
        delay = (start + at) - time.perf_counter()
        if delay > 0:
            # Open loop: wait out the arrival clock, never completions.
            time.sleep(delay)
        spec = prompts[int(picks[i])]
        try:
            handles.append(
                server.submit(
                    list(spec.ids),
                    tenant=tenant,
                    max_new_tokens=spec.max_new,
                )
            )
        except ServeRejected as exc:
            if exc.reason != "queue_full":
                raise
            rejected += 1
    for handle in handles:
        handle.result(timeout=drain_timeout_s)
    wall = time.perf_counter() - start

    tokens = sum(len(h.tokens) for h in handles)
    ttfts = [h.ttft_s * 1e3 for h in handles if h.ttft_s is not None]
    latencies = [h.latency_s * 1e3 for h in handles if h.latency_s is not None]
    tpots = [
        (h.latency_s - h.ttft_s) / (len(h.tokens) - 1) * 1e3
        for h in handles
        if h.ttft_s is not None and len(h.tokens) > 1
    ]
    return LoadGenReport(
        offered_rps=offered_rps,
        duration_s=duration_s,
        wall_s=wall,
        submitted=len(arrivals),
        completed=len(handles),
        rejected=rejected,
        tokens=tokens,
        n_users=len({int(u) for u in users[: len(arrivals)]}),
        throughput_tps=tokens / wall if wall > 0 else 0.0,
        throughput_rps=len(handles) / wall if wall > 0 else 0.0,
        ttft_ms=_quantiles(ttfts),
        latency_ms=_quantiles(latencies),
        tpot_ms=_quantiles(tpots),
        handles=handles,
    )
