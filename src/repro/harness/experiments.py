"""One experiment per paper table/figure (see DESIGN.md §4).

Every function takes an :class:`~repro.harness.context.ExperimentContext`
(which sets trial/example budgets — bench-scale by default, paper-scale
by parameter) and returns an :class:`ExperimentResult` whose rows are
the table/figure's series.  Absolute values differ from the paper (our
substrate is a tiny trained-from-scratch model suite), but the
*shapes* — who wins, orderings, where the crossovers are — are the
reproduction targets recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fi.fault_models import FaultModel
from repro.fi.outcomes import Outcome
from repro.fi.propagation import trace_fault
from repro.fi.sites import FaultSite
from repro.harness.context import ExperimentContext
from repro.harness.results import ExperimentResult
from repro.numerics.formats import FORMATS
from repro.numerics.stats import wilson_interval
from repro.tasks import GSM8kTask, all_tasks
from repro.zoo.registry import ZOO

__all__ = [
    "GENERAL_MODELS",
    "TASK_MODELS",
    "table1_workloads",
    "table2_formats",
    "fig03_overall",
    "fig04_fault_models",
    "fig05_memory_propagation",
    "fig06_computational_propagation",
    "fig07_output_examples",
    "fig08_sdc_breakdown",
    "fig09_bit_positions_subtle",
    "fig10_bit_positions_distorted",
    "fig11_per_task",
    "fig13_weight_distributions",
    "fig14_moe_vs_dense",
    "fig15_gate_faults",
    "fig16_model_scale",
    "fig17_quantization",
    "fig18_beam_vs_greedy",
    "fig19_beam_tradeoff",
    "fig20_chain_of_thought",
    "fig21_dtypes",
]

GENERAL_MODELS = ("qwenlike-base", "llamalike-base", "falconlike-base")

# Paper Table 1: which models are evaluated on which task.
TASK_MODELS: dict[str, tuple[str, ...]] = {
    "mmlu": GENERAL_MODELS,
    "arc": GENERAL_MODELS,
    "truthfulqa": GENERAL_MODELS,
    "winogrande": GENERAL_MODELS,
    "hellaswag": GENERAL_MODELS,
    "gsm8k": ("qwenlike-base", "falconlike-base"),
    "wmt16": ("qwenlike-base", "llamalike-base", "alma-base"),
    "xlsum": ("llamalike-base", "qwenlike-base", "summarizer-base"),
    "squadv2": GENERAL_MODELS,
}


def _primary_metric(metrics: tuple[str, ...]) -> str:
    return metrics[0]


# ----------------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------------


def table1_workloads(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: tasks, datasets, metrics and test models."""
    result = ExperimentResult("table1", "Selected LLM workloads and metrics")
    for task in all_tasks(ctx.world):
        result.add(
            task=task.name,
            kind=task.kind.value,
            metrics="/".join(task.metrics),
            models=", ".join(TASK_MODELS[task.name]),
        )
    return result


def table2_formats(_: ExperimentContext | None = None) -> ExperimentResult:
    """Table 2: floating-point storage formats."""
    result = ExperimentResult("table2", "Format of floating-point data types")
    for fmt in FORMATS.values():
        result.add(
            format=fmt.name.upper(),
            total_bits=fmt.bits,
            exp_bits=fmt.exp_bits,
            max_finite=fmt.max_finite,
            min_normal=fmt.min_normal,
        )
    return result


# ----------------------------------------------------------------------------
# Overall resilience (Figs 3, 4, 11)
# ----------------------------------------------------------------------------


def fig03_overall(
    ctx: ExperimentContext,
    models: tuple[str, ...] | None = None,
    tasks: tuple[str, ...] | None = None,
    fault_models: tuple[FaultModel, ...] = FaultModel.all(),
) -> ExperimentResult:
    """Figure 3: normalized performance for every task/model/fault cell."""
    result = ExperimentResult(
        "fig03", "LLM performance change after fault injection (normalized)"
    )
    task_names = tasks or tuple(TASK_MODELS)
    for task_name in task_names:
        task = ctx.task(task_name)
        metric = _primary_metric(task.metrics)
        for model_name in models or TASK_MODELS[task_name]:
            for fault_model in fault_models:
                cell = ctx.run_cell(model_name, task_name, fault_model)
                ci = cell.normalized[metric]
                result.add(
                    task=task_name,
                    model=model_name,
                    fault=fault_model.value,
                    metric=metric,
                    normalized=ci.ratio,
                    ci_low=ci.lower,
                    ci_high=ci.upper,
                    baseline=cell.baseline[metric],
                    sdc_rate=cell.sdc_rate,
                )
    return result


def fig04_fault_models(
    ctx: ExperimentContext, overall: ExperimentResult | None = None
) -> ExperimentResult:
    """Figure 4: average normalized performance per fault model."""
    overall = overall or fig03_overall(ctx)
    result = ExperimentResult(
        "fig04", "Average performance change under different fault models"
    )
    for fault_model in FaultModel.all():
        values = [
            row["normalized"]
            for row in overall.rows
            if row["fault"] == fault_model.value
            and np.isfinite(row["normalized"])
        ]
        result.add(
            fault=fault_model.value,
            mean_normalized=float(np.mean(values)),
            n_cells=len(values),
        )
    result.note("expected shape: 2bits-mem lowest (memory faults dominate)")
    return result


def fig11_per_task(
    ctx: ExperimentContext, overall: ExperimentResult | None = None
) -> ExperimentResult:
    """Figure 11: per-task normalized performance (all faults pooled)."""
    overall = overall or fig03_overall(ctx)
    result = ExperimentResult("fig11", "Performance change per downstream task")
    mc_tasks = {"mmlu", "arc", "truthfulqa", "winogrande", "hellaswag"}
    for task_name in TASK_MODELS:
        values = [
            row["normalized"]
            for row in overall.rows
            if row["task"] == task_name and np.isfinite(row["normalized"])
        ]
        if not values:
            continue
        result.add(
            task=task_name,
            kind="multiple-choice" if task_name in mc_tasks else "generative",
            mean_normalized=float(np.mean(values)),
        )
    mc = [r["mean_normalized"] for r in result.rows if r["kind"] == "multiple-choice"]
    gen = [r["mean_normalized"] for r in result.rows if r["kind"] == "generative"]
    result.note(
        f"multiple-choice mean {np.mean(mc):.4f} vs generative mean"
        f" {np.mean(gen):.4f} (paper: generative degrades more)"
    )
    return result


# ----------------------------------------------------------------------------
# Propagation traces (Figs 5, 6)
# ----------------------------------------------------------------------------


def _trace_prompt(ctx: ExperimentContext) -> list[int]:
    example = ctx.examples("wmt16", 1)[0]
    return ctx.tokenizer.encode(example.prompt)


def fig05_memory_propagation(
    ctx: ExperimentContext, model_name: str = "qwenlike-base"
) -> ExperimentResult:
    """Figure 5: memory fault corrupts a column, then the whole tensor."""
    engine = ctx.engine(model_name)
    block = engine.config.n_blocks // 2
    layer = f"blocks.{block}.up_proj"
    site = FaultSite(
        fault_model=FaultModel.MEM_2BIT,
        layer_name=layer,
        row=20 % engine.weight_store(layer).shape[0],
        col=20 % engine.weight_store(layer).shape[1],
        bits=(30, 22),  # MSB of the fp32 exponent + one mantissa bit
    )
    trace = trace_fault(engine, site, _trace_prompt(ctx))
    result = ExperimentResult(
        "fig05", "Propagation trace of a memory fault (column -> tensor)"
    )
    injected_cols = trace.column_profile(layer)
    next_layer = f"blocks.{block}.down_proj"
    result.add(
        layer=layer,
        corrupted_fraction=trace.corrupted_fraction(layer),
        corrupted_columns=int((injected_cols > 0.5).sum()),
        target_column_fraction=float(injected_cols[site.col]),
    )
    result.add(
        layer=next_layer,
        corrupted_fraction=trace.corrupted_fraction(next_layer),
        corrupted_columns=int((trace.column_profile(next_layer) > 0.5).sum()),
        target_column_fraction=float("nan"),
    )
    result.note(
        "expected shape: injected layer corrupt only in the faulty column;"
        " next layer corrupt across (nearly) the whole tensor"
    )
    return result


def fig06_computational_propagation(
    ctx: ExperimentContext, model_name: str = "qwenlike-base"
) -> ExperimentResult:
    """Figure 6: computational fault corrupts one row, then is contained."""
    engine = ctx.engine(model_name)
    block = engine.config.n_blocks // 2
    layer = f"blocks.{block}.up_proj"
    prompt = _trace_prompt(ctx)
    site = FaultSite(
        fault_model=FaultModel.COMP_2BIT,
        layer_name=layer,
        row=0,
        col=20 % engine.weight_store(layer).shape[1],
        bits=(30, 22),
        iteration=0,
        row_frac=min(0.99, 20 / max(1, len(prompt))),
    )
    trace = trace_fault(engine, site, prompt)
    result = ExperimentResult(
        "fig06", "Propagation trace of a computational fault (row, contained)"
    )
    next_layer = f"blocks.{block}.down_proj"
    after_block = f"blocks.{min(block + 1, engine.config.n_blocks - 1)}.up_proj"
    for name in (layer, next_layer, after_block):
        rows = trace.row_profile(name)
        result.add(
            layer=name,
            corrupted_fraction=trace.corrupted_fraction(name),
            corrupted_rows=int((rows > 0).sum()),
            max_row_fraction=float(rows.max()) if rows.size else 0.0,
        )
    result.note(
        "expected shape: corruption confined to one token row inside the"
        " faulty block; spread stays row-local into the next block"
    )
    return result


# ----------------------------------------------------------------------------
# SDC anatomy (Figs 7-10, 12)
# ----------------------------------------------------------------------------


def fig08_sdc_breakdown(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ("qwenlike-base", "falconlike-base"),
) -> ExperimentResult:
    """Figure 8: subtle vs distorted SDCs on GSM8k."""
    result = ExperimentResult(
        "fig08", "SDC breakdown (subtle vs distorted) on GSM8k"
    )
    for model_name in models:
        for fault_model in FaultModel.all():
            cell = ctx.run_cell(model_name, "gsm8k", fault_model)
            breakdown = cell.sdc_breakdown()
            total_sdc = breakdown["subtle"] + breakdown["distorted"]
            result.add(
                model=model_name,
                fault=fault_model.value,
                sdc_rate=total_sdc,
                subtle=breakdown["subtle"],
                distorted=breakdown["distorted"],
                distorted_share=(
                    breakdown["distorted"] / total_sdc if total_sdc else 0.0
                ),
            )
    result.note(
        "expected shape: subtle wrong dominates; distorted far more common"
        " under 2bits-mem than computational faults"
    )
    return result


def _bit_position_rows(
    ctx: ExperimentContext,
    outcome: Outcome,
    models: tuple[str, ...],
    fault_models: tuple[FaultModel, ...],
    n_trials: int | None,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig09" if outcome is Outcome.SDC_SUBTLE else "fig10",
        f"Proportion of {outcome.value} outputs by highest flipped bit",
    )
    for model_name in models:
        for fault_model in fault_models:
            cell = ctx.run_cell(
                model_name, "gsm8k", fault_model, n_trials=n_trials
            )
            table = cell.outcomes_by_highest_bit()
            key = "subtle" if outcome is Outcome.SDC_SUBTLE else "distorted"
            total = sum(row[key] for row in table.values())
            for bit in sorted(table):
                counts = table[bit]
                result.add(
                    model=model_name,
                    fault=fault_model.value,
                    highest_bit=bit,
                    count=counts[key],
                    proportion=counts[key] / total if total else 0.0,
                    trials_at_bit=sum(counts.values()),
                )
    return result


def fig09_bit_positions_subtle(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ("qwenlike-base", "falconlike-base"),
    n_trials: int | None = None,
) -> ExperimentResult:
    """Figure 9: subtle-SDC share by highest flipped bit (MSB dominates)."""
    res = _bit_position_rows(
        ctx, Outcome.SDC_SUBTLE, models, FaultModel.all(), n_trials
    )
    res.note(
        "expected shape: bit 14 (the MSB of the 16-bit stored value) leads"
    )
    return res


def fig10_bit_positions_distorted(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ("qwenlike-base", "falconlike-base"),
    n_trials: int | None = None,
) -> ExperimentResult:
    """Figure 10: distorted outputs come only from top exponent bits."""
    res = _bit_position_rows(
        ctx,
        Outcome.SDC_DISTORTED,
        models,
        (FaultModel.MEM_2BIT,),
        n_trials,
    )
    res.note("expected shape: mantissa bits contribute zero distorted outputs")
    return res


def fig07_output_examples(
    ctx: ExperimentContext, model_name: str = "qwenlike-base"
) -> ExperimentResult:
    """Figures 7/12: concrete subtle-wrong and distorted outputs."""
    cell = ctx.run_cell(model_name, "gsm8k", FaultModel.MEM_2BIT)
    result = ExperimentResult("fig07", "Example distorted / subtly wrong outputs")
    examples = ctx.examples("gsm8k")
    shown: set[Outcome] = set()
    for trial in cell.trials:
        if trial.outcome is Outcome.MASKED or trial.outcome in shown:
            continue
        shown.add(trial.outcome)
        ex = examples[trial.example_index]
        result.add(
            kind=trial.outcome.value,
            reference=ex.meta.get("final_answer", ex.reference),
            output=trial.prediction[:120],
        )
        if len(shown) == 2:
            break
    return result


# ----------------------------------------------------------------------------
# Model studies (Figs 13-17)
# ----------------------------------------------------------------------------


def fig13_weight_distributions(
    ctx: ExperimentContext, models: tuple[str, ...] = GENERAL_MODELS
) -> ExperimentResult:
    """Figure 13: weight/activation spreads of down_proj, last block."""
    result = ExperimentResult(
        "fig13", "Value distributions of weights and neurons per family"
    )
    prompt = _trace_prompt(ctx)
    for model_name in models:
        engine = ctx.engine(model_name)
        layer = f"blocks.{engine.config.n_blocks - 1}.down_proj"
        weights = engine.weight_store(layer).array
        from repro.inference.engine import CaptureState

        engine.capture = CaptureState()
        engine.forward_full(prompt)
        activations = engine.capture.layer_outputs[layer]
        engine.capture = None
        result.add(
            model=model_name,
            weight_std=float(weights.std()),
            weight_p99=float(np.percentile(np.abs(weights), 99)),
            neuron_std=float(activations.std()),
            neuron_p99=float(np.percentile(np.abs(activations), 99)),
        )
    result.note("families show distinct spreads (drives Observation #3)")
    return result


def fig14_moe_vs_dense(
    ctx: ExperimentContext,
    tasks: tuple[str, ...] = ("mmlu", "arc", "wmt16", "squadv2"),
    fault_model: FaultModel = FaultModel.MEM_2BIT,
) -> ExperimentResult:
    """Figure 14: MoE vs its dense twin per task type."""
    result = ExperimentResult("fig14", "MoE vs dense normalized performance")
    for task_name in tasks:
        task = ctx.task(task_name)
        metric = _primary_metric(task.metrics)
        for model_name in ("moelike-base", "denselike-base"):
            cell = ctx.run_cell(model_name, task_name, fault_model)
            result.add(
                task=task_name,
                kind=task.kind.value,
                model=model_name,
                normalized=cell.normalized[metric].ratio,
                baseline=cell.baseline[metric],
            )
    result.note(
        "expected shape: MoE worse on multiple-choice, better on generative"
    )
    return result


def fig15_gate_faults(
    ctx: ExperimentContext, n_trials: int | None = None
) -> ExperimentResult:
    """Figure 15: 2bits-mem faults restricted to MoE gate (router) layers."""
    cell = ctx.run_cell(
        "moelike-base",
        "wmt16",
        FaultModel.MEM_2BIT,
        n_trials=n_trials,
        layer_filter=_router_only,
        track_expert_selection=True,
    )
    changed = [t for t in cell.trials if t.selection_changed]
    n = len(cell.trials)
    output_changed = sum(t.changed for t in changed)
    result = ExperimentResult(
        "fig15", "Memory faults in gate layers: selection & output changes"
    )
    lo, hi = wilson_interval(len(changed), n)
    result.add(
        trials=n,
        selection_changed_rate=len(changed) / n,
        ci_low=lo,
        ci_high=hi,
        output_changed_given_selection=(
            output_changed / len(changed) if changed else 0.0
        ),
        bleu_normalized=cell.normalized["bleu"].ratio,
        chrf_normalized=cell.normalized["chrf"].ratio,
    )
    result.note(
        "paper: 78.6% selections changed, 47.4% of those changed >=1 token;"
        " BLEU/chrF++ degrade ~2%"
    )
    return result


def _router_only(layer_name: str) -> bool:
    """Module-level so the campaign stays picklable for process pools."""
    return layer_name.endswith("router")


def fig16_model_scale(
    ctx: ExperimentContext,
    sizes: tuple[str, ...] = (
        "qwenlike-tiny",
        "qwenlike-small",
        "qwenlike-base",
        "qwenlike-large",
        "qwenlike-xl",
    ),
    tasks: tuple[str, ...] = ("mmlu", "gsm8k"),
) -> ExperimentResult:
    """Figure 16: resilience across model scales (no clear trend)."""
    result = ExperimentResult("fig16", "Normalized performance vs model scale")
    for model_name in sizes:
        params = ZOO[model_name]
        for task_name in tasks:
            task = ctx.task(task_name)
            metric = _primary_metric(task.metrics)
            for fault_model in (FaultModel.COMP_2BIT, FaultModel.MEM_2BIT):
                cell = ctx.run_cell(model_name, task_name, fault_model)
                result.add(
                    model=model_name,
                    d_model=params.d_model,
                    n_blocks=params.n_blocks,
                    task=task_name,
                    fault=fault_model.value,
                    normalized=cell.normalized[metric].ratio,
                )
    result.note("expected shape: no monotone scale-resilience relationship")
    return result


def fig17_quantization(
    ctx: ExperimentContext,
    tasks: tuple[str, ...] = ("mmlu", "wmt16"),
    model_name: str = "qwenlike-base",
) -> ExperimentResult:
    """Figure 17: GPTQ-4/8bit vs BF16 under 2-bit memory faults."""
    result = ExperimentResult(
        "fig17", "Quantized vs non-quantized resilience (2bits-mem)"
    )
    for policy, label in (("bf16", "BF16"), ("int8", "GPTQ-8bit"), ("int4", "GPTQ-4bit")):
        for task_name in tasks:
            task = ctx.task(task_name)
            metric = _primary_metric(task.metrics)
            cell = ctx.run_cell(
                model_name, task_name, FaultModel.MEM_2BIT, policy=policy
            )
            result.add(
                variant=label,
                task=task_name,
                baseline=cell.baseline[metric],
                normalized=cell.normalized[metric].ratio,
            )
    result.note(
        "expected shape: quantized variants ~1.0 normalized; BF16 lower"
    )
    return result


# ----------------------------------------------------------------------------
# Inference-setting studies (Figs 18-21)
# ----------------------------------------------------------------------------


def fig18_beam_vs_greedy(
    ctx: ExperimentContext,
    cells: tuple[tuple[str, str], ...] = (
        ("alma-base", "wmt16"),
        ("qwenlike-base", "wmt16"),
        ("summarizer-base", "xlsum"),
        ("llamalike-base", "xlsum"),
    ),
    beam_size: int = 6,
) -> ExperimentResult:
    """Figure 18: beam search vs greedy under 2-bit computational faults."""
    result = ExperimentResult("fig18", "Beam search vs greedy (2bits-comp)")
    for model_name, task_name in cells:
        task = ctx.task(task_name)
        metric = _primary_metric(task.metrics)
        for beams in (1, beam_size):
            cell = ctx.run_cell(
                model_name, task_name, FaultModel.COMP_2BIT, num_beams=beams
            )
            result.add(
                model=model_name,
                task=task_name,
                num_beams=beams,
                strategy="greedy" if beams == 1 else "beam",
                normalized=cell.normalized[metric].ratio,
                baseline=cell.baseline[metric],
            )
    result.note("expected shape: beam >= greedy, clearest for fine-tuned models")
    return result


def fig19_beam_tradeoff(
    ctx: ExperimentContext,
    model_name: str = "alma-base",
    task_name: str = "wmt16",
    beam_sizes: tuple[int, ...] = (1, 2, 4, 6),
) -> ExperimentResult:
    """Figure 19: resilience vs runtime across beam counts."""
    result = ExperimentResult("fig19", "Beam-count resilience/runtime trade-off")
    task = ctx.task(task_name)
    metric = _primary_metric(task.metrics)
    for beams in beam_sizes:
        t0 = time.perf_counter()
        cell = ctx.run_cell(
            model_name, task_name, FaultModel.COMP_2BIT, num_beams=beams
        )
        elapsed = time.perf_counter() - t0
        result.add(
            num_beams=beams,
            normalized=cell.normalized[metric].ratio,
            runtime_s=elapsed,
            runtime_per_trial_ms=1000.0 * elapsed / cell.n_trials,
        )
    result.note(
        "expected shape: resilience jumps 1->2 beams then flattens;"
        " runtime keeps growing (optimal trade-off at 2 beams)"
    )
    return result


def fig20_chain_of_thought(
    ctx: ExperimentContext,
    models: tuple[str, ...] = ("qwenlike-base", "falconlike-base"),
) -> ExperimentResult:
    """Figure 20: CoT vs direct answering under both fault classes."""
    result = ExperimentResult("fig20", "Chain-of-Thought resilience on GSM8k")
    for model_name in models:
        for use_cot in (True, False):
            task = GSM8kTask(ctx.world, use_cot=use_cot)
            for fault_model in (FaultModel.COMP_2BIT, FaultModel.MEM_2BIT):
                # Computational faults strike during reasoning-token
                # generation for CoT (paper injects only there); the
                # direct mode has no reasoning segment.
                max_iter = 16 if use_cot else None
                cell = ctx.run_cell(
                    model_name,
                    "gsm8k",
                    fault_model,
                    task=task,
                    max_fault_iterations=(
                        max_iter if fault_model.is_computational else None
                    ),
                )
                result.add(
                    model=model_name,
                    mode="cot" if use_cot else "direct",
                    fault=fault_model.value,
                    baseline=cell.baseline["accuracy"],
                    normalized=cell.normalized["accuracy"].ratio,
                )
    result.note("expected shape: CoT >= direct, esp. computational faults ~1.0")
    return result


def fig21_dtypes(
    ctx: ExperimentContext,
    tasks: tuple[str, ...] = ("mmlu", "wmt16"),
    model_name: str = "qwenlike-base",
) -> ExperimentResult:
    """Figure 21: FP16 vs FP32 vs BF16 storage resilience."""
    result = ExperimentResult("fig21", "Datatype resilience (2bits-mem)")
    for policy in ("fp16", "fp32", "bf16"):
        for task_name in tasks:
            task = ctx.task(task_name)
            metric = _primary_metric(task.metrics)
            cell = ctx.run_cell(
                model_name, task_name, FaultModel.MEM_2BIT, policy=policy
            )
            result.add(
                dtype=policy.upper(),
                task=task_name,
                baseline=cell.baseline[metric],
                normalized=cell.normalized[metric].ratio,
            )
    result.note("expected shape: FP16 most resilient, BF16 least")
    return result
