"""Shared experiment context: engines, tokenizer, task and example caches.

Experiments repeatedly need (model, storage-policy) engines and
standardized example subsets; this context memoizes them so a bench
suite that reproduces many figures does not rebuild the same engine
dozens of times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fi.campaign import CampaignResult, FICampaign
from repro.fi.fault_models import FaultModel
from repro.fi.sites import LayerFilter
from repro.generation.decode import GenerationConfig
from repro.inference.engine import InferenceEngine
from repro.obs.runtime import telemetry as _telemetry
from repro.tasks import World, all_tasks, standardized_subset
from repro.tasks.base import Task
from repro.text.tokenizer import Tokenizer
from repro.zoo.build import default_tokenizer, default_world, load_model

__all__ = ["ExperimentContext"]


@dataclass
class ExperimentContext:
    """Caches and defaults for a batch of experiments.

    ``n_examples`` and ``n_trials`` default to bench-friendly sizes;
    the paper-scale equivalents (100 examples, 500-3000 trials) are a
    parameter change away.
    """

    n_examples: int = 12
    n_trials: int = 60
    seed: int = 1234
    _world: World | None = None
    _tokenizer: Tokenizer | None = None
    _engines: dict = field(default_factory=dict)
    _tasks: dict = field(default_factory=dict)

    @property
    def world(self) -> World:
        """The shared synthetic world (built once)."""
        if self._world is None:
            self._world = default_world()
        return self._world

    @property
    def tokenizer(self) -> Tokenizer:
        """The shared closed-vocabulary tokenizer."""
        if self._tokenizer is None:
            self._tokenizer = default_tokenizer(self.world)
        return self._tokenizer

    def task(self, name: str) -> Task:
        """Look up a task by dataset name."""
        if not self._tasks:
            self._tasks = {t.name: t for t in all_tasks(self.world)}
        return self._tasks[name]

    def engine(self, model_name: str, policy: str = "fp32") -> InferenceEngine:
        """Memoized engine for (zoo model, storage policy)."""
        key = (model_name, policy)
        if key not in self._engines:
            store = load_model(model_name, verbose=False)
            self._engines[key] = InferenceEngine(store, weight_policy=policy)
        return self._engines[key]

    def examples(self, task_name: str, n: int | None = None) -> list:
        """Standardized evaluation subset for a task."""
        return standardized_subset(self.task(task_name), n or self.n_examples)

    def generation(self, task: Task, num_beams: int = 1) -> GenerationConfig:
        """Decoding config sized to the task."""
        return GenerationConfig(
            max_new_tokens=task.max_new_tokens,
            num_beams=num_beams,
            eos_id=self.tokenizer.vocab.eos_id,
        )

    def run_cell(
        self,
        model_name: str,
        task_name: str,
        fault_model: FaultModel,
        policy: str = "bf16",
        n_trials: int | None = None,
        n_examples: int | None = None,
        num_beams: int = 1,
        layer_filter: LayerFilter | None = None,
        track_expert_selection: bool = False,
        task: Task | None = None,
        seed: int | None = None,
        max_fault_iterations: int | None = None,
    ) -> CampaignResult:
        """One (model, task, fault-model) campaign with context defaults.

        ``policy`` defaults to ``bf16`` — the paper evaluates BF16
        checkpoints, which is also why its bit-position figures run
        over a 16-bit layout with bit 14 as the exponent MSB.
        """
        task = task or self.task(task_name)
        campaign = FICampaign(
            engine=self.engine(model_name, policy),
            tokenizer=self.tokenizer,
            task_name=task_name,
            metrics=task.metrics,
            examples=standardized_subset(task, n_examples or self.n_examples),
            fault_model=fault_model,
            seed=self.seed if seed is None else seed,
            generation=self.generation(task, num_beams),
            layer_filter=layer_filter,
            track_expert_selection=track_expert_selection,
            max_fault_iterations=max_fault_iterations,
        )
        tel = _telemetry()
        with tel.span(
            "experiment.cell",
            model=model_name,
            task=task_name,
            fault=fault_model.value,
            policy=policy,
        ):
            result = campaign.run(n_trials or self.n_trials)
        if tel.active:
            tel.metrics.counter("experiment.cells").add()
        return result
