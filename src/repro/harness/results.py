"""Experiment result containers, text rendering, and JSONL persistence.

Persisted results carry the telemetry run manifest (seed, config hash,
git revision, telemetry schema version) as their first record;
:func:`load_result` asserts the schema version so files written by an
incompatible build fail loudly instead of silently misparsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_campaign",
    "save_result",
    "load_result",
]


@dataclass
class ExperimentResult:
    """A reproduced table/figure: labelled rows of named columns."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        """Append one table row from keyword columns."""
        self.rows.append(row)

    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        return [row.get(name) for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(text)

    def __str__(self) -> str:
        return format_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render rows as an aligned text table (the paper's rows/series)."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        columns: list[str] = []
        for row in result.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        rendered = [
            [_fmt(row.get(col, "")) for col in columns] for row in result.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in rendered))
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_campaign(result) -> str:
    """Render one ``CampaignResult`` as the CLI's campaign report.

    Shared between ``python -m repro campaign`` and the resilience test
    suite: an interrupted-then-resumed campaign must produce this exact
    text — normalized performance, CIs, SDC breakdown — byte for byte.
    Quarantined trials, when present, are reported on their own line so
    a degraded campaign is visibly degraded.
    """
    lines = [
        f"task={result.task_name} fault={result.fault_model.value}"
        f" trials={result.n_trials}"
    ]
    for metric in result.baseline:
        ci = result.normalized[metric]
        lines.append(
            f"{metric:12s} baseline {result.baseline[metric]:8.3f}"
            f"  faulty {result.faulty[metric]:8.3f}"
            f"  normalized {ci.ratio:.4f} [{ci.lower:.4f}, {ci.upper:.4f}]"
        )
    breakdown = result.sdc_breakdown()
    lines.append(
        f"sdc rate {result.sdc_rate:.3f}"
        f" (subtle {breakdown['subtle']:.3f},"
        f" distorted {breakdown['distorted']:.3f})"
    )
    if result.quarantined:
        lines.append(f"quarantined {result.quarantined} trial(s) as FAILED")
    return "\n".join(lines)


def save_result(
    result: ExperimentResult,
    path: str | Path,
    seed: int | None = None,
    config: dict | None = None,
) -> Path:
    """Write an experiment result as a manifest-headed JSONL run."""
    from repro.obs.export import JsonlWriter
    from repro.obs.manifest import build_manifest

    path = Path(path)
    manifest = build_manifest(
        seed=seed,
        config=config or {"experiment_id": result.experiment_id},
        command=f"experiment:{result.experiment_id}",
        extra={"experiment_id": result.experiment_id, "title": result.title},
    )
    with JsonlWriter(path) as writer:
        writer.write(manifest)
        for row in result.rows:
            writer.write({"kind": "row", **row})
        for note in result.notes:
            writer.write({"kind": "note", "text": note})
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Load a :func:`save_result` file, asserting the telemetry schema.

    Raises :class:`repro.obs.SchemaMismatchError` when the file was
    written under a different ``TELEMETRY_SCHEMA_VERSION`` — stale runs
    must be regenerated, not reinterpreted.
    """
    from repro.obs.export import read_jsonl
    from repro.obs.manifest import check_schema

    records = read_jsonl(path)
    if not records or records[0].get("kind") != "manifest":
        raise ValueError(f"{path}: missing manifest header record")
    manifest = check_schema(records[0], path)
    result = ExperimentResult(
        experiment_id=manifest.get("experiment_id", "unknown"),
        title=manifest.get("title", ""),
    )
    for record in records[1:]:
        kind = record.pop("kind", None)
        if kind == "row":
            result.add(**record)
        elif kind == "note":
            result.note(record["text"])
    return result
