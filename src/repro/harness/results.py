"""Experiment result containers and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """A reproduced table/figure: labelled rows of named columns."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        """Append one table row from keyword columns."""
        self.rows.append(row)

    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        return [row.get(name) for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(text)

    def __str__(self) -> str:
        return format_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render rows as an aligned text table (the paper's rows/series)."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        columns: list[str] = []
        for row in result.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        rendered = [
            [_fmt(row.get(col, "")) for col in columns] for row in result.rows
        ]
        widths = [
            max(len(col), *(len(r[i]) for r in rendered))
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
