"""Training substrate: corpora, batching, LM trainer."""

from repro.training.data import (
    DEFAULT_TASK_WEIGHTS,
    build_mixed_corpus,
    build_tokenizer,
    build_vocab,
    corpus_to_stream,
    sample_batch,
)
from repro.training.trainer import TrainConfig, TrainResult, train_lm

__all__ = [
    "DEFAULT_TASK_WEIGHTS",
    "TrainConfig",
    "TrainResult",
    "build_mixed_corpus",
    "build_tokenizer",
    "build_vocab",
    "corpus_to_stream",
    "sample_batch",
    "train_lm",
]
