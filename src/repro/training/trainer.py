"""Language-model training loop over the autograd transformer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd import AdamW, CosineWarmupSchedule, clip_grad_norm
from repro.model.transformer import TransformerLM
from repro.training.data import sample_batch

__all__ = ["TrainConfig", "TrainResult", "train_lm"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for one training run."""

    steps: int = 2000
    batch_size: int = 16
    seq_len: int = 64
    lr: float = 3e-3
    warmup_steps: int = 100
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 200

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch_size < 1 or self.seq_len < 2:
            raise ValueError("invalid batch geometry")


@dataclass
class TrainResult:
    """Loss trajectory of a completed run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_final(self, window: int = 50) -> float:
        tail = self.losses[-window:]
        return float(np.mean(tail)) if tail else float("nan")


def train_lm(
    model: TransformerLM,
    stream: np.ndarray,
    config: TrainConfig,
    on_step: Callable[[int, float], None] | None = None,
) -> TrainResult:
    """Train ``model`` on random windows of ``stream`` (next-token CE).

    Deterministic given (model init, stream, config.seed).  Norm gains
    are excluded from weight decay, the usual transformer practice.
    """
    rng = np.random.default_rng(config.seed)
    decay_params = [
        t for n, t in model.params.items() if not n.endswith("norm.weight")
    ]
    nodecay_params = [
        t for n, t in model.params.items() if n.endswith("norm.weight")
    ]
    opt_decay = AdamW(
        decay_params, lr=config.lr, weight_decay=config.weight_decay
    )
    opt_nodecay = AdamW(nodecay_params, lr=config.lr, weight_decay=0.0)
    schedule_a = CosineWarmupSchedule(
        opt_decay, config.lr, config.warmup_steps, config.steps
    )
    schedule_b = CosineWarmupSchedule(
        opt_nodecay, config.lr, config.warmup_steps, config.steps
    )
    result = TrainResult()
    seq_len = min(config.seq_len, model.config.max_seq)
    for step in range(config.steps):
        inputs, targets = sample_batch(stream, rng, config.batch_size, seq_len)
        loss = model.loss(inputs, targets)
        model.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), config.grad_clip)
        schedule_a.step()
        schedule_b.step()
        opt_decay.step()
        opt_nodecay.step()
        value = float(loss.data)
        result.losses.append(value)
        if on_step is not None and (step % config.log_every == 0):
            on_step(step, value)
    return result
