"""Training-corpus construction and batching.

One mixed multi-task corpus trains each "general-purpose" model — the
tiny-scale analogue of pretraining + instruction tuning — while
single-task corpora drive the fine-tuned variants (the paper's ALMA /
Summarizer analogues).  Documents are concatenated into one token
stream separated by ``<eos>``, and training samples random windows
from it (standard LM packing).
"""

from __future__ import annotations

import numpy as np

from repro.tasks.base import Task
from repro.tasks.world import World
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocab

__all__ = [
    "build_vocab",
    "build_tokenizer",
    "build_mixed_corpus",
    "corpus_to_stream",
    "sample_batch",
    "DEFAULT_TASK_WEIGHTS",
]

# Sampling weights for the pretraining mixture; reasoning-heavy tasks
# get more mass because digit arithmetic is the hardest skill for a
# tiny model to acquire.
DEFAULT_TASK_WEIGHTS: dict[str, float] = {
    "mmlu": 2.0,
    "arc": 1.0,
    "truthfulqa": 1.0,
    "winogrande": 1.0,
    "hellaswag": 0.5,
    "gsm8k": 4.0,
    "wmt16": 2.0,
    "xlsum": 1.5,
    "squadv2": 2.0,
}


def build_vocab(world: World) -> Vocab:
    """Closed vocabulary over everything the world can generate."""
    return Vocab(sorted(set(world.all_tokens())))


def build_tokenizer(world: World) -> Tokenizer:
    return Tokenizer(build_vocab(world))


def build_mixed_corpus(
    tasks: list[Task],
    rng: np.random.Generator,
    n_docs: int,
    weights: dict[str, float] | None = None,
) -> list[str]:
    """Sample ``n_docs`` documents from the weighted task mixture."""
    weights = weights or DEFAULT_TASK_WEIGHTS
    w = np.array([weights.get(t.name, 1.0) for t in tasks], dtype=np.float64)
    w /= w.sum()
    counts = rng.multinomial(n_docs, w)
    docs: list[str] = []
    for task, count in zip(tasks, counts):
        docs.extend(task.training_texts(rng, int(count)))
    order = rng.permutation(len(docs))
    return [docs[i] for i in order]


def corpus_to_stream(docs: list[str], tokenizer: Tokenizer) -> np.ndarray:
    """Concatenate documents into one ``<eos>``-separated id stream."""
    ids: list[int] = []
    for doc in docs:
        ids.extend(tokenizer.encode(doc, add_eos=True))
    return np.asarray(ids, dtype=np.int64)


def sample_batch(
    stream: np.ndarray,
    rng: np.random.Generator,
    batch_size: int,
    seq_len: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Random contiguous windows: returns (inputs, next-token targets)."""
    if len(stream) < seq_len + 2:
        raise ValueError("token stream shorter than one training window")
    starts = rng.integers(0, len(stream) - seq_len - 1, size=batch_size)
    rows = starts[:, None] + np.arange(seq_len + 1)
    window = stream[rows]
    return window[:, :-1], window[:, 1:]
