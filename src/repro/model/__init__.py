"""Model library: configs, parameter store, trainable transformer."""

from repro.model.config import ModelConfig
from repro.model.params import (
    LINEAR_LAYER_NAMES,
    MOE_LINEAR_LAYER_NAMES,
    ParamStore,
    block_linear_layers,
    init_params,
)
from repro.model.transformer import TransformerLM, causal_mask, rope_tables

__all__ = [
    "LINEAR_LAYER_NAMES",
    "MOE_LINEAR_LAYER_NAMES",
    "ModelConfig",
    "ParamStore",
    "TransformerLM",
    "block_linear_layers",
    "causal_mask",
    "init_params",
    "rope_tables",
]
