"""Model configuration for the Llama-style decoder-only transformer."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of a decoder-only transformer (Fig. 1 architecture).

    The layer inventory per block matches the paper's Llama diagram:
    ``q_proj``/``k_proj``/``v_proj``/``out_proj`` in the attention block
    and ``gate_proj``/``up_proj``/``down_proj`` in the SwiGLU MLP, with
    RMSNorm before each.  Setting ``n_experts > 0`` replaces the MLP
    with a Mixture-of-Experts layer (router + ``n_experts`` expert
    MLPs, ``top_k`` active per token).
    """

    vocab_size: int
    d_model: int = 64
    n_heads: int = 4
    n_blocks: int = 4
    d_ff: int = 128
    max_seq: int = 160
    rope_theta: float = 10000.0
    norm_eps: float = 1e-5
    n_experts: int = 0
    top_k: int = 2
    init_gain: float = 1.0
    family: str = "generic"

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by n_heads"
                f" ({self.n_heads})"
            )
        if self.d_model % self.n_heads % 2 == 0 and (self.d_model // self.n_heads) % 2:
            raise ValueError("head dimension must be even for rotary embeddings")
        if self.n_experts and not 1 <= self.top_k <= self.n_experts:
            raise ValueError("top_k must be in [1, n_experts]")

    @property
    def head_dim(self) -> int:
        """Per-head attention dimension."""
        return self.d_model // self.n_heads

    @property
    def is_moe(self) -> bool:
        """True when the MLP is a Mixture-of-Experts layer."""
        return self.n_experts > 0

    def n_params(self) -> int:
        """Exact parameter count of a model with this configuration."""
        d, f, v = self.d_model, self.d_ff, self.vocab_size
        attn = 4 * d * d
        mlp = 3 * d * f
        norms = 2 * d
        if self.is_moe:
            block = attn + norms + d * self.n_experts + self.n_experts * mlp
        else:
            block = attn + norms + mlp
        return v * d + self.n_blocks * block + d + d * v

    def to_json(self) -> str:
        """Stable JSON form (used in cache keys)."""
        return json.dumps(asdict(self), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ModelConfig":
        """Inverse of :meth:`to_json`."""
        return ModelConfig(**json.loads(text))
