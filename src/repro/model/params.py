"""Named parameter store with the addressing scheme fault injection uses.

Weights are addressed the way the paper specifies fault-injection
targets: ``(block id, layer name, row, column)``.  The canonical layer
names per transformer block are::

    attn_norm  q_proj  k_proj  v_proj  out_proj
    mlp_norm   gate_proj  up_proj  down_proj          (dense MLP)
    mlp_norm   router  experts.{e}.{gate,up,down}_proj (MoE)

plus the model-level ``embed``, ``final_norm`` and ``lm_head``.  Linear
weights are stored ``(in_features, out_features)`` so that the forward
pass is ``y = x @ W``; a fault in ``W[r, c]`` therefore corrupts column
``c`` of the output — the propagation geometry in the paper's Fig. 5.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.model.config import ModelConfig

__all__ = [
    "ParamStore",
    "init_params",
    "block_linear_layers",
    "LINEAR_LAYER_NAMES",
    "MOE_LINEAR_LAYER_NAMES",
]

# Linear layers inside a dense transformer block -- the FI target set
# (the paper restricts injection to linear layers in the blocks, which
# dominate compute: ~94% of FLOPs in Llama2-7B).
LINEAR_LAYER_NAMES: tuple[str, ...] = (
    "q_proj",
    "k_proj",
    "v_proj",
    "out_proj",
    "gate_proj",
    "up_proj",
    "down_proj",
)

MOE_MLP_NAMES: tuple[str, ...] = ("gate_proj", "up_proj", "down_proj")
MOE_LINEAR_LAYER_NAMES: tuple[str, ...] = (
    "q_proj",
    "k_proj",
    "v_proj",
    "out_proj",
    "router",
)


def block_linear_layers(config: ModelConfig, block: int) -> list[str]:
    """Full parameter names of every FI-targetable linear layer in a block."""
    prefix = f"blocks.{block}."
    if not config.is_moe:
        return [prefix + name for name in LINEAR_LAYER_NAMES]
    names = [prefix + name for name in MOE_LINEAR_LAYER_NAMES]
    for e in range(config.n_experts):
        names.extend(prefix + f"experts.{e}.{n}" for n in MOE_MLP_NAMES)
    return names


class ParamStore:
    """An ordered mapping of parameter name -> float32 ndarray."""

    def __init__(self, config: ModelConfig, params: dict[str, np.ndarray]) -> None:
        self.config = config
        self._params = dict(params)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._params[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name in self._params and self._params[name].shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name}: {self._params[name].shape}"
                f" vs {value.shape}"
            )
        self._params[name] = np.asarray(value, dtype=np.float32)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        return iter(self._params.items())

    def names(self) -> list[str]:
        """All parameter names in insertion order."""
        return list(self._params)

    def linear_layer_names(self) -> list[str]:
        """All FI-targetable linear layers across all blocks."""
        out: list[str] = []
        for b in range(self.config.n_blocks):
            out.extend(block_linear_layers(self.config, b))
        return out

    def n_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self._params.values())

    def copy(self) -> "ParamStore":
        """Deep copy (weights duplicated)."""
        return ParamStore(
            self.config, {k: v.copy() for k, v in self._params.items()}
        )

    def fingerprint(self) -> str:
        """Content hash of all weights (order-sensitive, deterministic)."""
        digest = hashlib.sha256()
        digest.update(self.config.to_json().encode())
        for name in sorted(self._params):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(self._params[name]).tobytes())
        return digest.hexdigest()[:16]

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize config + weights to an ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path, __config__=np.frombuffer(self.config.to_json().encode(), np.uint8),
            **self._params,
        )

    @staticmethod
    def load(path: str | Path) -> "ParamStore":
        """Inverse of :meth:`save`."""
        with np.load(Path(path)) as archive:
            config = ModelConfig.from_json(bytes(archive["__config__"]).decode())
            params = {
                k: archive[k].astype(np.float32)
                for k in archive.files
                if k != "__config__"
            }
        return ParamStore(config, params)


def _normal(rng: np.random.Generator, shape: tuple[int, ...], std: float) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def init_params(config: ModelConfig, seed: int) -> ParamStore:
    """GPT-2-style scaled-normal initialization, fully seed-deterministic.

    ``config.init_gain`` scales all linear initializations; the model
    "families" in the zoo use different gains (and shapes), giving them
    different weight-value distributions — the property behind the
    paper's Fig. 13 / Observation #3.
    """
    rng = np.random.default_rng(seed)
    d, f, v = config.d_model, config.d_ff, config.vocab_size
    std = config.init_gain * d**-0.5
    # Residual-path projections get the 1/sqrt(2L) depth correction.
    res_std = std / np.sqrt(2.0 * config.n_blocks)

    params: dict[str, np.ndarray] = {"embed.weight": _normal(rng, (v, d), 0.02)}
    for b in range(config.n_blocks):
        p = f"blocks.{b}."
        params[p + "attn_norm.weight"] = np.ones(d, dtype=np.float32)
        params[p + "q_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "k_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "v_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "out_proj.weight"] = _normal(rng, (d, d), res_std)
        params[p + "mlp_norm.weight"] = np.ones(d, dtype=np.float32)
        if config.is_moe:
            params[p + "router.weight"] = _normal(rng, (d, config.n_experts), std)
            for e in range(config.n_experts):
                ep = p + f"experts.{e}."
                params[ep + "gate_proj.weight"] = _normal(rng, (d, f), std)
                params[ep + "up_proj.weight"] = _normal(rng, (d, f), std)
                params[ep + "down_proj.weight"] = _normal(rng, (f, d), res_std)
        else:
            params[p + "gate_proj.weight"] = _normal(rng, (d, f), std)
            params[p + "up_proj.weight"] = _normal(rng, (d, f), std)
            params[p + "down_proj.weight"] = _normal(rng, (f, d), res_std)
    params["final_norm.weight"] = np.ones(d, dtype=np.float32)
    params["lm_head.weight"] = _normal(rng, (d, v), std)
    return ParamStore(config, params)
