"""Named parameter store with the addressing scheme fault injection uses.

Weights are addressed the way the paper specifies fault-injection
targets: ``(block id, layer name, row, column)``.  The canonical layer
names per transformer block are::

    attn_norm  q_proj  k_proj  v_proj  out_proj
    mlp_norm   gate_proj  up_proj  down_proj          (dense MLP)
    mlp_norm   router  experts.{e}.{gate,up,down}_proj (MoE)

plus the model-level ``embed``, ``final_norm`` and ``lm_head``.  Linear
weights are stored ``(in_features, out_features)`` so that the forward
pass is ``y = x @ W``; a fault in ``W[r, c]`` therefore corrupts column
``c`` of the output — the propagation geometry in the paper's Fig. 5.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.model.config import ModelConfig

__all__ = [
    "ParamStore",
    "init_params",
    "block_linear_layers",
    "LINEAR_LAYER_NAMES",
    "MOE_LINEAR_LAYER_NAMES",
    "ARENA_SCHEMA_VERSION",
    "write_arena",
    "open_arena",
    "arena_nbytes",
    "arena_valid",
]

# ----------------------------------------------------------------------------
# Shared-memory arenas: a directory holding one flat binary file of
# concatenated tensors plus a JSON index describing their layout.  The
# arena is written once (per zoo build or per campaign) and mapped
# read-only by any number of processes; the OS page cache backs every
# mapping with the same physical pages, so N campaign workers pay for
# one copy of the weights instead of N.
# ----------------------------------------------------------------------------

ARENA_SCHEMA_VERSION = 1
_ARENA_ALIGN = 64
"""Tensor offsets are aligned so every view starts on a cache line."""

_ARENA_BIN = "arena.bin"
_ARENA_INDEX = "index.json"


def _align(offset: int) -> int:
    return (offset + _ARENA_ALIGN - 1) // _ARENA_ALIGN * _ARENA_ALIGN


def write_arena(
    directory: str | Path,
    arrays: dict[str, np.ndarray],
    meta: dict | None = None,
) -> Path:
    """Serialize named arrays into a memory-mappable arena directory.

    Layout: ``arena.bin`` holds the tensors' raw bytes back to back
    (64-byte aligned, insertion order preserved); ``index.json`` maps
    each name to ``(dtype, shape, offset)`` plus caller metadata.  The
    index is written *last*, so a directory without one is an aborted
    write and readers treat it as absent — re-exporting over it is
    always safe.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index_path = directory / _ARENA_INDEX
    index_path.unlink(missing_ok=True)  # invalidate while rewriting
    entries = []
    offset = 0
    with (directory / _ARENA_BIN).open("wb") as fh:
        for name, array in arrays.items():
            shape = list(np.asarray(array).shape)
            # ascontiguousarray promotes 0-d to 1-d; the index keeps
            # the original shape so attachment round-trips exactly.
            array = np.ascontiguousarray(array)
            offset = _align(offset)
            fh.seek(offset)
            fh.write(array.tobytes())
            entries.append(
                {
                    "name": name,
                    "dtype": array.dtype.str,
                    "shape": shape,
                    "offset": offset,
                    "nbytes": array.nbytes,
                }
            )
            offset += array.nbytes
        fh.flush()
    index = {
        "schema_version": ARENA_SCHEMA_VERSION,
        "total_bytes": offset,
        "meta": meta or {},
        "arrays": entries,
    }
    # No sort_keys: dict order in ``meta`` is semantic (an attached
    # engine must enumerate its stores in the exporter's order, or
    # uniform site sampling would pick different layers per process).
    index_path.write_text(json.dumps(index, indent=1))
    return directory


def open_arena(directory: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Map an arena read-only; returns ``(name -> view, meta)``.

    Every returned array is a zero-copy, non-writeable view into one
    shared ``np.memmap`` of ``arena.bin`` — attaching from many
    processes shares physical pages.  Mutating a view raises; consumers
    that need to write (weight-fault trials) must copy first
    (copy-on-write at tensor granularity).
    """
    directory = Path(directory)
    index = json.loads((directory / _ARENA_INDEX).read_text())
    version = index.get("schema_version")
    if version != ARENA_SCHEMA_VERSION:
        raise ValueError(
            f"arena schema mismatch in {directory}: file has {version!r},"
            f" this build reads {ARENA_SCHEMA_VERSION}"
        )
    mm = np.memmap(directory / _ARENA_BIN, dtype=np.uint8, mode="r")
    arrays: dict[str, np.ndarray] = {}
    for entry in index["arrays"]:
        start = entry["offset"]
        raw = mm[start : start + entry["nbytes"]]
        arrays[entry["name"]] = raw.view(entry["dtype"]).reshape(
            entry["shape"]
        )
    return arrays, index["meta"]


def arena_nbytes(directory: str | Path) -> int:
    """Total tensor bytes stored in an arena (index-reported)."""
    index = json.loads((Path(directory) / _ARENA_INDEX).read_text())
    return int(index["total_bytes"])


def arena_valid(directory: str | Path) -> bool:
    """Whether ``directory`` holds a complete, readable arena."""
    directory = Path(directory)
    if not (directory / _ARENA_INDEX).exists():
        return False
    try:
        index = json.loads((directory / _ARENA_INDEX).read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return (
        index.get("schema_version") == ARENA_SCHEMA_VERSION
        and (directory / _ARENA_BIN).exists()
    )

# Linear layers inside a dense transformer block -- the FI target set
# (the paper restricts injection to linear layers in the blocks, which
# dominate compute: ~94% of FLOPs in Llama2-7B).
LINEAR_LAYER_NAMES: tuple[str, ...] = (
    "q_proj",
    "k_proj",
    "v_proj",
    "out_proj",
    "gate_proj",
    "up_proj",
    "down_proj",
)

MOE_MLP_NAMES: tuple[str, ...] = ("gate_proj", "up_proj", "down_proj")
MOE_LINEAR_LAYER_NAMES: tuple[str, ...] = (
    "q_proj",
    "k_proj",
    "v_proj",
    "out_proj",
    "router",
)


def block_linear_layers(config: ModelConfig, block: int) -> list[str]:
    """Full parameter names of every FI-targetable linear layer in a block."""
    prefix = f"blocks.{block}."
    if not config.is_moe:
        return [prefix + name for name in LINEAR_LAYER_NAMES]
    names = [prefix + name for name in MOE_LINEAR_LAYER_NAMES]
    for e in range(config.n_experts):
        names.extend(prefix + f"experts.{e}.{n}" for n in MOE_MLP_NAMES)
    return names


class ParamStore:
    """An ordered mapping of parameter name -> float32 ndarray."""

    def __init__(self, config: ModelConfig, params: dict[str, np.ndarray]) -> None:
        self.config = config
        self._params = dict(params)
        self.shared_dir: Path | None = None
        """Arena directory backing this store's arrays, when it was
        opened via :meth:`open_shared` (views are then read-only)."""

    def __getitem__(self, name: str) -> np.ndarray:
        return self._params[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name in self._params and self._params[name].shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name}: {self._params[name].shape}"
                f" vs {value.shape}"
            )
        self._params[name] = np.asarray(value, dtype=np.float32)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        return iter(self._params.items())

    def names(self) -> list[str]:
        """All parameter names in insertion order."""
        return list(self._params)

    def linear_layer_names(self) -> list[str]:
        """All FI-targetable linear layers across all blocks."""
        out: list[str] = []
        for b in range(self.config.n_blocks):
            out.extend(block_linear_layers(self.config, b))
        return out

    def n_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self._params.values())

    def copy(self) -> "ParamStore":
        """Deep copy (weights duplicated)."""
        return ParamStore(
            self.config, {k: v.copy() for k, v in self._params.items()}
        )

    def fingerprint(self) -> str:
        """Content hash of all weights (order-sensitive, deterministic)."""
        digest = hashlib.sha256()
        digest.update(self.config.to_json().encode())
        for name in sorted(self._params):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(self._params[name]).tobytes())
        return digest.hexdigest()[:16]

    # -- shared (memory-mapped) backing --------------------------------------

    def to_shared(self, directory: str | Path) -> "ParamStore":
        """Export into a read-only mmap arena and return the shared view.

        The returned store's :meth:`fingerprint` is bit-identical to
        this one's (same config JSON, same parameter bytes); its arrays
        are zero-copy views any number of processes can attach to via
        :meth:`open_shared` without duplicating the weights.
        """
        write_arena(
            directory,
            self._params,
            meta={"kind": "param-store", "config": self.config.to_json()},
        )
        return ParamStore.open_shared(directory)

    @staticmethod
    def open_shared(directory: str | Path) -> "ParamStore":
        """Attach to an arena written by :meth:`to_shared` (zero-copy)."""
        arrays, meta = open_arena(directory)
        if meta.get("kind") != "param-store":
            raise ValueError(
                f"{directory} is not a ParamStore arena"
                f" (kind={meta.get('kind')!r})"
            )
        store = ParamStore(ModelConfig.from_json(meta["config"]), arrays)
        store.shared_dir = Path(directory)
        return store

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize config + weights to an ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path, __config__=np.frombuffer(self.config.to_json().encode(), np.uint8),
            **self._params,
        )

    @staticmethod
    def load(path: str | Path) -> "ParamStore":
        """Inverse of :meth:`save`."""
        with np.load(Path(path)) as archive:
            config = ModelConfig.from_json(bytes(archive["__config__"]).decode())
            params = {
                k: archive[k].astype(np.float32)
                for k in archive.files
                if k != "__config__"
            }
        return ParamStore(config, params)


def _normal(rng: np.random.Generator, shape: tuple[int, ...], std: float) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def init_params(config: ModelConfig, seed: int) -> ParamStore:
    """GPT-2-style scaled-normal initialization, fully seed-deterministic.

    ``config.init_gain`` scales all linear initializations; the model
    "families" in the zoo use different gains (and shapes), giving them
    different weight-value distributions — the property behind the
    paper's Fig. 13 / Observation #3.
    """
    rng = np.random.default_rng(seed)
    d, f, v = config.d_model, config.d_ff, config.vocab_size
    std = config.init_gain * d**-0.5
    # Residual-path projections get the 1/sqrt(2L) depth correction.
    res_std = std / np.sqrt(2.0 * config.n_blocks)

    params: dict[str, np.ndarray] = {"embed.weight": _normal(rng, (v, d), 0.02)}
    for b in range(config.n_blocks):
        p = f"blocks.{b}."
        params[p + "attn_norm.weight"] = np.ones(d, dtype=np.float32)
        params[p + "q_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "k_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "v_proj.weight"] = _normal(rng, (d, d), std)
        params[p + "out_proj.weight"] = _normal(rng, (d, d), res_std)
        params[p + "mlp_norm.weight"] = np.ones(d, dtype=np.float32)
        if config.is_moe:
            params[p + "router.weight"] = _normal(rng, (d, config.n_experts), std)
            for e in range(config.n_experts):
                ep = p + f"experts.{e}."
                params[ep + "gate_proj.weight"] = _normal(rng, (d, f), std)
                params[ep + "up_proj.weight"] = _normal(rng, (d, f), std)
                params[ep + "down_proj.weight"] = _normal(rng, (f, d), res_std)
        else:
            params[p + "gate_proj.weight"] = _normal(rng, (d, f), std)
            params[p + "up_proj.weight"] = _normal(rng, (d, f), std)
            params[p + "down_proj.weight"] = _normal(rng, (f, d), res_std)
    params["final_norm.weight"] = np.ones(d, dtype=np.float32)
    params["lm_head.weight"] = _normal(rng, (d, v), std)
    return ParamStore(config, params)
