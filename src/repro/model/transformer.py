"""Differentiable decoder-only transformer used for training.

This is the autograd-side twin of the fast inference engine in
:mod:`repro.inference.engine`: both consume the same
:class:`~repro.model.params.ParamStore` naming scheme, so a model
trained here can be handed directly to the inference engine for
fault-injection campaigns.

Architecture (paper Fig. 1, Llama family): pre-RMSNorm, rotary
positional embeddings, causal multi-head attention, SwiGLU MLP, with an
optional Mixture-of-Experts MLP (router + top-k of ``n_experts``
experts, Mixtral-style) when ``config.n_experts > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import (
    Tensor,
    cross_entropy,
    rms_norm,
    rope,
    silu,
    softmax,
)
from repro.model.config import ModelConfig
from repro.model.params import ParamStore, init_params

__all__ = ["TransformerLM", "rope_tables", "causal_mask"]


def rope_tables(
    head_dim: int, max_seq: int, theta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Precompute rotary cos/sin tables of shape ``(max_seq, head_dim)``."""
    if head_dim % 2:
        raise ValueError("head_dim must be even for rotary embeddings")
    inv_freq = theta ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
    angles = np.outer(np.arange(max_seq, dtype=np.float64), inv_freq)
    angles = np.concatenate([angles, angles], axis=-1)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive attention mask: 0 on/below the diagonal, -1e9 above."""
    mask = np.full((seq_len, seq_len), -1e9, dtype=np.float32)
    return np.triu(mask, k=1)


class TransformerLM:
    """Trainable Llama-style language model over a named parameter set."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        store = init_params(config, seed)
        self.params: dict[str, Tensor] = {
            name: Tensor(array, requires_grad=True) for name, array in store.items()
        }
        self._cos, self._sin = rope_tables(
            config.head_dim, config.max_seq, config.rope_theta
        )

    # -- parameter plumbing ----------------------------------------------------

    @staticmethod
    def from_store(store: ParamStore) -> "TransformerLM":
        """Wrap trained weights in a fresh trainable model (copies)."""
        model = TransformerLM.__new__(TransformerLM)
        model.config = store.config
        model.params = {
            name: Tensor(array.copy(), requires_grad=True)
            for name, array in store.items()
        }
        model._cos, model._sin = rope_tables(
            store.config.head_dim, store.config.max_seq, store.config.rope_theta
        )
        return model

    def to_store(self) -> ParamStore:
        """Snapshot current weights as a plain ParamStore (copies)."""
        return ParamStore(
            self.config, {name: t.data.copy() for name, t in self.params.items()}
        )

    def parameters(self) -> list[Tensor]:
        """All trainable tensors."""
        return list(self.params.values())

    def n_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.parameters():
            p.grad = None

    # -- forward --------------------------------------------------------------

    def _attention(self, x: Tensor, block: int, mask: np.ndarray) -> Tensor:
        cfg = self.config
        p = self.params
        prefix = f"blocks.{block}."
        batch, seq, _ = x.shape
        h, hd = cfg.n_heads, cfg.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, h, hd).transpose(0, 2, 1, 3)

        q = split_heads(x @ p[prefix + "q_proj.weight"])
        k = split_heads(x @ p[prefix + "k_proj.weight"])
        v = split_heads(x @ p[prefix + "v_proj.weight"])
        cos, sin = self._cos[:seq], self._sin[:seq]
        q = rope(q, cos, sin)
        k = rope(k, cos, sin)
        scores = (q @ k.swapaxes(-1, -2)) * (hd**-0.5) + mask
        attn = softmax(scores, axis=-1)
        ctx = (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, cfg.d_model)
        return ctx @ p[prefix + "out_proj.weight"]

    def _mlp(self, h: Tensor, prefix: str) -> Tensor:
        p = self.params
        gate = silu(h @ p[prefix + "gate_proj.weight"])
        up = h @ p[prefix + "up_proj.weight"]
        return (gate * up) @ p[prefix + "down_proj.weight"]

    def _moe(self, h: Tensor, block: int) -> tuple[Tensor, Tensor]:
        """Top-k mixture-of-experts MLP with a load-balancing aux loss."""
        cfg = self.config
        prefix = f"blocks.{block}."
        router_logits = h @ self.params[prefix + "router.weight"]
        probs = softmax(router_logits, axis=-1)  # (B, T, E)
        # Top-k selection on values only (non-differentiable routing
        # decision, gradients flow through the kept probabilities).
        kth = np.partition(probs.data, -cfg.top_k, axis=-1)[..., -cfg.top_k][
            ..., None
        ]
        keep = (probs.data >= kth).astype(np.float32)
        # Guard against ties selecting more than k experts.
        excess = keep.sum(-1) > cfg.top_k
        if excess.any():
            flat = keep.reshape(-1, cfg.n_experts)
            for idx in np.nonzero(excess.reshape(-1))[0]:
                on = np.nonzero(flat[idx])[0]
                flat[idx, on[cfg.top_k :]] = 0.0
            keep = flat.reshape(keep.shape)
        gates = probs * keep
        gates = gates / (gates.sum(axis=-1, keepdims=True) + 1e-9)
        out: Tensor | None = None
        for e in range(cfg.n_experts):
            expert_out = self._mlp(h, prefix + f"experts.{e}.")
            weighted = expert_out * gates[..., e : e + 1]
            out = weighted if out is None else out + weighted
        assert out is not None
        # Switch-transformer load-balance loss: E * sum_e f_e * P_e.
        frac = keep.mean(axis=(0, 1)) / cfg.top_k  # constant
        mean_probs = probs.mean(axis=(0, 1))
        aux = (mean_probs * Tensor(frac * cfg.n_experts)).sum()
        return out, aux

    def forward(self, tokens: np.ndarray) -> tuple[Tensor, Tensor]:
        """Compute logits for a batch of token ids.

        Parameters
        ----------
        tokens:
            Integer array of shape ``(batch, seq)``.

        Returns
        -------
        logits:
            Tensor of shape ``(batch, seq, vocab)``.
        aux_loss:
            MoE load-balancing loss (zero tensor for dense models).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError("forward expects (batch, seq) token ids")
        cfg = self.config
        if tokens.shape[1] > cfg.max_seq:
            raise ValueError(
                f"sequence length {tokens.shape[1]} exceeds max_seq {cfg.max_seq}"
            )
        p = self.params
        mask = causal_mask(tokens.shape[1])
        x = p["embed.weight"].take_rows(tokens)
        aux_total: Tensor = Tensor(np.float32(0.0))
        for b in range(cfg.n_blocks):
            prefix = f"blocks.{b}."
            h = rms_norm(x, p[prefix + "attn_norm.weight"], cfg.norm_eps)
            x = x + self._attention(h, b, mask)
            h = rms_norm(x, p[prefix + "mlp_norm.weight"], cfg.norm_eps)
            if cfg.is_moe:
                moe_out, aux = self._moe(h, b)
                x = x + moe_out
                aux_total = aux_total + aux
            else:
                x = x + self._mlp(h, prefix)
        x = rms_norm(x, p["final_norm.weight"], cfg.norm_eps)
        logits = x @ p["lm_head.weight"]
        return logits, aux_total

    def loss(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        aux_weight: float = 0.01,
    ) -> Tensor:
        """Next-token cross-entropy (+ MoE aux loss) over a batch.

        ``targets`` uses ``-100`` for positions excluded from the loss
        (padding and, during task fine-tuning, prompt tokens).
        """
        logits, aux = self.forward(tokens)
        batch, seq, vocab = logits.shape
        ce = cross_entropy(
            logits.reshape(batch * seq, vocab), np.asarray(targets).reshape(-1)
        )
        if self.config.is_moe and aux_weight:
            return ce + aux * aux_weight
        return ce
