"""repro — end-to-end resilience study of LLM inference under soft errors.

A from-scratch reproduction of "Demystifying the Resilience of Large
Language Model Inference: An End-to-End Perspective" (SC '25): a
pure-NumPy transformer training + inference stack, bit-exact float /
quantized numerics, a nine-dataset synthetic task suite with the
paper's six quality metrics, and a statistical fault-injection
framework with one experiment runner per paper table and figure.

Quick start::

    from repro import ExperimentContext, fig17_quantization
    ctx = ExperimentContext(n_examples=8, n_trials=40)
    print(fig17_quantization(ctx))
"""

from repro.fi import (
    CampaignResult,
    FaultModel,
    FaultSite,
    FICampaign,
    Outcome,
    inject,
    sample_site,
    trace_fault,
)
from repro.generation import GenerationConfig, generate_ids
from repro.harness import ExperimentContext, ExperimentResult
from repro.harness.experiments import (
    fig03_overall,
    fig04_fault_models,
    fig05_memory_propagation,
    fig06_computational_propagation,
    fig07_output_examples,
    fig08_sdc_breakdown,
    fig09_bit_positions_subtle,
    fig10_bit_positions_distorted,
    fig11_per_task,
    fig13_weight_distributions,
    fig14_moe_vs_dense,
    fig15_gate_faults,
    fig16_model_scale,
    fig17_quantization,
    fig18_beam_vs_greedy,
    fig19_beam_tradeoff,
    fig20_chain_of_thought,
    fig21_dtypes,
    table1_workloads,
    table2_formats,
)
from repro.inference import InferenceEngine
from repro.model import ModelConfig, ParamStore, TransformerLM
from repro.tasks import World, all_tasks, standardized_subset
from repro.zoo import load_model, zoo_names

__version__ = "1.0.0"

__all__ = [
    "CampaignResult",
    "ExperimentContext",
    "ExperimentResult",
    "FICampaign",
    "FaultModel",
    "FaultSite",
    "GenerationConfig",
    "InferenceEngine",
    "ModelConfig",
    "Outcome",
    "ParamStore",
    "TransformerLM",
    "World",
    "__version__",
    "all_tasks",
    "fig03_overall",
    "fig04_fault_models",
    "fig05_memory_propagation",
    "fig06_computational_propagation",
    "fig07_output_examples",
    "fig08_sdc_breakdown",
    "fig09_bit_positions_subtle",
    "fig10_bit_positions_distorted",
    "fig11_per_task",
    "fig13_weight_distributions",
    "fig14_moe_vs_dense",
    "fig15_gate_faults",
    "fig16_model_scale",
    "fig17_quantization",
    "fig18_beam_vs_greedy",
    "fig19_beam_tradeoff",
    "fig20_chain_of_thought",
    "fig21_dtypes",
    "generate_ids",
    "inject",
    "load_model",
    "sample_site",
    "standardized_subset",
    "table1_workloads",
    "table2_formats",
    "trace_fault",
    "zoo_names",
]
