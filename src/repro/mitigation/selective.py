"""Selective layer protection via golden copies (paper Observation #6).

The paper singles out MoE gate (router) layers: faults there silently
redirect tokens to the wrong experts, so "gate layers present unique
resilience considerations and must be explicitly protected".  This
module implements the cheapest strong protection — keep a golden copy
of the chosen layers' compute arrays and verify/restore before each
inference — and accounts for its memory cost so the protection/overhead
trade-off is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.inference.engine import InferenceEngine

__all__ = ["SelectiveProtection", "router_layers"]


def router_layers(engine: InferenceEngine) -> list[str]:
    """The MoE gate layers of an engine (empty for dense models)."""
    return [n for n in engine.linear_layer_names() if n.endswith("router")]


@dataclass
class SelectiveProtection:
    """Golden-copy verify-and-restore for a chosen set of layers."""

    engine: InferenceEngine
    layer_names: list[str]
    golden: dict[str, np.ndarray] = field(default_factory=dict)
    corrections: int = 0

    def __post_init__(self) -> None:
        if not self.layer_names:
            raise ValueError("no layers selected for protection")
        for name in self.layer_names:
            self.golden[name] = self.engine.weight_store(name).array.copy()

    @property
    def overhead_bytes(self) -> int:
        """Extra memory the golden copies cost."""
        return sum(g.nbytes for g in self.golden.values())

    def verify_and_restore(self) -> int:
        """Compare protected layers against gold; repair any divergence.

        Returns the number of corrected elements.  Call before each
        inference (or on a scrub interval) — the paper's single-fault
        model means one check per inference suffices.
        """
        fixed = 0
        for name, gold in self.golden.items():
            array = self.engine.weight_store(name).array
            mask = array != gold
            # NaN != NaN, so also catch positions where both are NaN
            # (cannot happen for gold, which is finite by construction).
            if mask.any():
                array[mask] = gold[mask]
                fixed += int(mask.sum())
        self.corrections += fixed
        return fixed

    def guarded(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` with a verify/restore pass immediately before it."""
        self.verify_and_restore()
        return fn()
