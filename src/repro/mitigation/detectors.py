"""Lightweight online SDC detectors.

The paper encourages "performance metrics that characterize the quality
degradation of generated outputs"; a prerequisite is knowing *when* to
suspect an output at all.  Two zero-reference detectors:

* :class:`LogitAnomalyDetector` — flags non-finite logits or a
  collapsed/saturated next-token distribution during generation (the
  signature of a distorted run);
* :func:`output_structure_flags` — post-hoc structural screen of the
  generated text (shares the heuristics of the SDC outcome taxonomy).

Both are detectors, not oracles: subtly-wrong outputs are exactly the
SDCs that evade them, which is the measurement the detection-coverage
bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.functional import log_softmax_np
from repro.fi.outcomes import is_distorted

__all__ = ["LogitAnomalyDetector", "output_structure_flags"]


@dataclass
class LogitAnomalyDetector:
    """Streaming screen over per-step logits.

    ``max_entropy_frac`` flags near-uniform distributions (entropy above
    the given fraction of ``log(vocab)``), which fault-corrupted hidden
    states commonly produce; non-finite logits are always flagged.
    """

    max_entropy_frac: float = 0.98
    flagged_steps: int = 0
    total_steps: int = 0
    reasons: list[str] = field(default_factory=list)

    def check(self, logits: np.ndarray) -> bool:
        """Inspect one step's logits; returns True when anomalous."""
        self.total_steps += 1
        if not np.isfinite(logits).all():
            self._flag("non-finite")
            return True
        logp = log_softmax_np(logits)
        entropy = float(-(np.exp(logp) * logp).sum())
        if entropy > self.max_entropy_frac * np.log(logits.size):
            self._flag("entropy")
            return True
        return False

    def _flag(self, reason: str) -> None:
        self.flagged_steps += 1
        self.reasons.append(reason)
        from repro.obs.flight import flight_recorder

        recorder = flight_recorder()
        if recorder.active:
            recorder.event(
                "detector.flag", reason=reason, step=self.total_steps - 1
            )

    @property
    def triggered(self) -> bool:
        return self.flagged_steps > 0

    def reset(self) -> None:
        self.flagged_steps = 0
        self.total_steps = 0
        self.reasons.clear()


def output_structure_flags(text: str, reference_hint: str | None = None) -> bool:
    """Post-hoc structural screen: True when the text looks distorted."""
    return is_distorted(text, reference_hint)
