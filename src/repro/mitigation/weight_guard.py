"""Weight integrity guard: detect and scrub corrupted stored weights.

Models the software end of memory-fault tolerance the paper motivates
(Observation #1: memory faults dominate).  At load time the guard
records a per-layer magnitude envelope; ``scan()`` later flags stored
weights outside it (a 2-bit flip in a high exponent bit moves a weight
orders of magnitude out of distribution) and ``scrub()`` repairs them
by zeroing — the standard low-cost repair, since one zeroed weight in
thousands is benign while a 2^38-scale one is catastrophic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inference.engine import InferenceEngine

__all__ = ["Anomaly", "WeightGuard"]


@dataclass(frozen=True)
class Anomaly:
    """One out-of-envelope stored weight."""

    layer_name: str
    row: int
    col: int
    value: float
    threshold: float


@dataclass
class WeightGuard:
    """Magnitude-envelope scrubber over an engine's weight stores.

    ``headroom`` multiplies each layer's load-time absolute maximum to
    form the detection threshold; values beyond it are declared
    corrupted.  False positives are impossible on an unmodified model
    by construction (every weight was inside its own envelope at
    profiling time).
    """

    headroom: float = 4.0
    thresholds: dict[str, float] = field(default_factory=dict)

    def profile(self, engine: InferenceEngine) -> None:
        """Record per-layer |w| maxima from the (trusted) current state."""
        self.thresholds = {
            name: float(np.abs(engine.weight_store(name).array).max())
            * self.headroom
            for name in engine.linear_layer_names()
        }

    def scan(self, engine: InferenceEngine) -> list[Anomaly]:
        """Find stored weights outside their layer envelope."""
        if not self.thresholds:
            raise RuntimeError("profile() before scan()")
        anomalies: list[Anomaly] = []
        for name, threshold in self.thresholds.items():
            array = engine.weight_store(name).array
            with np.errstate(invalid="ignore"):
                mask = ~(np.abs(array) <= threshold)  # catches NaN too
            for row, col in zip(*np.nonzero(mask)):
                anomalies.append(
                    Anomaly(name, int(row), int(col), float(array[row, col]),
                            threshold)
                )
        return anomalies

    def scrub(self, engine: InferenceEngine) -> list[Anomaly]:
        """Zero out every detected anomaly; returns what was repaired."""
        anomalies = self.scan(engine)
        for anomaly in anomalies:
            store = engine.weight_store(anomaly.layer_name)
            # Route the repair through the store so quantized/bit-level
            # backing representations stay consistent.
            store.array[anomaly.row, anomaly.col] = 0.0
        return anomalies
