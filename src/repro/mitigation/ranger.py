"""Ranger-style activation range restriction (Chen et al., DSN'21).

The paper's conclusions call on algorithm developers to "reduce fault
propagation (i.e., fault isolation)".  The classic low-cost realisation
is range restriction: profile each layer's fault-free output range on
calibration inputs, then clamp outputs into (a slightly widened
version of) that range at inference time.  A bit flip that blows an
activation up to 2^38 is squashed back to the profiled envelope before
it can poison downstream layers.

Implemented as engine forward hooks, so it composes transparently with
the fault injectors (mitigation hooks run for every forward, injector
hooks only at their target site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.inference.engine import CaptureState, InferenceEngine
from repro.inference.hooks import HookContext

__all__ = ["LayerRange", "RangeRestrictor"]


@dataclass(frozen=True)
class LayerRange:
    """Calibrated output envelope of one linear layer."""

    low: float
    high: float

    def widen(self, margin: float) -> "LayerRange":
        span = self.high - self.low
        pad = margin * span
        return LayerRange(self.low - pad, self.high + pad)


@dataclass
class RangeRestrictor:
    """Profile-then-clamp activation guard over an engine's linear layers.

    Usage::

        guard = RangeRestrictor(margin=0.1)
        guard.calibrate(engine, calibration_prompts)
        guard.install(engine)
        ...   # run (possibly faulty) inference
        guard.uninstall()
    """

    margin: float = 0.1
    ranges: dict[str, LayerRange] = field(default_factory=dict)
    clip_events: int = 0
    _removers: list[Callable[[], None]] = field(default_factory=list)

    def calibrate(
        self, engine: InferenceEngine, prompts: list[list[int]]
    ) -> None:
        """Record per-layer min/max over fault-free runs of ``prompts``."""
        if not prompts:
            raise ValueError("calibration needs at least one prompt")
        lows: dict[str, float] = {}
        highs: dict[str, float] = {}
        previous_capture = engine.capture
        try:
            for prompt in prompts:
                engine.capture = CaptureState()
                engine.forward_full(prompt)
                for name, output in engine.capture.layer_outputs.items():
                    lo, hi = float(output.min()), float(output.max())
                    lows[name] = min(lo, lows.get(name, lo))
                    highs[name] = max(hi, highs.get(name, hi))
        finally:
            engine.capture = previous_capture
        self.ranges = {
            name: LayerRange(lows[name], highs[name]).widen(self.margin)
            for name in lows
        }

    def _hook(self, output: np.ndarray, ctx: HookContext) -> np.ndarray | None:
        bounds = self.ranges.get(ctx.full_name)
        if bounds is None:
            return None
        with np.errstate(invalid="ignore"):
            bad = ~((output >= bounds.low) & (output <= bounds.high))
        if bad.any():
            clipped = int(bad.sum())
            self.clip_events += clipped
            from repro.obs.flight import flight_recorder

            recorder = flight_recorder()
            if recorder.active:
                recorder.event(
                    "mitigation.clip",
                    layer=ctx.full_name,
                    iteration=int(ctx.iteration),
                    clipped=clipped,
                )
            # NaNs fail both comparisons; clamp them to the midpoint.
            np.clip(output, bounds.low, bounds.high, out=output)
            nans = np.isnan(output)
            if nans.any():
                output[nans] = 0.5 * (bounds.low + bounds.high)
        return output

    def install(self, engine: InferenceEngine) -> None:
        """Attach the clamp hook to every calibrated layer."""
        if not self.ranges:
            raise RuntimeError("calibrate() before install()")
        if self._removers:
            raise RuntimeError("already installed; uninstall() first")
        for name in self.ranges:
            self._removers.append(engine.hooks.register(name, self._hook))

    def uninstall(self) -> None:
        for remove in self._removers:
            remove()
        self._removers.clear()

    @property
    def installed(self) -> bool:
        return bool(self._removers)
