"""Fault-tolerance mechanisms motivated by the paper's conclusions.

The paper is a measurement study; its conclusions prescribe where
protection is worth spending: memory subsystems over compute
(Observation #1), fault isolation in inference algorithms, and explicit
gate-layer protection for MoE (Observation #6).  This package
implements the corresponding low-cost mechanisms so those prescriptions
can be evaluated quantitatively on the same campaign machinery:

* :class:`RangeRestrictor` — Ranger-style activation clamping,
* :class:`WeightGuard` — weight magnitude-envelope scan & scrub,
* :class:`SelectiveProtection` — golden-copy verify/restore for chosen
  layers (e.g. MoE routers),
* :class:`LogitAnomalyDetector` — online distorted-output detection.
"""

from repro.mitigation.detectors import LogitAnomalyDetector, output_structure_flags
from repro.mitigation.ranger import LayerRange, RangeRestrictor
from repro.mitigation.selective import SelectiveProtection, router_layers
from repro.mitigation.weight_guard import Anomaly, WeightGuard

__all__ = [
    "Anomaly",
    "LayerRange",
    "LogitAnomalyDetector",
    "RangeRestrictor",
    "SelectiveProtection",
    "WeightGuard",
    "output_structure_flags",
    "router_layers",
]
