"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-models``
    Show the zoo roster, parameter counts and cache status.
``build [NAME ...] [--all]``
    Train-and-cache zoo models (everything the experiments need).
``eval MODEL TASK [--examples N] [--beams K]``
    Fault-free evaluation of one model on one task.
``campaign MODEL TASK FAULT [--trials N ...]``
    One statistical fault-injection campaign; prints normalized
    performance with 95% CIs and the SDC breakdown.  Durable execution
    via ``--checkpoint PATH`` (trial-granular JSONL journal),
    ``--resume`` (skip already-journalled trials; bit-identical to an
    uninterrupted run), ``--trial-timeout SECONDS`` and ``--retries N``
    (crashing trials retry, then quarantine as ``FAILED``).
    ``--draft-model NAME --spec-depth GAMMA`` speculatively decodes
    fault-free generative baselines with a small draft model (injected
    trials keep the exact serial path).
``serve MODEL [--rps R ...] [--duration S]``
    Run the multi-tenant streaming inference server under an open-loop
    Poisson load sweep (mixed gsm8k/wmt16/xlsum/squadv2 prompt shapes);
    prints per-point throughput and p50/p99 TTFT / end-to-end latency
    after a served-vs-serial token-identity gate.  ``--draft-model NAME
    --spec-depth GAMMA`` serves batched-speculative rounds (the gate
    then covers the composed path too).
``experiment ID [...]``
    Reproduce one paper table/figure (e.g. ``fig17``, ``table2``).
``obs report RUN.jsonl [RUN2.jsonl ...]``
    Summarize telemetry runs written by ``--trace``/``--metrics-out``;
    several runs add a side-by-side counter/histogram diff.
``obs explain RUN.jsonl [TRIAL]``
    Render a trial's fault-propagation story from a flight-recorded
    run (``campaign --flight``).
``obs export-trace RUN.jsonl [-o trace.json]``
    Convert a run to Chrome trace-event JSON (Perfetto-loadable).
``obs watch CHECKPOINT.jsonl``
    Live progress view over a running campaign's trial journal.

The run commands (``build``/``eval``/``campaign``/``experiment``) accept
``--trace`` to record spans and metrics and ``--metrics-out PATH`` to
choose where the JSONL run (manifest first line) is written; ``--trace``
alone defaults to ``artifacts/runs/<command>.jsonl``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.fi.fault_models import FaultModel
from repro.harness import ExperimentContext, format_table
from repro.harness import experiments as _experiments
from repro.zoo import ZOO, cache_path, load_model, zoo_names

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": _experiments.table1_workloads,
    "table2": _experiments.table2_formats,
    "fig03": _experiments.fig03_overall,
    "fig04": _experiments.fig04_fault_models,
    "fig05": _experiments.fig05_memory_propagation,
    "fig06": _experiments.fig06_computational_propagation,
    "fig07": _experiments.fig07_output_examples,
    "fig08": _experiments.fig08_sdc_breakdown,
    "fig09": _experiments.fig09_bit_positions_subtle,
    "fig10": _experiments.fig10_bit_positions_distorted,
    "fig11": _experiments.fig11_per_task,
    "fig13": _experiments.fig13_weight_distributions,
    "fig14": _experiments.fig14_moe_vs_dense,
    "fig15": _experiments.fig15_gate_faults,
    "fig16": _experiments.fig16_model_scale,
    "fig17": _experiments.fig17_quantization,
    "fig18": _experiments.fig18_beam_vs_greedy,
    "fig19": _experiments.fig19_beam_tradeoff,
    "fig20": _experiments.fig20_chain_of_thought,
    "fig21": _experiments.fig21_dtypes,
}


def _workers_arg(value: str) -> int:
    """``--workers`` parser: an int, or ``auto`` for one per core."""
    if value.strip().lower() == "auto":
        return os.cpu_count() or 1
    try:
        return int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--workers expects an integer or 'auto', got {value!r}"
        ) from exc


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record tracing spans and metrics for this run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the telemetry run JSONL here (implies --trace)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end LLM inference resilience study (SC'25 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="show the zoo roster and cache status")

    build = sub.add_parser("build", help="train-and-cache zoo models")
    build.add_argument("names", nargs="*", help="model names (default: none)")
    build.add_argument("--all", action="store_true", help="build every model")
    _add_obs_flags(build)

    evaluate = sub.add_parser("eval", help="fault-free model evaluation")
    evaluate.add_argument("model", choices=zoo_names())
    evaluate.add_argument("task")
    evaluate.add_argument("--examples", type=int, default=20)
    evaluate.add_argument("--beams", type=int, default=1)
    _add_obs_flags(evaluate)

    campaign = sub.add_parser("campaign", help="one fault-injection campaign")
    campaign.add_argument("model", choices=zoo_names())
    campaign.add_argument("task")
    campaign.add_argument(
        "fault", choices=[fm.value for fm in FaultModel.extended()]
    )
    campaign.add_argument("--trials", type=int, default=100)
    campaign.add_argument("--examples", type=int, default=12)
    campaign.add_argument("--policy", default="bf16")
    campaign.add_argument("--beams", type=int, default=1)
    campaign.add_argument(
        "--draft-model",
        choices=zoo_names(),
        default=None,
        help="zoo model drafting for speculative greedy decoding of"
        " fault-free baselines (injected trials stay serial)",
    )
    campaign.add_argument(
        "--spec-depth",
        type=int,
        default=4,
        metavar="GAMMA",
        help="draft tokens proposed per speculative verify round",
    )
    campaign.add_argument(
        "--spec-fault-side",
        choices=["draft", "target"],
        default=None,
        help="inject into this engine of a speculative decoder instead"
        " of plain decoding (requires --draft-model; draft-side faults"
        " measure verification masking)",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--workers",
        type=_workers_arg,
        default=0,
        metavar="N|auto",
        help="persistent-pool size (0 = serial; 'auto' = one per core)",
    )
    campaign.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal completed trials to this JSONL file",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted campaign from --checkpoint",
    )
    campaign.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon (and retry) any trial exceeding this wall clock",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries before a crashing trial is quarantined as FAILED",
    )
    campaign.add_argument(
        "--flight",
        action="store_true",
        help="arm the per-trial flight recorder (forensic propagation"
        " records in the telemetry run; implies --trace)",
    )
    _add_obs_flags(campaign)

    serve = sub.add_parser(
        "serve",
        help="run the streaming inference server under a Poisson load"
        " sweep and print SLO statistics",
    )
    serve.add_argument("model", choices=zoo_names())
    serve.add_argument(
        "--rps",
        type=float,
        nargs="+",
        default=[4.0],
        metavar="R",
        help="offered load point(s) in requests/sec (several: a sweep)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="submission window per offered-load point",
    )
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument(
        "--per-task",
        type=int,
        default=4,
        metavar="N",
        help="prompt shapes drawn per generative task"
        " (gsm8k/wmt16/xlsum/squadv2)",
    )
    serve.add_argument(
        "--max-new-tokens",
        type=int,
        default=None,
        help="override per-task token budgets with a fixed budget",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--draft-model",
        choices=zoo_names(),
        default=None,
        help="zoo model drafting for the server's batched-speculative"
        " decode rounds (streams stay token-identical to serial)",
    )
    serve.add_argument(
        "--spec-depth",
        type=int,
        default=4,
        metavar="GAMMA",
        help="draft tokens proposed per speculative verify round",
    )
    serve.add_argument(
        "--skip-equivalence",
        action="store_true",
        help="skip the served-vs-serial token-identity gate before the"
        " load sweep",
    )
    _add_obs_flags(serve)

    experiment = sub.add_parser(
        "experiment", help="reproduce one paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--trials", type=int, default=36)
    experiment.add_argument("--examples", type=int, default=8)
    experiment.add_argument("--seed", type=int, default=20251116)
    _add_obs_flags(experiment)

    obs = sub.add_parser("obs", help="telemetry utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="summarize a telemetry run JSONL"
    )
    report.add_argument(
        "paths",
        nargs="+",
        help="run files to summarize (several: adds a side-by-side diff)",
    )
    explain = obs_sub.add_parser(
        "explain",
        help="render one trial's fault-propagation story from a"
        " flight-recorded run",
    )
    explain.add_argument("run", help="telemetry run JSONL (campaign --flight)")
    explain.add_argument(
        "trial",
        nargs="?",
        type=int,
        default=None,
        help="trial index (omit to list all recorded trials)",
    )
    export_trace = obs_sub.add_parser(
        "export-trace",
        help="convert a telemetry run to Chrome trace-event JSON"
        " (chrome://tracing / Perfetto)",
    )
    export_trace.add_argument("run", help="telemetry run JSONL")
    export_trace.add_argument(
        "-o",
        "--out",
        default=None,
        help="output path (default: <run>.trace.json)",
    )
    watch = obs_sub.add_parser(
        "watch",
        help="live progress view over a running campaign's checkpoint"
        " journal",
    )
    watch.add_argument("journal", help="campaign --checkpoint JSONL path")
    watch.add_argument(
        "--interval", type=float, default=1.0, help="poll period in seconds"
    )
    watch.add_argument(
        "--total",
        type=int,
        default=None,
        help="expected trial count (default: the journal header's)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (scripting/CI)",
    )
    watch.add_argument(
        "--no-clear",
        action="store_true",
        help="append snapshots instead of clearing the screen",
    )
    return parser


# ----------------------------------------------------------------------------
# Telemetry lifecycle around a traced command.
# ----------------------------------------------------------------------------


def _telemetry_start(args: argparse.Namespace) -> None:
    flight = getattr(args, "flight", False)
    if not (
        getattr(args, "trace", False)
        or getattr(args, "metrics_out", None)
        or flight
    ):
        return
    from repro.obs import enable
    from repro.zoo import artifacts_dir

    out = args.metrics_out or (
        artifacts_dir() / "runs" / f"{args.command}.jsonl"
    )
    enable(Path(out))
    if flight:
        from repro.obs.flight import flight_recorder

        flight_recorder().arm()


def _telemetry_finish(args: argparse.Namespace) -> None:
    from repro.obs import telemetry
    from repro.obs.flight import flight_recorder

    tel = telemetry()
    if not tel.active:
        return
    config = {
        k: v
        for k, v in vars(args).items()
        if k not in ("trace", "metrics_out") and not callable(v)
    }
    recorder = flight_recorder()
    flight_records = recorder.drain() if recorder.active else []
    path = tel.flush(
        seed=getattr(args, "seed", None),
        config=config,
        command=args.command,
        extra_records=flight_records,
    )
    recorder.disarm()
    tel.disable()
    if path is not None:
        print(f"telemetry: {path}", file=sys.stderr)
        print(
            f"telemetry: summarize with `python -m repro obs report {path}`",
            file=sys.stderr,
        )
        if flight_records:
            print(
                f"telemetry: {len(flight_records)} flight records —"
                f" inspect with `python -m repro obs explain {path}`",
                file=sys.stderr,
            )


def _cmd_list_models() -> int:
    from repro.model.params import arena_valid
    from repro.zoo import sidecar_path

    print(f"{'name':18s} {'params':>9s} {'kind':12s} {'cached':6s} {'shared':6s}")
    tokenizer_len = None
    from repro.zoo.build import default_tokenizer

    tokenizer_len = len(default_tokenizer())
    for name in zoo_names():
        spec = ZOO[name]
        config = spec.model_config(tokenizer_len)
        kind = "moe" if config.is_moe else (
            "fine-tuned" if spec.base else "general"
        )
        cached = "yes" if cache_path(name).exists() else "no"
        # "shared" = the mmap arena sidecar exists and is intact; a
        # cached model without one regenerates it on next load.
        shared = "yes" if arena_valid(sidecar_path(name)) else "no"
        print(
            f"{name:18s} {config.n_params():9d} {kind:12s} {cached:6s}"
            f" {shared:6s}"
        )
    return 0


def _cmd_build(names: list[str], build_all: bool) -> int:
    targets = zoo_names() if build_all else names
    if not targets:
        print("nothing to build: pass model names or --all", file=sys.stderr)
        return 2
    for name in targets:
        store = load_model(name)
        print(f"{name}: ready ({store.n_params()} params)")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.fi.campaign import FICampaign
    from repro.harness.context import ExperimentContext

    ctx = ExperimentContext(n_examples=args.examples)
    task = ctx.task(args.task)
    campaign = FICampaign(
        engine=ctx.engine(args.model),
        tokenizer=ctx.tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=ctx.examples(args.task),
        fault_model=FaultModel.MEM_2BIT,  # unused: baseline only
        generation=ctx.generation(task, num_beams=args.beams),
    )
    for metric, value in campaign.compute_baseline().items():
        print(f"{metric:12s} {value:8.3f}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.fi.campaign import FICampaign

    ctx = ExperimentContext(n_examples=args.examples, seed=args.seed)
    task = ctx.task(args.task)
    campaign = FICampaign(
        engine=ctx.engine(args.model, args.policy),
        tokenizer=ctx.tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=ctx.examples(args.task),
        fault_model=FaultModel(args.fault),
        seed=args.seed,
        generation=ctx.generation(task, num_beams=args.beams),
        draft_model=(
            ctx.engine(args.draft_model, args.policy)
            if args.draft_model
            else None
        ),
        speculation_depth=args.spec_depth,
        spec_fault_side=args.spec_fault_side,
    )
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    result = campaign.run(
        args.trials,
        n_workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        trial_timeout=args.trial_timeout,
        max_retries=args.retries,
    )
    from repro.harness.results import format_campaign
    from repro.obs import telemetry

    tel = telemetry()
    print(f"model={args.model} policy={args.policy}")
    print(format_campaign(result))
    if args.spec_fault_side is not None:
        from repro.fi.analysis import speculation_masking

        for side, row in sorted(speculation_masking(result).items()):
            print(
                f"masking[{side}]: {row['masked']}/{row['fired']} fired"
                f" trials masked (rate={row['masking_rate']:.3f},"
                f" sdc={row['sdc']}, trials={row['trials']})"
            )
            tel.record("campaign_masking", side=side, **row)
    for metric in result.baseline:
        ci = result.normalized[metric]
        tel.record(
            "campaign_metric",
            metric=metric,
            baseline=result.baseline[metric],
            faulty=result.faulty[metric],
            normalized=ci.ratio,
            ci_low=ci.lower,
            ci_high=ci.upper,
        )
    breakdown = result.sdc_breakdown()
    tel.record(
        "campaign_summary",
        model=args.model,
        task=args.task,
        fault=args.fault,
        policy=args.policy,
        trials=result.n_trials,
        sdc_rate=result.sdc_rate,
        quarantined=result.quarantined,
        **breakdown,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.generation.decode import GenerationConfig
    from repro.harness.context import ExperimentContext
    from repro.obs import telemetry
    from repro.serve import InferenceServer
    from repro.serve.loadgen import equivalence_gate, mixed_task_prompts, run_load

    ctx = ExperimentContext(seed=args.seed)
    engine = ctx.engine(args.model)
    prompts = mixed_task_prompts(
        world=ctx.world, tokenizer=ctx.tokenizer, per_task=args.per_task
    )
    if args.max_new_tokens is not None:
        from dataclasses import replace as _replace

        prompts = [
            _replace(p, max_new=args.max_new_tokens) for p in prompts
        ]
    config = GenerationConfig(
        max_new_tokens=max(p.max_new for p in prompts),
        eos_id=ctx.tokenizer.vocab.eos_id,
    )
    draft = ctx.engine(args.draft_model) if args.draft_model else None
    if not args.skip_equivalence:
        checked = equivalence_gate(
            engine, config, prompts, max_batch=args.max_batch,
            draft=draft, speculation_depth=args.spec_depth,
        )
        print(f"equivalence gate: {checked} prompts served token-identical"
              f" to serial greedy_decode")
    tel = telemetry()
    header = (f"{'rps':>8s} {'done':>6s} {'shed':>5s} {'tok/s':>8s}"
              f" {'ttft p50':>9s} {'ttft p99':>9s} {'e2e p50':>9s}"
              f" {'e2e p99':>9s}")
    print(header)
    for rps in args.rps:
        with InferenceServer(
            engine, config, max_batch=args.max_batch,
            draft=draft, speculation_depth=args.spec_depth,
        ) as srv:
            report = run_load(
                srv,
                prompts,
                offered_rps=rps,
                duration_s=args.duration,
                seed=args.seed,
            )
        print(
            f"{report.offered_rps:8.2f} {report.completed:6d}"
            f" {report.rejected:5d} {report.throughput_tps:8.1f}"
            f" {report.ttft_ms['p50']:8.1f}ms {report.ttft_ms['p99']:8.1f}ms"
            f" {report.latency_ms['p50']:8.1f}ms"
            f" {report.latency_ms['p99']:8.1f}ms"
        )
        tel.record("serve_load_point", **report.to_dict())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.obs import telemetry

    ctx = ExperimentContext(
        n_examples=args.examples, n_trials=args.trials, seed=args.seed
    )
    tel = telemetry()
    with tel.span(f"experiment.{args.id}"):
        result = _EXPERIMENTS[args.id](ctx)
    print(format_table(result))
    for row in result.rows:
        tel.record("experiment_row", experiment=result.experiment_id, **row)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        from repro.obs.report import main as report_main

        return report_main(args.paths)
    if args.obs_command == "explain":
        from repro.obs.flight import main as explain_main

        argv = [args.run] + ([str(args.trial)] if args.trial is not None else [])
        return explain_main(argv)
    if args.obs_command == "export-trace":
        from repro.obs.traceview import main as trace_main

        return trace_main(args.run, args.out)
    if args.obs_command == "watch":
        from repro.obs.watch import main as watch_main

        return watch_main(
            args.journal,
            interval=args.interval,
            total=args.total,
            once=args.once,
            no_clear=args.no_clear,
        )
    raise AssertionError(f"unhandled obs command {args.obs_command}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-models":
        return _cmd_list_models()
    if args.command == "obs":
        return _cmd_obs(args)
    _telemetry_start(args)
    try:
        if args.command == "build":
            return _cmd_build(args.names, args.all)
        if args.command == "eval":
            return _cmd_eval(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
    finally:
        _telemetry_finish(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())
