"""Decoding strategies: greedy / beam search / option scoring."""

from repro.generation.decode import (
    GenerationConfig,
    beam_search_decode,
    choose_option,
    generate_ids,
    greedy_decode,
    score_continuation,
    score_options,
)

__all__ = [
    "GenerationConfig",
    "beam_search_decode",
    "choose_option",
    "generate_ids",
    "greedy_decode",
    "score_continuation",
    "score_options",
]
