"""Decoding strategies: greedy / beam search / option scoring /
continuous batching."""

from repro.generation.batched import BatchedDecoder, decode_batching_safe
from repro.generation.decode import (
    GenerationConfig,
    beam_search_decode,
    choose_option,
    generate_ids,
    greedy_decode,
    score_continuation,
    score_options,
)

__all__ = [
    "BatchedDecoder",
    "GenerationConfig",
    "beam_search_decode",
    "choose_option",
    "decode_batching_safe",
    "generate_ids",
    "greedy_decode",
    "score_continuation",
    "score_options",
]
