"""Decoding strategies: greedy / beam search / option scoring /
continuous batching / speculative draft-and-verify."""

from repro.generation.batched import BatchedDecoder, decode_batching_safe
from repro.generation.decode import (
    GenerationConfig,
    beam_search_decode,
    choose_option,
    generate_ids,
    greedy_decode,
    score_continuation,
    score_options,
)
from repro.generation.spec_batched import BatchedSpeculativeDecoder
from repro.generation.speculative import (
    SpeculativeDecoder,
    decode_speculation_safe,
)

__all__ = [
    "BatchedDecoder",
    "BatchedSpeculativeDecoder",
    "GenerationConfig",
    "SpeculativeDecoder",
    "beam_search_decode",
    "choose_option",
    "decode_batching_safe",
    "decode_speculation_safe",
    "generate_ids",
    "greedy_decode",
    "score_continuation",
    "score_options",
]
