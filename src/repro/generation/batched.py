"""Continuous-batched generative decoding over a pooled KV cache.

The paper's generative campaigns (GSM8k, WMT16, XLSum, SQuAD v2,
§3.3.4) decode one sequence at a time; every trial and every baseline
pays the full per-token Python/dispatch overhead per sequence.
:class:`BatchedDecoder` amortizes it the way production inference
engines do:

* **Continuous batching** — up to ``max_batch`` prompts decode
  together, one :meth:`~repro.inference.engine.InferenceEngine.forward_step_batch`
  per token for the whole batch; a sequence that hits EOS or its length
  limit retires immediately and its slot is back-filled from the
  pending queue, so the batch stays full instead of draining to the
  slowest sequence.
* **Pooled KV cache** — sequences decode out of
  :class:`~repro.inference.kvcache.PooledKVCache` slot rows, so
  admissions and refills allocate nothing, and beam forks are bounded
  prefix copies inside the arena instead of fresh full-size caches.
* **Batched beam search** — the ``k`` beams of one example run as batch
  rows sharing the prompt prefix via copy-on-fork
  (:meth:`PooledKVCache.copy_slot`), replacing per-beam
  ``Session.fork`` deep copies.

**FI-safety gate** (:func:`decode_batching_safe`): batching changes
tensor shapes only in ways hooks can observe per row, so it stays
enabled under armed *row-scoped* fault hooks (the one-shot
computational injectors) — each hook invocation receives one row's
``(1, features)`` slice and corrupts exactly one sequence.  Unscoped
hooks (detectors, probes), armed weight faults and activation capture
force the exact serial reference path, mirroring PR 2's option-scoring
gate.  ``B == 1`` batched decoding is bit-identical to the serial path
by construction (same-shaped operations throughout); ``B > 1`` agrees
up to float associativity and is asserted identical at the
decoded-token level by the equivalence tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.functional import log_softmax_np
from repro.generation.decode import GenerationConfig
from repro.inference.engine import InferenceEngine, Session
from repro.inference.kvcache import KVCache, PooledKVCache
from repro.obs.runtime import telemetry as _telemetry

__all__ = ["BatchedDecoder", "decode_batching_safe"]


def decode_batching_safe(engine: InferenceEngine) -> bool:
    """Whether batched decoding preserves exact fault/capture semantics.

    True when nothing is armed, or when every armed fault scopes itself
    to a single sequence under batching:

    * *row-scoped hooks* (the one-shot computational injectors) — per-row
      hook application observes the exact serial tensor shapes and
      corrupts exactly one sequence;
    * *KV faults* — sequence-scoped by cache identity: the strike lands
      in one sequence's own cache row (the batched step appends per row
      to per-row caches, and the injector latches on the first append
      reaching its iteration — the same sequence the serial loop would
      strike), and corruption in one slot's K/V is never read by any
      other row's attention;
    * *accumulator faults* — applied per flattened GEMM row with per-row
      iteration matching, so the one-shot strike corrupts exactly one
      sequence's output element.

    Weight faults and activation capture always force the serial path —
    corrupted weights amplify float-associativity differences, and
    capture records per-sequence tensors.  For ``B == 1`` every batched
    operation is shape-identical to serial, so armed KV/accumulator
    faults produce bit-identical trial records either way.
    """
    if engine.capture is not None:
        return False
    if engine.weight_fault_depth > 0:
        return False
    if len(engine.hooks) == 0:
        return True
    return engine.hooks.all_row_scoped()


def _pick(logits: np.ndarray) -> int:
    """NaN-safe argmax, identical to the serial greedy rule."""
    try:
        return int(np.nanargmax(logits))
    except ValueError:  # all-NaN logits
        return 0


def _normalized(tokens: list[int], score: float, length_penalty: float) -> float:
    length = max(1, len(tokens))
    return score / length**length_penalty


@dataclass
class _Seq:
    """One active greedy sequence (a pool slot's occupant)."""

    index: int
    slot: int | None
    caches: list[KVCache]
    position: int
    iteration: int
    last_token: int
    out: list[int] = field(default_factory=list)


@dataclass
class _BeamRow:
    """One beam hypothesis backed by a pool slot (``None`` once finished)."""

    slot: int | None
    tokens: list[int]
    score: float
    finished: bool
    logits: np.ndarray | None
    position: int
    iteration: int


class BatchedDecoder:
    """Continuous-batching decode scheduler over a pooled KV cache.

    One decoder owns one arena; reuse it across calls (campaigns keep
    one per run) so admissions never allocate.  All entry points fall
    back to the exact serial reference path whenever
    :func:`decode_batching_safe` says batching could change results.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: GenerationConfig,
        max_batch: int = 8,
        pool: PooledKVCache | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.config = config
        self.max_batch = max_batch
        self._pool = pool

    def _ensure_pool(self, n_slots: int) -> PooledKVCache:
        if self._pool is None or self._pool.n_slots < n_slots:
            self._pool = self.engine.new_pool(n_slots)
        return self._pool

    # -- entry points ----------------------------------------------------------

    def generate_many(
        self,
        prompts: list[list[int]],
        sessions: "list[Session | None] | None" = None,
    ) -> list[list[int]]:
        """Decode every prompt with the configured strategy.

        Greedy configs run the continuous-batching scheduler across
        prompts; beam configs run one batched beam search per prompt
        (the beams are the batch).  ``sessions`` optionally supplies
        already-prefilled sessions (consumed) aligned with ``prompts``.
        """
        if sessions is None:
            sessions = [None] * len(prompts)
        if len(sessions) != len(prompts):
            raise ValueError("sessions must align with prompts")
        if self.config.num_beams > 1:
            return [
                self.beam_decode(p, session=s) for p, s in zip(prompts, sessions)
            ]
        return self.decode_many(prompts, sessions=sessions)

    def decode_one(
        self, prompt_ids: list[int], session: Session | None = None
    ) -> list[int]:
        """Single-sequence greedy decode through the batched machinery."""
        return self.decode_many([prompt_ids], sessions=[session])[0]

    # -- greedy continuous batching --------------------------------------------

    def decode_many(
        self,
        prompts: list[list[int]],
        sessions: "list[Session | None] | None" = None,
    ) -> list[list[int]]:
        """Greedy-decode many prompts with continuous batching.

        Sequences are admitted up to ``max_batch``, stepped as one
        batched forward per token, retired on EOS/length, and retired
        slots are immediately back-filled from the pending queue.
        Per-sequence outputs are identical to serial ``greedy_decode``
        (bit-identical at ``B == 1``; argmax-identical above).
        """
        if sessions is None:
            sessions = [None] * len(prompts)
        if len(sessions) != len(prompts):
            raise ValueError("sessions must align with prompts")
        if not decode_batching_safe(self.engine):
            from repro.generation.decode import greedy_decode

            return [
                greedy_decode(self.engine, p, self.config, session=s,
                              strategy="serial")
                for p, s in zip(prompts, sessions)
            ]
        tel = _telemetry()
        if not tel.active:
            return self._decode_many_impl(prompts, sessions, tel)
        with tel.span(
            "decode.batch",
            prompts=len(prompts),
            max_batch=self.max_batch,
        ) as span:
            results = self._decode_many_impl(prompts, sessions, tel)
            span.set(new_tokens=sum(len(r) for r in results))
        return results

    def _decode_many_impl(
        self, prompts: list[list[int]], sessions: list, tel
    ) -> list[list[int]]:
        engine = self.engine
        eos = self.config.eos_id
        max_new = self.config.max_new_tokens
        results: list[list[int]] = [[] for _ in prompts]
        pending: deque[int] = deque(range(len(prompts)))
        pool = self._ensure_pool(min(self.max_batch, max(1, len(prompts))))
        active: list[_Seq] = []
        traced = tel.active

        def finish(seq: _Seq) -> None:
            results[seq.index] = seq.out
            if seq.slot is not None:
                pool.release(seq.slot)
            if traced:
                # Real admissible capacity, *after* the eager release —
                # the serving loop admits against this gauge.
                tel.metrics.gauge("decode.free_slots").set(pool.n_free)

        def admit(refill: bool) -> None:
            """Prefill the next pending prompt into a free slot; may
            retire it immediately (EOS-first or 1-token budgets)."""
            idx = pending.popleft()
            session = sessions[idx]
            if session is not None:
                seq = _Seq(
                    index=idx,
                    slot=None,
                    caches=session.caches,
                    position=session.position,
                    iteration=session.iteration,
                    last_token=-1,
                )
                logits = session.last_logits
            else:
                prompt = prompts[idx]
                if not prompt:
                    raise ValueError("prompt must contain at least one token")
                slot = pool.acquire()
                caches = pool.caches(slot)
                logits = engine.forward(
                    prompt, caches, start_pos=0, iteration=0
                )[-1]
                seq = _Seq(
                    index=idx,
                    slot=slot,
                    caches=caches,
                    position=len(prompt),
                    iteration=0,
                    last_token=-1,
                )
            if traced and refill:
                tel.metrics.counter("decode.slot_refills").add()
            token = _pick(logits)
            if token == eos:
                finish(seq)
                return
            seq.out.append(token)
            if len(seq.out) >= max_new:
                finish(seq)
                return
            seq.last_token = token
            active.append(seq)

        def fill(refill: bool) -> None:
            while pending and len(active) < self.max_batch:
                admit(refill)
            if traced:
                tel.metrics.gauge("decode.free_slots").set(pool.n_free)

        fill(refill=False)
        while active:
            if traced:
                tel.metrics.histogram("decode.batch_occupancy").observe(
                    len(active)
                )
            logits = engine.forward_step_batch(
                [seq.last_token for seq in active],
                [seq.caches for seq in active],
                [seq.position for seq in active],
                [seq.iteration + 1 for seq in active],
            )
            still: list[_Seq] = []
            for i, seq in enumerate(active):
                seq.iteration += 1
                seq.position += 1
                token = _pick(logits[i])
                if token == eos:
                    finish(seq)
                    continue
                seq.out.append(token)
                if len(seq.out) >= max_new:
                    # The serial loop would run one final forward whose
                    # logits are discarded; skip it — fault sites are
                    # sampled strictly below max_new_tokens, so no
                    # injection can target the skipped step.
                    finish(seq)
                    continue
                seq.last_token = token
                still.append(seq)
            active = still
            fill(refill=True)
        return results

    # -- batched beam search ---------------------------------------------------

    def beam_decode(
        self, prompt_ids: list[int], session: Session | None = None
    ) -> list[int]:
        """Beam search with the ``k`` beams as batch rows.

        Mirrors the serial algorithm decision-for-decision (same
        candidate scores, same sort, same lazy-fork rule) but steps all
        unfinished beams in one batched forward and forks via bounded
        prefix copies inside the pool instead of full cache clones.
        """
        if not decode_batching_safe(self.engine):
            from repro.generation.decode import beam_search_decode

            return beam_search_decode(
                self.engine, prompt_ids, self.config, session=session,
                strategy="serial",
            )
        k = self.config.num_beams
        pool = self._ensure_pool(max(2 * k, 1))
        tel = _telemetry()
        owned: set[int] = set()

        def acquire() -> int:
            slot = pool.acquire()
            owned.add(slot)
            return slot

        def release(slot: int) -> None:
            owned.discard(slot)
            pool.release(slot)

        try:
            return self._beam_decode_impl(
                prompt_ids, session, k, pool, acquire, release, tel
            )
        finally:
            for slot in list(owned):
                pool.release(slot)

    def _beam_decode_impl(
        self, prompt_ids, session, k, pool, acquire, release, tel
    ) -> list[int]:
        engine = self.engine
        config = self.config
        root_slot = acquire()
        if session is not None:
            pool.load(root_slot, session.caches)
            root = _BeamRow(
                slot=root_slot,
                tokens=[],
                score=0.0,
                finished=False,
                logits=session.last_logits,
                position=session.position,
                iteration=session.iteration,
            )
        else:
            caches = pool.caches(root_slot)
            logits = engine.forward(
                prompt_ids, caches, start_pos=0, iteration=0
            )[-1]
            root = _BeamRow(
                slot=root_slot,
                tokens=[],
                score=0.0,
                finished=False,
                logits=logits,
                position=len(prompt_ids),
                iteration=0,
            )
        prompt_len = root.position
        beams = [root]
        for _ in range(config.max_new_tokens):
            if all(b.finished for b in beams):
                break
            candidates: list[tuple[float, _BeamRow, int, float]] = []
            for beam in beams:
                if beam.finished:
                    candidates.append(
                        (
                            _normalized(
                                beam.tokens, beam.score, config.length_penalty
                            ),
                            beam,
                            -1,
                            beam.score,
                        )
                    )
                    continue
                logp = log_softmax_np(
                    np.nan_to_num(
                        beam.logits, nan=-1e9, posinf=1e9, neginf=-1e9
                    )
                )
                top = np.argpartition(logp, -k)[-k:]
                for token in top:
                    score = beam.score + float(logp[token])
                    length = max(1, len(beam.tokens) + 1)
                    candidates.append(
                        (score / length**config.length_penalty, beam,
                         int(token), score)
                    )
            candidates.sort(key=lambda c: c[0], reverse=True)
            next_beams: list[_BeamRow] = []
            reused: set[int] = set()
            for _norm, beam, token, raw_score in candidates:
                if len(next_beams) == k:
                    break
                if token == -1:
                    next_beams.append(beam)
                    continue
                if token == config.eos_id:
                    # EOS terminates, not emitted — finished beams never
                    # step again, so they drop their cache row.
                    next_beams.append(
                        _BeamRow(
                            slot=None,
                            tokens=beam.tokens,
                            score=raw_score,
                            finished=True,
                            logits=None,
                            position=beam.position,
                            iteration=beam.iteration,
                        )
                    )
                    continue
                # Copy-on-fork: the first stepping extension of a beam
                # inherits its slot; later ones copy the filled prefix
                # into a fresh slot (bounded copy, no allocation).
                if id(beam) not in reused:
                    reused.add(id(beam))
                    slot = beam.slot
                else:
                    slot = acquire()
                    pool.copy_slot(beam.slot, slot)
                next_beams.append(
                    _BeamRow(
                        slot=slot,
                        tokens=[*beam.tokens, token],
                        score=raw_score,
                        finished=False,
                        logits=None,
                        position=beam.position,
                        iteration=beam.iteration,
                    )
                )
            # Release slots of beams that no surviving hypothesis kept.
            kept = {b.slot for b in next_beams if b.slot is not None}
            for beam in beams:
                if beam.slot is not None and beam.slot not in kept:
                    release(beam.slot)
            beams = next_beams
            # One batched forward advances every beam that gained a
            # token (the serial loop steps them one session at a time).
            step_rows = [
                b
                for b in beams
                if not b.finished
                and b.tokens
                and b.position == prompt_len + len(b.tokens) - 1
            ]
            if step_rows:
                if tel.active:
                    tel.metrics.histogram("decode.batch_occupancy").observe(
                        len(step_rows)
                    )
                logits = engine.forward_step_batch(
                    [b.tokens[-1] for b in step_rows],
                    [pool.caches(b.slot) for b in step_rows],
                    [b.position for b in step_rows],
                    [b.iteration + 1 for b in step_rows],
                )
                for i, b in enumerate(step_rows):
                    b.logits = logits[i]
                    b.position += 1
                    b.iteration += 1
        best = max(
            beams,
            key=lambda b: _normalized(b.tokens, b.score, config.length_penalty),
        )
        return best.tokens
