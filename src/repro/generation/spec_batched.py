"""Batched speculative decoding: draft-and-verify × continuous batching.

The repo's two biggest decode speedups were mutually exclusive:
:class:`~repro.generation.speculative.SpeculativeDecoder` cuts target
forwards per sequence but runs one sequence at a time (BENCH_spec.json:
1.69× vs serial, **0.68× vs batched**), while
:class:`~repro.generation.batched.BatchedDecoder` amortizes dispatch
across sequences but still pays one target forward per token.
:class:`BatchedSpeculativeDecoder` composes them so the speedups
multiply instead of competing:

* each round the **draft** engine proposes up to ``gamma`` tokens for
  all live rows at once — a grouped
  :meth:`~repro.inference.engine.InferenceEngine.forward_chunk_batch`
  catch-up plus ``gamma - 1``
  :meth:`~repro.inference.engine.InferenceEngine.forward_step_batch`
  steps over the draft's own :class:`~repro.inference.kvcache.PooledKVCache`;
* the **target** verifies every row's proposal chunk in one batched
  ``forward_chunk_batch`` per distinct chunk length (rows are ragged —
  budgets differ — so chunks are grouped by length rather than padded);
* per-row accepted prefixes commit and rejects roll back via per-slot
  :meth:`~repro.inference.kvcache.KVCache.truncate` on the pooled slot
  views — which fires the cache's truncation watchers, so a pinned
  KV-fault injector restores its flipped bits and re-arms exactly as it
  does under serial speculative rollback;
* ragged accept lengths retire rows at round granularity and back-fill
  freed slots from the pending queue (continuous batching at the round
  level).

**Equivalence contract**: every emitted token is an argmax of *target*
logits over the true emitted prefix, so the composed schedule can never
change which tokens are greedy-optimal — outputs are token-identical to
serial ``greedy_decode`` (bit-identical logits at batch width 1, argmax-
identical above, the same float-associativity contract as the batched
decoder).  At batch width 1 the round schedule reduces exactly to
:class:`~repro.generation.speculative.SpeculativeDecoder`.

**FI-safety gate matrix** (:meth:`BatchedSpeculativeDecoder.decode_many`):

================================  ==========================  ============
armed machinery                   speculation × batching      decode path
================================  ==========================  ============
nothing / observer-only hooks     safe × safe                 composed
row-scoped computational hooks    unsafe × safe               batched
sequence-scoped kv / acc faults   unsafe × safe               batched
capture / weight faults           unsafe × unsafe             serial
non-row-scoped hooks              unsafe × unsafe             serial
================================  ==========================  ============

Speculation is gated strictly (:func:`decode_speculation_safe` — a
verify chunk covers several generation iterations under one scalar tag,
so anything iteration-pinned would mis-fire), while batching admits
row-scoped hooks and sequence-scoped kv/acc faults
(:func:`decode_batching_safe`).  The ``spec_fault_side`` studies, which
*want* faults inside the speculative schedule, keep bypassing the gate
through the serial decoder's ``decode_one(force=True)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.generation.batched import BatchedDecoder, decode_batching_safe
from repro.generation.decode import GenerationConfig
from repro.generation.speculative import _pick, decode_speculation_safe
from repro.inference.engine import InferenceEngine, Session
from repro.inference.kvcache import KVCache, PooledKVCache
from repro.obs.runtime import telemetry as _telemetry

__all__ = ["BatchedSpeculativeDecoder"]


@dataclass
class _SpecRow:
    """One live sequence: target + draft slot state for the round loop."""

    index: int
    slot: int | None
    caches: list[KVCache]
    d_slot: int
    d_caches: list[KVCache]
    d_len: int
    prompt_len: int
    out: list[int] = field(default_factory=list)


class BatchedSpeculativeDecoder:
    """Greedy draft-and-verify decoding over a continuous batch.

    Same output contract as ``greedy_decode`` per prompt; rows share
    pooled KV arenas on both the target and draft side and advance in
    lockstep rounds whose per-row accept lengths are ragged.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        draft: InferenceEngine,
        config: GenerationConfig,
        speculation_depth: int = 4,
        max_batch: int = 8,
        pool: PooledKVCache | None = None,
        draft_pool: PooledKVCache | None = None,
    ) -> None:
        if speculation_depth < 1:
            raise ValueError("speculation_depth must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if draft.config.vocab_size != engine.config.vocab_size:
            raise ValueError(
                "draft/target vocabulary mismatch:"
                f" draft has {draft.config.vocab_size} tokens,"
                f" target has {engine.config.vocab_size};"
                " speculative decoding needs a same-tokenizer pair"
            )
        self.engine = engine
        self.draft = draft
        self.config = config
        self.depth = speculation_depth
        self.max_batch = max_batch
        self._pool = pool
        self._draft_pool = draft_pool

    # -- pools ------------------------------------------------------------------

    def _pools(self, width: int) -> tuple[PooledKVCache, PooledKVCache]:
        if self._pool is None or self._pool.n_slots < width:
            self._pool = self.engine.new_pool(width)
        if self._draft_pool is None or self._draft_pool.n_slots < width:
            self._draft_pool = self.draft.new_pool(width)
        return self._pool, self._draft_pool

    # -- public API -------------------------------------------------------------

    def decode_many(
        self,
        prompts: list[list[int]],
        sessions: "list[Session | None] | None" = None,
    ) -> list[list[int]]:
        """Greedy-decode every prompt; same contract as ``greedy_decode``
        applied prompt-by-prompt.

        ``sessions`` optionally supplies already-prefilled target
        sessions (consumed), aligned with ``prompts``; the draft side
        always prefills into its own pool.  The FI gate matrix picks the
        fastest decode path that preserves exact fault semantics:
        composed batched-speculative when both gates pass, plain
        continuous batching when only batching is safe (row-scoped hooks,
        sequence-scoped kv/acc faults), and the exact serial reference
        loop otherwise.
        """
        if not prompts:
            return []
        if sessions is not None and len(sessions) != len(prompts):
            raise ValueError(
                f"{len(prompts)} prompts but {len(sessions)} sessions"
            )
        if not decode_speculation_safe(self.engine, self.draft):
            if decode_batching_safe(self.engine):
                return BatchedDecoder(
                    self.engine, self.config, max_batch=self.max_batch,
                    pool=self._pool,
                ).decode_many(prompts, sessions=sessions)
            from repro.generation.decode import greedy_decode

            return [
                greedy_decode(
                    self.engine, prompt, self.config,
                    session=None if sessions is None else sessions[i],
                    strategy="serial",
                )
                for i, prompt in enumerate(prompts)
            ]
        tel = _telemetry()
        if not tel.active:
            return self._decode_many_impl(prompts, sessions, tel)
        t0 = time.perf_counter()
        with tel.span(
            "decode.spec_batch",
            depth=self.depth,
            prompts=len(prompts),
            max_batch=self.max_batch,
        ) as span:
            out = self._decode_many_impl(prompts, sessions, tel)
            span.set(new_tokens=sum(len(ids) for ids in out))
        tel.metrics.histogram("decode.spec_batch_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return out

    # -- composed round loop ----------------------------------------------------

    def _decode_many_impl(
        self,
        prompts: list[list[int]],
        sessions: "list[Session | None] | None",
        tel,
    ) -> list[list[int]]:
        engine, draft, config = self.engine, self.draft, self.config
        eos, max_new = config.eos_id, config.max_new_tokens
        results: list[list[int]] = [[] for _ in prompts]
        width = min(self.max_batch, len(prompts))
        pool, d_pool = self._pools(width)
        traced = tel.active
        pending = list(range(len(prompts)))
        pending.reverse()  # pop() admits in prompt order
        active: list[_SpecRow] = []

        def finish(row: _SpecRow) -> None:
            results[row.index] = row.out
            if row.slot is not None:
                pool.release(row.slot)
            d_pool.release(row.d_slot)
            if traced:
                # Real admissible capacity, *after* the eager release.
                tel.metrics.gauge("decode.free_slots").set(pool.n_free)

        def admit(refill: bool) -> None:
            """Prefill pending prompts into free slots (both sides).

            EOS-as-first-token and one-token budgets retire before the
            draft side is ever touched — such a row never joins a round.
            """
            while pending and len(active) < width and d_pool.n_free > 0:
                index = pending.pop()
                if traced and refill:
                    tel.metrics.counter("decode.slot_refills").add()
                prompt = prompts[index]
                session = None if sessions is None else sessions[index]
                if session is not None:
                    slot, caches = None, session.caches
                    logits = session.last_logits
                else:
                    slot = pool.acquire()
                    caches = pool.caches(slot)
                    logits = engine.forward(
                        prompt, caches, start_pos=0, iteration=0
                    )[-1]
                first = _pick(logits)
                if first == eos:
                    results[index] = []
                    if slot is not None:
                        pool.release(slot)
                    continue
                if max_new == 1:
                    results[index] = [first]
                    if slot is not None:
                        pool.release(slot)
                    continue
                d_slot = d_pool.acquire()
                d_caches = d_pool.caches(d_slot)
                draft.forward(prompt, d_caches, start_pos=0, iteration=0)
                active.append(
                    _SpecRow(
                        index=index,
                        slot=slot,
                        caches=caches,
                        d_slot=d_slot,
                        d_caches=d_caches,
                        d_len=len(prompt),
                        prompt_len=len(prompt),
                        out=[first],
                    )
                )

        admit(refill=False)
        while active:
            if traced:
                tel.metrics.histogram("decode.batch_occupancy").observe(
                    len(active)
                )
            # Same per-row budget rule as the serial round: never
            # propose past the token budget (the chunk emits at most
            # gamma + 1 tokens).
            gammas = [
                min(self.depth, max_new - len(row.out) - 1) for row in active
            ]
            proposals: list[list[int]] = [[] for _ in active]
            prop = [i for i, g in enumerate(gammas) if g > 0]
            d_logits: dict[int, np.ndarray] = {}
            if prop:
                # Draft catch-up on tokens the target emitted since the
                # draft cache was last valid (1–2 per row); feeds are
                # ragged, so group rows by feed length.
                feeds = {
                    i: active[i].out[active[i].d_len - active[i].prompt_len:]
                    for i in prop
                }
                for group in _by_length(prop, lambda i: len(feeds[i])):
                    logits = draft.forward_chunk_batch(
                        [feeds[i] for i in group],
                        [active[i].d_caches for i in group],
                        [active[i].d_len for i in group],
                        [len(active[i].out) for i in group],
                    )
                    for j, i in enumerate(group):
                        d_logits[i] = logits[j][-1]
                        active[i].d_len += len(feeds[i])
                # Propose gamma tokens per row: one draft step batch per
                # depth level, rows dropping out as their gamma is met.
                for step in range(max(gammas)):
                    alive = [i for i in prop if gammas[i] > step]
                    for i in alive:
                        proposals[i].append(_pick(d_logits[i]))
                    feed = [i for i in alive if gammas[i] > step + 1]
                    if feed:
                        logits = draft.forward_step_batch(
                            [proposals[i][-1] for i in feed],
                            [active[i].d_caches for i in feed],
                            [active[i].d_len for i in feed],
                            [len(active[i].out) + step + 1 for i in feed],
                        )
                        for j, i in enumerate(feed):
                            d_logits[i] = logits[j]
                            active[i].d_len += 1
            # Batched verification: one target chunk forward per
            # distinct chunk length (pending token + proposals).
            target_lens = [row.caches[0].length for row in active]
            chunks = [
                [active[i].out[-1], *proposals[i]] for i in range(len(active))
            ]
            v_logits: dict[int, np.ndarray] = {}
            for group in _by_length(
                list(range(len(active))), lambda i: len(chunks[i])
            ):
                logits = engine.forward_chunk_batch(
                    [chunks[i] for i in group],
                    [active[i].caches for i in group],
                    [target_lens[i] for i in group],
                    [len(active[i].out) for i in group],
                )
                for j, i in enumerate(group):
                    v_logits[i] = logits[j]
            # Per-row commit/rollback — the serial accept walk verbatim.
            still: list[_SpecRow] = []
            for i, row in enumerate(active):
                chunk, logits = chunks[i], v_logits[i]
                accepted = 0
                stop = False
                for j in range(len(chunk)):
                    token = _pick(logits[j])
                    if token == eos:
                        stop = True
                        break
                    row.out.append(token)
                    if j < len(proposals[i]) and token == proposals[i][j]:
                        accepted += 1
                        continue
                    break
                if traced:
                    tel.metrics.counter("decode.spec_rounds").add()
                    tel.metrics.counter("decode.spec_rejected").add(
                        gammas[i] - accepted
                    )
                    tel.metrics.histogram("decode.spec_accept_len").observe(
                        accepted
                    )
                # Roll back rejected K/V: per-slot truncation fires the
                # cache watchers, so a pinned KV-fault injector restores
                # and re-arms without touching sibling slots.
                for cache in row.caches:
                    cache.truncate(target_lens[i] + 1 + accepted)
                if stop or len(row.out) >= max_new:
                    finish(row)
                    continue
                keep = row.d_len - max(
                    0, (gammas[i] - 1) - min(accepted, gammas[i] - 1)
                )
                for cache in row.d_caches:
                    cache.truncate(keep)
                row.d_len = keep
                still.append(row)
            active = still
            admit(refill=True)
        return results


def _by_length(indices: list[int], length) -> list[list[int]]:
    """Group ``indices`` by ``length(i)``, preserving order within each
    group (ragged rows become one rectangular engine call per length)."""
    groups: dict[int, list[int]] = {}
    for i in indices:
        groups.setdefault(length(i), []).append(i)
    return list(groups.values())
