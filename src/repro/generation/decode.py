"""Decoding strategies: greedy search, beam search, option scoring.

The paper's generation settings (§3.3.4) use HuggingFace ``generate()``
with sampling disabled; greedy search is ``num_beams=1``.  Beam search
maintains ``num_beams`` candidate sequences ranked by cumulative
(length-normalized) log-probability — the mechanism behind
Observation #9: an isolated corrupted token tanks one hypothesis'
cumulative probability and the search shifts to an unaffected path.

Multiple-choice tasks are scored, not generated: each option is
appended to the prompt and the option tokens' summed log-likelihood
ranks the candidates (§3.3.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.autograd.functional import log_softmax_np
from repro.inference.engine import InferenceEngine, Session
from repro.obs.runtime import telemetry as _telemetry

__all__ = [
    "GenerationConfig",
    "greedy_decode",
    "beam_search_decode",
    "generate_ids",
    "score_continuation",
    "choose_option",
]


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding hyperparameters (mirrors the paper's generate() settings)."""

    max_new_tokens: int = 32
    num_beams: int = 1
    length_penalty: float = 1.0
    eos_id: int = 2

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.num_beams < 1:
            raise ValueError("num_beams must be >= 1")


def greedy_decode(
    engine: InferenceEngine, prompt_ids: list[int], config: GenerationConfig
) -> list[int]:
    """Argmax decoding; returns generated ids (without the prompt/EOS)."""
    session = engine.start_session(prompt_ids)
    out: list[int] = []
    logits = session.last_logits
    for _ in range(config.max_new_tokens):
        # NaN-safe argmax: corrupted runs can produce all-NaN logits,
        # which we map to EOS-free garbage deterministically.
        token = int(np.nanargmax(logits)) if not np.isnan(logits).all() else 0
        if token == config.eos_id:
            break
        out.append(token)
        logits = session.step(token)
    return out


@dataclass
class _Beam:
    session: Session
    tokens: list[int]
    score: float
    finished: bool

    def normalized(self, length_penalty: float) -> float:
        length = max(1, len(self.tokens))
        return self.score / length**length_penalty


def beam_search_decode(
    engine: InferenceEngine, prompt_ids: list[int], config: GenerationConfig
) -> list[int]:
    """Standard beam search with length normalization."""
    k = config.num_beams
    root = engine.start_session(prompt_ids)
    beams = [_Beam(root, [], 0.0, False)]
    for _ in range(config.max_new_tokens):
        candidates: list[tuple[float, _Beam, int, float]] = []
        for beam in beams:
            if beam.finished:
                candidates.append(
                    (beam.normalized(config.length_penalty), beam, -1, beam.score)
                )
                continue
            logp = log_softmax_np(
                np.nan_to_num(
                    beam.session.last_logits, nan=-1e9, posinf=1e9, neginf=-1e9
                )
            )
            top = np.argpartition(logp, -k)[-k:]
            for token in top:
                score = beam.score + float(logp[token])
                length = max(1, len(beam.tokens) + 1)
                candidates.append(
                    (score / length**config.length_penalty, beam, int(token), score)
                )
        candidates.sort(key=lambda c: c[0], reverse=True)
        next_beams: list[_Beam] = []
        forks: dict[int, int] = {}
        for norm_score, beam, token, raw_score in candidates:
            if len(next_beams) == k:
                break
            if token == -1:
                next_beams.append(beam)
                continue
            # Fork lazily: the first extension of a beam reuses its
            # session; later extensions need a cache copy.
            uses = forks.get(id(beam), 0)
            forks[id(beam)] = uses + 1
            session = beam.session if uses == 0 else beam.session.fork()
            new = _Beam(session, [*beam.tokens, token], raw_score, False)
            if token == config.eos_id:
                new.tokens = beam.tokens  # EOS terminates, not emitted
                new.finished = True
            next_beams.append(new)
        # Advance the sessions of unfinished beams that gained a token.
        # (Do it after selection, and handle shared sessions: when one
        # base beam spawned several children the *first* child kept the
        # original session, so it must step before forks are stale.)
        beams = next_beams
        for beam in beams:
            if not beam.finished and beam.tokens:
                if beam.session.position == len(prompt_ids) + len(beam.tokens) - 1:
                    beam.session.step(beam.tokens[-1])
        if all(b.finished for b in beams):
            break
    best = max(beams, key=lambda b: b.normalized(config.length_penalty))
    return best.tokens


def generate_ids(
    engine: InferenceEngine, prompt_ids: list[int], config: GenerationConfig
) -> list[int]:
    """Dispatch to greedy or beam decoding based on ``num_beams``."""
    decode = greedy_decode if config.num_beams == 1 else beam_search_decode
    tel = _telemetry()
    if not tel.active:
        return decode(engine, prompt_ids, config)
    t0 = time.perf_counter()
    with tel.span(
        "decode.generate",
        num_beams=config.num_beams,
        prompt_tokens=len(prompt_ids),
    ) as span:
        out = decode(engine, prompt_ids, config)
        span.set(new_tokens=len(out))
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    metrics = tel.metrics
    metrics.histogram("decode.generate_ms").observe(elapsed_ms)
    metrics.counter("decode.calls").add()
    metrics.counter("decode.tokens").add(len(out))
    return out


def score_continuation(
    engine: InferenceEngine, prompt_ids: list[int], option_ids: list[int]
) -> float:
    """Summed log-likelihood of ``option_ids`` following ``prompt_ids``."""
    if not option_ids:
        raise ValueError("option must contain at least one token")
    full = [*prompt_ids, *option_ids]
    logits = engine.forward_full(full)
    logp = log_softmax_np(
        np.nan_to_num(logits, nan=-1e9, posinf=1e9, neginf=-1e9), axis=-1
    )
    start = len(prompt_ids) - 1
    positions = np.arange(start, start + len(option_ids))
    return float(logp[positions, option_ids].sum())


def choose_option(
    engine: InferenceEngine,
    prompt_ids: list[int],
    options_ids: list[list[int]],
) -> int:
    """Index of the highest-likelihood option (multiple-choice answer)."""
    tel = _telemetry()
    with tel.span(
        "decode.choose_option",
        options=len(options_ids),
        prompt_tokens=len(prompt_ids),
    ):
        scores = [
            score_continuation(engine, prompt_ids, option)
            for option in options_ids
        ]
    if tel.active:
        tel.metrics.counter("decode.option_scores").add(len(options_ids))
    return int(np.argmax(scores))
