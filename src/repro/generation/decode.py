"""Decoding strategies: greedy search, beam search, option scoring.

The paper's generation settings (§3.3.4) use HuggingFace ``generate()``
with sampling disabled; greedy search is ``num_beams=1``.  Beam search
maintains ``num_beams`` candidate sequences ranked by cumulative
(length-normalized) log-probability — the mechanism behind
Observation #9: an isolated corrupted token tanks one hypothesis'
cumulative probability and the search shifts to an unaffected path.

Multiple-choice tasks are scored, not generated: each option is
appended to the prompt and the option tokens' summed log-likelihood
ranks the candidates (§3.3.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.autograd.functional import log_softmax_np
from repro.inference.engine import InferenceEngine, Session
from repro.obs.runtime import telemetry as _telemetry

__all__ = [
    "GenerationConfig",
    "greedy_decode",
    "beam_search_decode",
    "generate_ids",
    "score_continuation",
    "score_options",
    "choose_option",
]


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding hyperparameters (mirrors the paper's generate() settings)."""

    max_new_tokens: int = 32
    num_beams: int = 1
    length_penalty: float = 1.0
    eos_id: int = 2

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.num_beams < 1:
            raise ValueError("num_beams must be >= 1")


def _resolve_decode_strategy(
    engine: InferenceEngine,
    strategy: str,
    draft: InferenceEngine | None = None,
) -> str:
    """Map ``auto`` to the fastest decode path that cannot change results.

    ``auto`` prefers speculative decoding when a draft engine is
    supplied and speculation is FI-safe (both engines pristine — see
    :func:`~repro.generation.speculative.decode_speculation_safe`),
    then the batched decoder whenever batching is FI-safe — nothing
    armed, or only row-scoped fault hooks — and falls back to the
    serial reference loop otherwise, mirroring the option-scoring gate.
    Explicit ``speculative`` requires a draft engine.
    """
    if strategy == "auto":
        if draft is not None:
            from repro.generation.speculative import decode_speculation_safe

            if decode_speculation_safe(engine, draft):
                return "speculative"
        from repro.generation.batched import decode_batching_safe

        return "batched" if decode_batching_safe(engine) else "serial"
    if strategy == "speculative" and draft is None:
        raise ValueError(
            "strategy='speculative' requires a draft engine"
        )
    if strategy not in ("serial", "batched", "speculative"):
        raise ValueError(f"unknown decode strategy {strategy!r}")
    return strategy


def greedy_decode(
    engine: InferenceEngine,
    prompt_ids: list[int],
    config: GenerationConfig,
    session: Session | None = None,
    strategy: str = "auto",
    draft: InferenceEngine | None = None,
    speculation_depth: int = 4,
) -> list[int]:
    """Argmax decoding; returns generated ids (without the prompt/EOS).

    ``session`` optionally supplies an already-prefilled session for
    ``prompt_ids`` (e.g. a clone of a cached fault-free prefill); it is
    consumed — the caller must not reuse it afterwards.

    ``strategy`` selects the implementation: ``serial`` is the original
    per-token reference loop below; ``batched`` runs the same decode as
    a width-1 batch through :class:`~repro.generation.batched.BatchedDecoder`
    (bit-identical by construction); ``speculative`` drafts
    ``speculation_depth`` tokens per round with ``draft`` and verifies
    them in one chunked target forward
    (:class:`~repro.generation.speculative.SpeculativeDecoder`);
    ``auto`` picks ``speculative`` when a safe draft is available, then
    ``batched``, unless fault machinery demands the serial path.
    """
    resolved = _resolve_decode_strategy(engine, strategy, draft=draft)
    if resolved == "speculative":
        from repro.generation.speculative import SpeculativeDecoder

        return SpeculativeDecoder(
            engine, draft, config, speculation_depth=speculation_depth
        ).decode_one(prompt_ids, session=session)
    if resolved == "batched":
        from repro.generation.batched import BatchedDecoder

        return BatchedDecoder(engine, config, max_batch=1).decode_one(
            prompt_ids, session=session
        )
    if session is None:
        session = engine.start_session(prompt_ids)
    out: list[int] = []
    logits = session.last_logits
    for _ in range(config.max_new_tokens):
        # NaN-safe argmax: corrupted runs can produce all-NaN logits,
        # which we map to EOS-free garbage deterministically.  The
        # exceptional branch costs nothing on healthy logits — unlike a
        # per-token full-vocab isnan scan.
        try:
            token = int(np.nanargmax(logits))
        except ValueError:  # all-NaN logits
            token = 0
        if token == config.eos_id:
            break
        out.append(token)
        logits = session.step(token)
    return out


@dataclass
class _Beam:
    session: Session
    tokens: list[int]
    score: float
    finished: bool

    def normalized(self, length_penalty: float) -> float:
        length = max(1, len(self.tokens))
        return self.score / length**length_penalty


def beam_search_decode(
    engine: InferenceEngine,
    prompt_ids: list[int],
    config: GenerationConfig,
    session: Session | None = None,
    strategy: str = "auto",
) -> list[int]:
    """Standard beam search with length normalization.

    ``session`` optionally supplies a pre-built prefill for
    ``prompt_ids`` (consumed, like :func:`greedy_decode`).

    ``strategy='batched'`` (the ``auto`` default when FI-safe) runs the
    ``k`` beams as batch rows over a pooled KV cache — one batched
    forward per round, copy-on-fork instead of per-beam cache clones;
    ``serial`` is the per-session reference loop below.
    """
    if _resolve_decode_strategy(engine, strategy) == "batched":
        from repro.generation.batched import BatchedDecoder

        return BatchedDecoder(engine, config).beam_decode(
            prompt_ids, session=session
        )
    k = config.num_beams
    root = session if session is not None else engine.start_session(prompt_ids)
    beams = [_Beam(root, [], 0.0, False)]
    for _ in range(config.max_new_tokens):
        # Stop as soon as every hypothesis is finished — later rounds
        # would only re-rank the same finished candidates.
        if all(b.finished for b in beams):
            break
        candidates: list[tuple[float, _Beam, int, float]] = []
        for beam in beams:
            if beam.finished:
                candidates.append(
                    (beam.normalized(config.length_penalty), beam, -1, beam.score)
                )
                continue
            logp = log_softmax_np(
                np.nan_to_num(
                    beam.session.last_logits, nan=-1e9, posinf=1e9, neginf=-1e9
                )
            )
            top = np.argpartition(logp, -k)[-k:]
            for token in top:
                score = beam.score + float(logp[token])
                length = max(1, len(beam.tokens) + 1)
                candidates.append(
                    (score / length**config.length_penalty, beam, int(token), score)
                )
        candidates.sort(key=lambda c: c[0], reverse=True)
        next_beams: list[_Beam] = []
        forks: dict[int, int] = {}
        for norm_score, beam, token, raw_score in candidates:
            if len(next_beams) == k:
                break
            if token == -1:
                next_beams.append(beam)
                continue
            # Fork lazily: the first extension of a beam reuses its
            # session; later extensions need a cache copy.
            uses = forks.get(id(beam), 0)
            forks[id(beam)] = uses + 1
            session = beam.session if uses == 0 else beam.session.fork()
            new = _Beam(session, [*beam.tokens, token], raw_score, False)
            if token == config.eos_id:
                new.tokens = beam.tokens  # EOS terminates, not emitted
                new.finished = True
            next_beams.append(new)
        # Advance the sessions of unfinished beams that gained a token.
        # (Do it after selection, and handle shared sessions: when one
        # base beam spawned several children the *first* child kept the
        # original session, so it must step before forks are stale.)
        beams = next_beams
        for beam in beams:
            if not beam.finished and beam.tokens:
                if beam.session.position == len(prompt_ids) + len(beam.tokens) - 1:
                    beam.session.step(beam.tokens[-1])
    best = max(beams, key=lambda b: b.normalized(config.length_penalty))
    return best.tokens


def generate_ids(
    engine: InferenceEngine,
    prompt_ids: list[int],
    config: GenerationConfig,
    session: Session | None = None,
    strategy: str = "auto",
    draft: InferenceEngine | None = None,
    speculation_depth: int = 4,
) -> list[int]:
    """Dispatch to greedy or beam decoding based on ``num_beams``.

    ``session``, when given, must be a prefilled session for
    ``prompt_ids`` (it is consumed); campaigns pass clones of a cached
    fault-free prefill here to skip redundant prompt forwards.
    ``strategy`` is forwarded to the decoder (``auto``/``batched``/
    ``serial``/``speculative``, see :func:`greedy_decode`).  ``draft``
    and ``speculation_depth`` enable draft-and-verify greedy decoding;
    beam search ignores the draft (speculation is greedy-only).
    """
    if config.num_beams == 1:
        def decode(**kw):
            return greedy_decode(
                engine, prompt_ids, config,
                draft=draft, speculation_depth=speculation_depth, **kw,
            )
    else:
        def decode(**kw):
            return beam_search_decode(engine, prompt_ids, config, **kw)
    tel = _telemetry()
    if not tel.active:
        return decode(session=session, strategy=strategy)
    t0 = time.perf_counter()
    with tel.span(
        "decode.generate",
        num_beams=config.num_beams,
        prompt_tokens=len(prompt_ids),
        prefilled=session is not None,
        strategy=strategy,
    ) as span:
        out = decode(session=session, strategy=strategy)
        span.set(new_tokens=len(out))
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    metrics = tel.metrics
    metrics.histogram("decode.generate_ms").observe(elapsed_ms)
    metrics.counter("decode.calls").add()
    metrics.counter("decode.tokens").add(len(out))
    return out


def score_continuation(
    engine: InferenceEngine, prompt_ids: list[int], option_ids: list[int]
) -> float:
    """Summed log-likelihood of ``option_ids`` following ``prompt_ids``.

    This is the unshared reference path: one full forward over
    ``prompt + option``.  It is exact under any active fault injection
    (a one-shot computational fault strikes exactly one option's
    forward, as on real hardware) and is what the shared-prefix fast
    paths below fall back to whenever :meth:`InferenceEngine.fi_active`
    reports armed fault machinery.
    """
    if not option_ids:
        raise ValueError("option must contain at least one token")
    full = [*prompt_ids, *option_ids]
    logits = engine.forward_full(full)
    logp = log_softmax_np(
        np.nan_to_num(logits, nan=-1e9, posinf=1e9, neginf=-1e9), axis=-1
    )
    start = len(prompt_ids) - 1
    positions = np.arange(start, start + len(option_ids))
    return float(logp[positions, option_ids].sum())


def _clean_logp(logits: np.ndarray) -> np.ndarray:
    return log_softmax_np(
        np.nan_to_num(logits, nan=-1e9, posinf=1e9, neginf=-1e9), axis=-1
    )


def _resolve_strategy(engine: InferenceEngine, strategy: str) -> str:
    """Map ``auto`` to the fastest *FI-safe* scoring strategy.

    The shared-prefix strategies prefill the prompt once, so an armed
    fault (hook or flipped weight) or an active capture would observe a
    different computation than the per-option reference path — ``auto``
    therefore falls back to ``full`` in those cases.
    """
    if strategy == "auto":
        if engine.fi_active() or engine.capture is not None:
            return "full"
        return "batched"
    if strategy not in ("full", "incremental", "batched"):
        raise ValueError(f"unknown option-scoring strategy {strategy!r}")
    return strategy


def score_options(
    engine: InferenceEngine,
    prompt_ids: list[int],
    options_ids: list[list[int]],
    strategy: str = "auto",
) -> list[float]:
    """Per-option summed log-likelihood of each option after the prompt.

    Strategies:

    * ``full`` — the reference path: one ``forward_full(prompt+option)``
      per option (pays the prompt FLOPs once *per option*).
    * ``incremental`` — prefill the prompt once, then score each option
      by appending its tokens to the shared KV cache and truncating
      back (prompt FLOPs paid once; no cache copies).
    * ``batched`` — like ``incremental`` but all options run as one
      ``(B, t)`` batched forward against the shared read-only prefix.
    * ``auto`` — ``batched`` when no fault machinery or capture is
      active, else ``full``.

    All strategies agree on fault-free engines up to float-associativity
    (chunked vs. full matmuls); the argmax option is stable in practice
    and asserted identical by the equivalence tests.
    """
    if not options_ids:
        raise ValueError("need at least one option to score")
    for option in options_ids:
        if not option:
            raise ValueError("option must contain at least one token")
    resolved = _resolve_strategy(engine, strategy)
    if resolved == "full":
        return [
            score_continuation(engine, prompt_ids, option)
            for option in options_ids
        ]

    session = engine.start_session(prompt_ids)
    prompt_len = len(prompt_ids)
    first_logp = _clean_logp(session.last_logits)
    scores = [float(first_logp[option[0]]) for option in options_ids]
    # Only tokens whose *output* is read need a forward: feeding
    # option[:-1] produces the rows predicting option[1:].
    tails = [option[:-1] for option in options_ids]
    longest = max(len(tail) for tail in tails)
    if longest == 0:
        return scores

    if resolved == "incremental":
        for i, (option, tail) in enumerate(zip(options_ids, tails)):
            if not tail:
                continue
            logits = engine.forward(
                tail, session.caches, start_pos=prompt_len, iteration=0
            )
            logp = _clean_logp(logits)
            scores[i] += float(logp[np.arange(len(tail)), option[1:]].sum())
            for cache in session.caches:
                cache.truncate(prompt_len)
        return scores

    # Batched: rectangular chunk, right-padded.  Padded rows are causal
    # successors of every real row, so they never influence the scored
    # positions; their outputs are simply ignored.
    chunk = np.zeros((len(options_ids), longest), dtype=np.int64)
    for i, tail in enumerate(tails):
        chunk[i, : len(tail)] = tail
    logits = engine.forward(
        chunk, session.caches, start_pos=prompt_len, iteration=0
    )
    tel = _telemetry()
    if tel.active:
        tel.metrics.histogram("decode.option_batch_size").observe(
            len(options_ids)
        )
    for i, (option, tail) in enumerate(zip(options_ids, tails)):
        if not tail:
            continue
        logp = _clean_logp(logits[i, : len(tail)])
        scores[i] += float(logp[np.arange(len(tail)), option[1:]].sum())
    return scores


def choose_option(
    engine: InferenceEngine,
    prompt_ids: list[int],
    options_ids: list[list[int]],
    strategy: str = "auto",
) -> int:
    """Index of the highest-likelihood option (multiple-choice answer)."""
    tel = _telemetry()
    with tel.span(
        "decode.choose_option",
        options=len(options_ids),
        prompt_tokens=len(prompt_ids),
        strategy=strategy,
    ):
        scores = score_options(engine, prompt_ids, options_ids, strategy)
    if tel.active:
        tel.metrics.counter("decode.option_scores").add(len(options_ids))
    return int(np.argmax(scores))
