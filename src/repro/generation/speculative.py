"""Draft-and-verify speculative decoding for greedy generation.

The paper's generative campaigns decode one token per target forward;
at small scale every forward is dominated by Python/BLAS dispatch, so
wall clock scales with the *number* of forwards, not their size.
:class:`SpeculativeDecoder` cuts the forward count the way production
engines do: a cheap same-tokenizer **draft model** proposes up to
``speculation_depth`` tokens per round, and the **target** model
verifies the whole proposal in a single multi-token ``forward`` chunk
over its existing KV cache (the chunked-prefill path
:meth:`~repro.inference.engine.InferenceEngine.forward` already
supports).  The longest prefix of the proposal that matches the
target's own greedy choices is accepted; everything after the first
mismatch is rolled back with :meth:`~repro.inference.kvcache.KVCache.truncate`,
and the mismatch position itself still yields one emitted token (the
target's correction) — so every round emits ``accepted + 1`` tokens
for one target forward.

Output equivalence: the emitted tokens are always argmaxes of *target*
logits, so a round with zero accepted proposals degenerates to exactly
one serial step and speculation can never change which tokens are
greedy-optimal under the target.  Chunked verification evaluates the
same positions as the serial loop but through multi-token GEMMs, which
agree with the single-token path up to float associativity — the same
contract as PR 3's batched decoder — and the differential suite plus
the benchmark's pre-timing equivalence gate hold the decoded tokens to
bit-identity with the serial reference.

**FI-safety gate** (:func:`decode_speculation_safe`): speculation
changes the *target's* iteration↔forward mapping (one verify forward
covers several generation iterations, with a scalar iteration tag), so
target-side fault machinery is never safe — an iteration-pinned
computational hook would see the wrong tensor, a weight/KV/accumulator
fault corrupts draft-shaped work the serial path never runs, and
capture records per-forward outputs.  Target-side hooks, faults or
capture force the exact serial reference path, so injected trial
records never depend on the decode strategy.

Draft corruption, by contrast, is masked *by construction*: every
emitted token is an argmax of **target** logits over the true emitted
prefix, so a corrupted proposal can only lower the accept rate — it
can never change the output.  The draft-vs-target masking study
measures exactly that, and both its sides must decode through the
speculative schedule regardless of what is armed, so the campaign's
speculation-side trials bypass the gate explicitly with
``decode_one(..., force=True)`` rather than the gate special-casing
the draft engine (a draft fault under the gate's serial fallback would
silently never fire).
"""

from __future__ import annotations

import time

import numpy as np

from repro.generation.decode import GenerationConfig
from repro.inference.engine import InferenceEngine, Session
from repro.obs.runtime import telemetry as _telemetry

__all__ = ["SpeculativeDecoder", "decode_speculation_safe"]


def decode_speculation_safe(
    engine: InferenceEngine, draft: InferenceEngine
) -> bool:
    """Whether speculative decoding preserves exact fault/capture semantics.

    **Target side** — stricter than
    :func:`~repro.generation.batched.decode_batching_safe`: even
    row-scoped computational hooks disqualify, because a verify chunk
    runs several generation iterations inside one forward whose
    iteration tag is the round's first position — an iteration-pinned
    hook would fire on the wrong tensor (or not at all).  Armed KV and
    accumulator faults disqualify for the same reason: the chunked
    forward visits different (iteration, tensor) pairs than the serial
    loop, so strike timing — and therefore the trial record — would
    depend on the decode strategy.  The single exception is hooks
    registered ``observer=True`` (pure probes such as layer timing):
    they never alter tensors, so the reshuffled iteration → forward
    mapping cannot change results and traced runs keep speculating.

    **Draft side** — held to the same bar, even though draft corruption
    is masked by construction (emitted tokens are always argmaxes of
    *target* logits over the true emitted prefix, so a corrupted
    proposal can only lower the accept rate, never change the output).
    The serial fallback runs *without* the draft entirely, so a
    draft-armed fault would silently become a no-op there — whether the
    fault even fires would depend on the decode strategy.  Studies that
    want faults live inside the speculative schedule (draft-side
    masking, target-side interaction) therefore bypass this gate
    explicitly with ``decode_one(..., force=True)`` instead of the gate
    guessing which side is being studied.
    """
    for e in (engine, draft):
        if e.capture is not None or e.weight_fault_depth > 0:
            return False
        if e.kv_fault is not None or e.acc_fault is not None:
            return False
        if len(e.hooks) > 0 and not e.hooks.all_observers():
            return False
    return True


def _pick(logits) -> int:
    """NaN-safe argmax, identical to the serial greedy rule."""
    try:
        return int(np.nanargmax(logits))
    except ValueError:  # all-NaN logits
        return 0


class SpeculativeDecoder:
    """Greedy draft-and-verify decoder over a target/draft engine pair.

    The draft runs its own KV caches alongside the target session; per
    round it first catches up on tokens the target emitted that it has
    not seen (one small chunked forward), proposes ``speculation_depth``
    tokens by argmax, and hands them to the target for chunked
    verification.  Rejected positions are rolled back on both sides by
    cache truncation — no copies, no reallocation.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        draft: InferenceEngine,
        config: GenerationConfig,
        speculation_depth: int = 4,
    ) -> None:
        if speculation_depth < 1:
            raise ValueError("speculation_depth must be >= 1")
        if draft.config.vocab_size != engine.config.vocab_size:
            raise ValueError(
                "draft/target vocabulary mismatch:"
                f" draft has {draft.config.vocab_size} tokens,"
                f" target has {engine.config.vocab_size};"
                " speculative decoding needs a same-tokenizer pair"
            )
        self.engine = engine
        self.draft = draft
        self.config = config
        self.depth = speculation_depth

    def decode_one(
        self,
        prompt_ids: list[int],
        session: Session | None = None,
        force: bool = False,
    ) -> list[int]:
        """Greedy-decode one prompt; same contract as ``greedy_decode``.

        ``session`` optionally supplies an already-prefilled target
        session for ``prompt_ids`` (consumed).  Falls back to the exact
        serial reference loop whenever :func:`decode_speculation_safe`
        says speculation could change results; ``force=True`` skips the
        gate (the target-side speculation study, which *wants* to
        measure how faults interact with the speculative schedule).
        """
        if not force and not decode_speculation_safe(self.engine, self.draft):
            from repro.generation.decode import greedy_decode

            return greedy_decode(
                self.engine, prompt_ids, self.config, session=session,
                strategy="serial",
            )
        tel = _telemetry()
        if not tel.active:
            return self._decode_impl(prompt_ids, session, tel)
        t0 = time.perf_counter()
        with tel.span(
            "decode.speculate",
            depth=self.depth,
            prompt_tokens=len(prompt_ids),
            prefilled=session is not None,
        ) as span:
            out = self._decode_impl(prompt_ids, session, tel)
            span.set(new_tokens=len(out))
        tel.metrics.histogram("decode.speculate_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return out

    def _decode_impl(
        self, prompt_ids: list[int], session: Session | None, tel
    ) -> list[int]:
        engine, draft, config = self.engine, self.draft, self.config
        eos, max_new = config.eos_id, config.max_new_tokens
        if session is None:
            session = engine.start_session(prompt_ids)
        caches = session.caches
        first = _pick(session.last_logits)
        if first == eos:
            return []
        out = [first]
        if max_new == 1:
            return out
        # Invariant maintained by every round: the target caches hold
        # ``prompt + out[:-1]`` — the last emitted token is *pending*
        # (not yet fed) and becomes position 0 of the next verify
        # chunk, exactly like the serial loop's next ``step``.  The
        # draft caches hold ``(prompt + out)[:d_len]``.
        d_caches = draft.new_caches()
        draft.forward(prompt_ids, d_caches, start_pos=0, iteration=0)
        d_len = len(prompt_ids)
        traced = tel.active
        while len(out) < max_new:
            # Never propose past the token budget: the chunk emits at
            # most gamma + 1 tokens, and the serial loop never runs a
            # forward whose logits it would discard.
            gamma = min(self.depth, max_new - len(out) - 1)
            proposals: list[int] = []
            if gamma > 0:
                # Catch the draft up on tokens the target emitted since
                # its cache was last valid (1–2: the previous round's
                # correction/bonus plus possibly a rolled-back slot).
                feed = out[d_len - len(prompt_ids):]
                d_logits = draft.forward(
                    feed, d_caches, start_pos=d_len, iteration=len(out)
                )[-1]
                d_len += len(feed)
                for i in range(gamma):
                    token = _pick(d_logits)
                    proposals.append(token)
                    if i < gamma - 1:
                        d_logits = draft.forward(
                            [token], d_caches, start_pos=d_len,
                            iteration=len(out) + i + 1,
                        )[-1]
                        d_len += 1
            target_len = caches[0].length
            chunk = [out[-1], *proposals]
            logits = engine.forward(
                chunk, caches, start_pos=target_len, iteration=len(out)
            )
            accepted = 0
            stop = False
            for j in range(len(chunk)):
                token = _pick(logits[j])
                if token == eos:
                    stop = True
                    break
                out.append(token)
                if j < len(proposals) and token == proposals[j]:
                    accepted += 1
                    continue
                # Mismatch correction or the bonus token after a fully
                # accepted proposal: either way the round ends here.
                break
            if traced:
                tel.metrics.counter("decode.spec_rounds").add()
                tel.metrics.counter("decode.spec_rejected").add(
                    gamma - accepted
                )
                tel.metrics.histogram("decode.spec_accept_len").observe(
                    accepted
                )
            # Roll back rejected K/V on both sides.  The target keeps
            # the pending token plus the accepted proposals (everything
            # emitted except the new pending tail); the draft keeps the
            # accepted proposals it has already stepped through.
            for cache in caches:
                cache.truncate(target_len + 1 + accepted)
            if stop:
                break
            keep = d_len - max(0, (gamma - 1) - min(accepted, gamma - 1))
            for cache in d_caches:
                cache.truncate(keep)
            d_len = keep
        return out
