"""Vocabulary: token <-> id mapping with reserved special tokens."""

from __future__ import annotations

from typing import Iterable

__all__ = ["Vocab", "PAD, BOS, EOS, SEP, UNK".replace(", ", "\", \"")]

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
SEP = "<sep>"
UNK = "<unk>"
SPECIAL_TOKENS = (PAD, BOS, EOS, SEP, UNK)

__all__ = ["Vocab", "PAD", "BOS", "EOS", "SEP", "UNK", "SPECIAL_TOKENS"]


class Vocab:
    """Immutable token/id bijection; ids 0..4 are the special tokens."""

    def __init__(self, tokens: Iterable[str]) -> None:
        ordered: list[str] = list(SPECIAL_TOKENS)
        seen = set(ordered)
        for token in tokens:
            if token not in seen:
                seen.add(token)
                ordered.append(token)
        self._id_to_token = ordered
        self._token_to_id = {t: i for i, t in enumerate(ordered)}

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id(self, token: str) -> int:
        """Token id, falling back to ``<unk>``."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token(self, idx: int) -> str:
        """Surface form of a token id."""
        return self._id_to_token[idx]

    def tokens(self) -> list[str]:
        """All tokens in id order."""
        return list(self._id_to_token)

    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return self._token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        """Id of the beginning-of-sequence token."""
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        """Id of the end-of-sequence token."""
        return self._token_to_id[EOS]

    @property
    def sep_id(self) -> int:
        """Id of the separator token."""
        return self._token_to_id[SEP]

    @property
    def unk_id(self) -> int:
        """Id of the unknown-token fallback."""
        return self._token_to_id[UNK]
